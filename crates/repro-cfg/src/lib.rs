//! # repro-cfg — static code discovery with dynamic refinement
//!
//! The stand-in for the static-analysis module DrDebug builds "based on
//! Pin's static code discovery library" (paper §5.1, Fig. 10): it constructs
//! the control-flow graph of every function in a mini-VM program image,
//! computes immediate post-dominators (the input the Xin–Zhang dynamic
//! control-dependence algorithm requires), and — critically — *refines* the
//! CFG as execution reveals indirect-jump targets, recomputing the
//! post-dominator information so that control dependences across
//! switch-style dispatch are detected (the Fig. 7 precision fix).
//!
//! # Example
//!
//! ```
//! use minivm::assemble;
//! use repro_cfg::Cfg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     r"
//!     .text
//!     .func main
//!         movi r0, 1       ; 0
//!         beqi r0, 0, els  ; 1
//!         movi r1, 10      ; 2
//!         jmp join         ; 3
//!     els:
//!         movi r1, 20      ; 4
//!     join:
//!         halt             ; 5
//!     .endfunc
//!     ",
//! )?;
//! let mut cfg = Cfg::build(&program);
//! assert_eq!(cfg.ipostdom(1), Some(5)); // the branch re-converges at join
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod postdom;

pub use cfg::{Cfg, FuncCfg};
pub use postdom::{idoms, ipostdoms};
