//! Static code discovery, per-function CFGs, and dynamic refinement.
//!
//! The paper (§5.1): "We implement a static analyzer based on Pin's static
//! code discovery library ... Initially we construct an approximate static
//! CFG and as the program executes, we collect the dynamic jump targets for
//! the indirect jumps and refine the CFG by adding the missing edges. The
//! refined CFG is used to compute the immediate post-dominator for each
//! basic block which is then used to dynamically detect control
//! dependences."
//!
//! The CFG here is built at *instruction* granularity (every pc is a node),
//! which sidesteps block re-splitting when refinement adds a jump target in
//! the middle of what static discovery thought was one block. Function
//! bodies are analysed independently; calls are treated as falling through
//! to their return point, and `ret`/`halt` edges lead to a per-function
//! virtual exit — the standard intraprocedural treatment the Xin–Zhang
//! control-dependence algorithm expects.

use std::collections::{BTreeSet, HashMap};

use minivm::{Instr, Pc, Program};

use crate::postdom::ipostdoms;

/// The CFG of one function, at instruction granularity.
#[derive(Debug, Clone)]
pub struct FuncCfg {
    /// First pc of the function.
    pub entry: Pc,
    /// One past the last pc.
    pub end: Pc,
    /// `succs[i]` = successors of pc `entry + i`; the virtual exit is node
    /// `end - entry` (index `len`).
    succs: Vec<Vec<usize>>,
    /// Cached immediate post-dominators (local indices); `None` entries mean
    /// "does not reach the function exit".
    ipostdom: Vec<Option<usize>>,
    /// Local indices of indirect jumps (for refinement bookkeeping).
    indirect: Vec<usize>,
    dirty: bool,
}

impl FuncCfg {
    fn len(&self) -> usize {
        (self.end - self.entry) as usize
    }

    fn local(&self, pc: Pc) -> usize {
        debug_assert!(pc >= self.entry && pc < self.end);
        (pc - self.entry) as usize
    }

    /// Successors of `pc`, as pcs (the virtual exit is omitted).
    pub fn successors(&self, pc: Pc) -> Vec<Pc> {
        self.succs[self.local(pc)]
            .iter()
            .filter(|&&s| s < self.len())
            .map(|&s| self.entry + s as Pc)
            .collect()
    }

    /// Whether `pc`'s successor set includes the function exit.
    pub fn exits_at(&self, pc: Pc) -> bool {
        let exit = self.len();
        self.succs[self.local(pc)].contains(&exit)
    }

    fn recompute(&mut self) {
        let exit = self.len();
        self.ipostdom = ipostdoms(&self.succs, exit);
        self.dirty = false;
    }
}

/// Whole-program CFG: one [`FuncCfg`] per function, with dynamic
/// indirect-jump refinement.
#[derive(Debug, Clone)]
pub struct Cfg {
    funcs: Vec<FuncCfg>,
    /// pc -> index into `funcs`.
    func_of: HashMap<Pc, usize>,
    /// Observed targets per indirect-jump pc (for reporting/tests).
    observed: HashMap<Pc, BTreeSet<Pc>>,
}

impl Cfg {
    /// Statically discovers the code of `program` and builds the initial,
    /// approximate CFG. Indirect jumps contribute **no** successors yet —
    /// exactly the §5.1 imprecision.
    pub fn build(program: &Program) -> Cfg {
        let mut funcs = Vec::new();
        let mut func_of = HashMap::new();

        // Ranges: declared functions, plus synthetic ranges for code outside
        // any function so every pc is covered.
        let mut ranges: Vec<(Pc, Pc)> =
            program.functions.iter().map(|f| (f.entry, f.end)).collect();
        ranges.sort_unstable();
        let mut covered: Vec<(Pc, Pc)> = Vec::new();
        let mut cursor: Pc = 0;
        for &(s, e) in &ranges {
            if s > cursor {
                covered.push((cursor, s));
            }
            covered.push((s, e));
            cursor = cursor.max(e);
        }
        if (cursor as usize) < program.len() {
            covered.push((cursor, program.len() as Pc));
        }

        for (entry, end) in covered {
            if entry >= end {
                continue;
            }
            let len = (end - entry) as usize;
            let exit = len;
            let mut succs: Vec<Vec<usize>> = vec![Vec::new(); len + 1];
            let mut indirect = Vec::new();
            for pc in entry..end {
                let i = (pc - entry) as usize;
                let instr = program.fetch(pc).expect("pc within image");
                let push = |succs: &mut Vec<Vec<usize>>, t: Pc| {
                    // Branches out of the function (e.g. tail jumps) are
                    // modelled as reaching the exit.
                    let node = if t >= entry && t < end {
                        (t - entry) as usize
                    } else {
                        exit
                    };
                    if !succs[i].contains(&node) {
                        succs[i].push(node);
                    }
                };
                let fall = |succs: &mut Vec<Vec<usize>>| {
                    let node = if pc + 1 < end { i + 1 } else { exit };
                    if !succs[i].contains(&node) {
                        succs[i].push(node);
                    }
                };
                match *instr {
                    Instr::Jmp { target } => push(&mut succs, target),
                    Instr::Br { target, .. } | Instr::BrI { target, .. } => {
                        fall(&mut succs);
                        push(&mut succs, target);
                    }
                    Instr::JmpInd { .. } => {
                        // Statically opaque: no successors until refinement.
                        indirect.push(i);
                    }
                    Instr::Ret | Instr::Halt => succs[i].push(exit),
                    // Calls fall through to their return point; an indirect
                    // call is still a call (its *control* successor within
                    // this function is the return point).
                    Instr::Call { .. } | Instr::CallInd { .. } => fall(&mut succs),
                    _ => fall(&mut succs),
                }
            }
            let idx = funcs.len();
            for pc in entry..end {
                func_of.insert(pc, idx);
            }
            let mut f = FuncCfg {
                entry,
                end,
                succs,
                ipostdom: Vec::new(),
                indirect,
                dirty: true,
            };
            f.recompute();
            funcs.push(f);
        }
        Cfg {
            funcs,
            func_of,
            observed: HashMap::new(),
        }
    }

    /// The function CFG containing `pc`.
    pub fn function_of(&self, pc: Pc) -> Option<&FuncCfg> {
        self.func_of.get(&pc).map(|&i| &self.funcs[i])
    }

    /// Records a dynamically observed indirect-jump (or indirect-call) edge
    /// `pc -> target`. Returns `true` when the edge was new, in which case
    /// post-dominators of the containing function are invalidated and will
    /// be recomputed lazily.
    pub fn observe_indirect(&mut self, pc: Pc, target: Pc) -> bool {
        let Some(&fi) = self.func_of.get(&pc) else {
            return false;
        };
        let f = &mut self.funcs[fi];
        let i = f.local(pc);
        let node = if target >= f.entry && target < f.end {
            (target - f.entry) as usize
        } else {
            f.len()
        };
        if f.succs[i].contains(&node) {
            return false;
        }
        f.succs[i].push(node);
        f.dirty = true;
        self.observed.entry(pc).or_default().insert(target);
        true
    }

    /// The immediate post-dominator pc of `pc` within its function, or
    /// `None` when `pc` is post-dominated only by the function exit (or
    /// cannot reach it).
    pub fn ipostdom(&mut self, pc: Pc) -> Option<Pc> {
        let fi = *self.func_of.get(&pc)?;
        let f = &mut self.funcs[fi];
        if f.dirty {
            f.recompute();
        }
        let ipd = f.ipostdom[f.local(pc)]?;
        if ipd >= f.len() {
            None // post-dominated only by the virtual exit
        } else {
            Some(f.entry + ipd as Pc)
        }
    }

    /// Observed dynamic targets of an indirect jump (refinement log).
    pub fn observed_targets(&self, pc: Pc) -> impl Iterator<Item = Pc> + '_ {
        self.observed.get(&pc).into_iter().flatten().copied()
    }

    /// All indirect-jump pcs discovered statically.
    pub fn indirect_jumps(&self) -> Vec<Pc> {
        self.funcs
            .iter()
            .flat_map(|f| f.indirect.iter().map(move |&i| f.entry + i as Pc))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::assemble;

    #[test]
    fn straight_line_ipostdoms() {
        let p = assemble(
            r"
            .text
            .func main
                movi r0, 1   ; 0
                addi r0, r0, 1 ; 1
                halt         ; 2
            .endfunc
            ",
        )
        .unwrap();
        let mut cfg = Cfg::build(&p);
        assert_eq!(cfg.ipostdom(0), Some(1));
        assert_eq!(cfg.ipostdom(1), Some(2));
        assert_eq!(cfg.ipostdom(2), None, "halt postdominated by exit only");
    }

    #[test]
    fn diamond_branch_ipostdom_is_join() {
        let p = assemble(
            r"
            .text
            .func main
                movi r0, 1       ; 0
                beqi r0, 0, els  ; 1
                movi r1, 10      ; 2 (then)
                jmp join         ; 3
            els:
                movi r1, 20      ; 4
            join:
                print r1         ; 5
                halt             ; 6
            .endfunc
            ",
        )
        .unwrap();
        let mut cfg = Cfg::build(&p);
        assert_eq!(cfg.ipostdom(1), Some(5), "branch converges at join");
        let f = cfg.function_of(1).unwrap();
        let mut s = f.successors(1);
        s.sort_unstable();
        assert_eq!(s, vec![2, 4]);
    }

    #[test]
    fn indirect_jump_has_no_static_successors_then_refines() {
        let p = assemble(
            r"
            .data
            table: .word @a, @b
            .text
            .func main
                read r0          ; 0
                la r1, table     ; 1
                add r1, r1, r0   ; 2
                load r2, r1, 0   ; 3
                jmpind r2        ; 4
            a:
                movi r3, 1       ; 5
                jmp done         ; 6
            b:
                movi r3, 2       ; 7
            done:
                print r3         ; 8
                halt             ; 9
            .endfunc
            ",
        )
        .unwrap();
        let mut cfg = Cfg::build(&p);
        assert_eq!(cfg.indirect_jumps(), vec![4]);
        let f = cfg.function_of(4).unwrap();
        assert!(f.successors(4).is_empty(), "statically opaque");
        // Without refinement, pcs 5..8 are unreachable inside the function
        // (the jmpind is the only way in), so the branchy structure is
        // invisible: 4 has no postdominator at all.
        assert_eq!(cfg.ipostdom(4), None);

        // Dynamic refinement: both targets observed.
        assert!(cfg.observe_indirect(4, 5));
        assert!(cfg.observe_indirect(4, 7));
        assert!(!cfg.observe_indirect(4, 5), "duplicate edge ignored");
        assert_eq!(
            cfg.ipostdom(4),
            Some(8),
            "switch dispatch converges at `done` once edges are added"
        );
        assert_eq!(cfg.observed_targets(4).collect::<Vec<_>>(), vec![5, 7]);
    }

    #[test]
    fn per_function_isolation() {
        let p = assemble(
            r"
            .text
            .func f
                movi r0, 1  ; 0
                ret         ; 1
            .endfunc
            .func main
                call f      ; 2
                halt        ; 3
            .endfunc
            ",
        )
        .unwrap();
        let mut cfg = Cfg::build(&p);
        assert_eq!(cfg.ipostdom(2), Some(3), "call falls through");
        assert_eq!(cfg.ipostdom(1), None, "ret exits the function");
        assert_eq!(cfg.function_of(0).unwrap().entry, 0);
        assert_eq!(cfg.function_of(2).unwrap().entry, 2);
    }

    #[test]
    fn loop_branch_postdom() {
        let p = assemble(
            r"
            .text
            .func main
                movi r0, 5     ; 0
            top:
                subi r0, r0, 1 ; 1
                bgti r0, 0, top ; 2
                halt           ; 3
            .endfunc
            ",
        )
        .unwrap();
        let mut cfg = Cfg::build(&p);
        assert_eq!(cfg.ipostdom(2), Some(3), "loop branch exits to halt");
        assert_eq!(cfg.ipostdom(1), Some(2));
    }

    #[test]
    fn code_outside_functions_gets_synthetic_range() {
        let p = assemble(
            r"
            .text
                nop          ; 0 (no .func)
                halt         ; 1
            ",
        )
        .unwrap();
        let mut cfg = Cfg::build(&p);
        assert_eq!(cfg.ipostdom(0), Some(1));
    }
}

#[cfg(test)]
mod refinement_edge_tests {
    use super::*;
    use minivm::assemble;

    #[test]
    fn indirect_target_outside_function_maps_to_exit() {
        let p = assemble(
            r"
            .text
            .func f
                movi r0, 3   ; 0
                jmpind r0    ; 1 (will observe a target in main)
            .endfunc
            .func main
                nop          ; 2
                halt         ; 3
            .endfunc
            ",
        )
        .unwrap();
        let mut cfg = Cfg::build(&p);
        assert!(cfg.observe_indirect(1, 3), "cross-function edge accepted");
        // The edge is modelled as reaching f's exit; postdoms stay sane.
        assert_eq!(cfg.ipostdom(0), Some(1));
        assert_eq!(cfg.ipostdom(1), None, "exits the function");
    }

    #[test]
    fn observe_on_non_code_pc_is_ignored() {
        let p = assemble(".text\n.func main\n halt\n.endfunc").unwrap();
        let mut cfg = Cfg::build(&p);
        assert!(!cfg.observe_indirect(999, 0));
    }

    #[test]
    fn single_instruction_function() {
        let p = assemble(
            r"
            .text
            .func tiny
                ret          ; 0
            .endfunc
            .func main
                call tiny    ; 1
                halt         ; 2
            .endfunc
            ",
        )
        .unwrap();
        let mut cfg = Cfg::build(&p);
        assert_eq!(cfg.ipostdom(0), None);
        let f = cfg.function_of(0).unwrap();
        assert!(f.exits_at(0));
    }

    #[test]
    fn refinement_is_incremental_across_queries() {
        let p = assemble(
            r"
            .data
            t: .word @a, @b
            .text
            .func main
                read r0      ; 0
                la r1, t     ; 1
                add r1, r1, r0 ; 2
                load r2, r1, 0 ; 3
                jmpind r2    ; 4
            a:
                nop          ; 5
                jmp end      ; 6
            b:
                nop          ; 7
            end:
                halt         ; 8
            .endfunc
            ",
        )
        .unwrap();
        let mut cfg = Cfg::build(&p);
        assert_eq!(cfg.ipostdom(4), None);
        cfg.observe_indirect(4, 5);
        // One target: the 'convergence' is the target itself.
        assert_eq!(cfg.ipostdom(4), Some(5));
        cfg.observe_indirect(4, 7);
        // Two targets: convergence moves to the join.
        assert_eq!(cfg.ipostdom(4), Some(8));
    }
}
