//! Immediate (post-)dominator computation.
//!
//! The Cooper–Harvey–Kennedy "engineered" dominator algorithm, run on the
//! reverse CFG so that it yields immediate *post*-dominators. The paper's
//! dynamic control-dependence detector (Xin–Zhang, §5.1) "assumes the
//! availability of precomputed static immediate post-dominator information";
//! this module is that computation.

/// Computes immediate dominators of a rooted graph.
///
/// `succs[v]` lists the successors of node `v`; `root` is the entry. Returns
/// `idom[v] = Some(d)` for every node reachable from the root (the root's
/// idom is itself), and `None` for unreachable nodes.
///
/// To get immediate **post**-dominators, pass the *reverse* graph
/// (`succs[v]` = forward predecessors of `v`) with the exit node as root —
/// which is what [`ipostdoms`] does.
pub fn idoms(succs: &[Vec<usize>], root: usize) -> Vec<Option<usize>> {
    let n = succs.len();
    assert!(root < n, "root {root} out of range for {n} nodes");

    // Postorder DFS from the root (iterative).
    let mut postorder = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
    visited[root] = true;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < succs[v].len() {
            let w = succs[v][*i];
            *i += 1;
            if !visited[w] {
                visited[w] = true;
                stack.push((w, 0));
            }
        } else {
            postorder.push(v);
            stack.pop();
        }
    }
    let mut po_num = vec![usize::MAX; n];
    for (i, &v) in postorder.iter().enumerate() {
        po_num[v] = i;
    }

    // Predecessors within the reachable subgraph.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, ss) in succs.iter().enumerate() {
        if !visited[v] {
            continue;
        }
        for &w in ss {
            preds[w].push(v);
        }
    }

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);

    let intersect = |idom: &[Option<usize>], po: &[usize], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while po[a] < po[b] {
                a = idom[a].expect("processed node has idom");
            }
            while po[b] < po[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        // Reverse postorder, skipping the root.
        for &v in postorder.iter().rev() {
            if v == root {
                continue;
            }
            let mut new_idom: Option<usize> = None;
            for &p in &preds[v] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &po_num, p, cur),
                });
            }
            if new_idom.is_some() && idom[v] != new_idom {
                idom[v] = new_idom;
                changed = true;
            }
        }
    }
    // Normalise: the root reports itself; that is conventional.
    idom
}

/// Computes immediate post-dominators.
///
/// `succs` is the *forward* CFG; `exit` is the (virtual) exit node every
/// terminating path reaches. Nodes that cannot reach the exit (infinite
/// loops) get `None`.
pub fn ipostdoms(succs: &[Vec<usize>], exit: usize) -> Vec<Option<usize>> {
    let n = succs.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, ss) in succs.iter().enumerate() {
        for &w in ss {
            rev[w].push(v);
        }
    }
    let mut ipd = idoms(&rev, exit);
    // The exit's self-idom is an artifact; no instruction post-dominates the
    // exit.
    ipd[exit] = None;
    ipd
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic diamond: 0 -> {1,2} -> 3.
    #[test]
    fn diamond_postdom() {
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let ipd = ipostdoms(&succs, 3);
        assert_eq!(ipd[0], Some(3));
        assert_eq!(ipd[1], Some(3));
        assert_eq!(ipd[2], Some(3));
        assert_eq!(ipd[3], None);
    }

    /// Nested diamonds: 0 -> {1,4}; 1 -> {2,3} -> 5; 4 -> 5; 5 -> 6.
    #[test]
    fn nested_diamond() {
        let succs = vec![
            vec![1, 4], // 0
            vec![2, 3], // 1
            vec![5],    // 2
            vec![5],    // 3
            vec![5],    // 4
            vec![6],    // 5
            vec![],     // 6
        ];
        let ipd = ipostdoms(&succs, 6);
        assert_eq!(ipd[1], Some(5));
        assert_eq!(ipd[0], Some(5));
        assert_eq!(ipd[5], Some(6));
    }

    /// A loop: 0 -> 1 -> 2 -> 1 (back edge), 2 -> 3.
    #[test]
    fn loop_postdom() {
        let succs = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let ipd = ipostdoms(&succs, 3);
        assert_eq!(ipd[2], Some(3));
        assert_eq!(ipd[1], Some(2));
        assert_eq!(ipd[0], Some(1));
    }

    /// An infinite loop cannot reach the exit: its nodes have no postdom.
    #[test]
    fn infinite_loop_unreachable_from_exit() {
        // 0 -> {1, 3}; 1 <-> 2 forever; 3 = exit path.
        let succs = vec![vec![1, 3], vec![2], vec![1], vec![]];
        let ipd = ipostdoms(&succs, 3);
        assert_eq!(ipd[1], None);
        assert_eq!(ipd[2], None);
        assert_eq!(ipd[0], Some(3));
    }

    /// Dominators on a forward graph (sanity for `idoms` itself) — the
    /// example from the Cooper–Harvey–Kennedy paper.
    #[test]
    fn chk_paper_example() {
        // Nodes 1..=5, node 0 unused. Edges: 5->{4,3}, 4->1, 1->2, 2->1,
        // 3->2, 2->5? No — use the well-known irreducible example:
        // 5 -> 4, 5 -> 3, 4 -> 1, 3 -> 2, 1 -> 2, 2 -> 1.
        let mut succs = vec![Vec::new(); 6];
        succs[5] = vec![4, 3];
        succs[4] = vec![1];
        succs[3] = vec![2];
        succs[1] = vec![2];
        succs[2] = vec![1];
        let idom = idoms(&succs, 5);
        assert_eq!(idom[4], Some(5));
        assert_eq!(idom[3], Some(5));
        assert_eq!(idom[1], Some(5));
        assert_eq!(idom[2], Some(5));
        assert_eq!(idom[0], None, "unreachable");
    }

    #[test]
    fn straight_line() {
        let succs = vec![vec![1], vec![2], vec![]];
        let ipd = ipostdoms(&succs, 2);
        assert_eq!(ipd[0], Some(1));
        assert_eq!(ipd[1], Some(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_root_panics() {
        let _ = idoms(&[vec![]], 5);
    }
}
