//! Happens-before data-race detection.
//!
//! Maple's profiler predicts *interleavings*; this module detects *races*:
//! a classic vector-clock (DJIT+-style) happens-before detector implemented
//! as an instrumentation [`Tool`]. It is the analysis the paper's Table 1
//! taxonomy rests on — every case study is "a data race on variable X" —
//! and it lets the test suite verify that the bug workloads really do race
//! on the variables their descriptions claim (and that the synchronized
//! variants do not).
//!
//! Synchronization that induces happens-before edges:
//!
//! * `lock`/`unlock` — acquire/release on the mutex word;
//! * `cas`/`xadd` — atomic RMW: acquire+release on the cell (so atomic
//!   counters are race-free while plain `load;add;store` counters race);
//! * `spawn` — the child inherits the parent's clock;
//! * `join` — the parent joins the (halted) child's clock.

use std::collections::{BTreeSet, HashMap};

use minivm::{Addr, InsEvent, Instr, Loc, Pc, Tid, Tool, ToolControl};

/// A vector clock, indexed by tid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    fn get(&self, tid: Tid) -> u64 {
        self.0.get(tid as usize).copied().unwrap_or(0)
    }

    fn set(&mut self, tid: Tid, v: u64) {
        let t = tid as usize;
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Whether `self` happens before or equals `other` (component-wise ≤).
    fn le(&self, other: &VectorClock) -> bool {
        (0..self.0.len().max(other.0.len()))
            .all(|i| self.0.get(i).copied().unwrap_or(0) <= other.0.get(i).copied().unwrap_or(0))
    }
}

/// The kind of access conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceKind {
    /// Two unordered writes.
    WriteWrite,
    /// A read unordered with an earlier write.
    ReadWrite,
    /// A write unordered with an earlier read.
    WriteRead,
}

/// A detected race: two unordered conflicting accesses to one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Race {
    /// The racing address.
    pub addr: Addr,
    /// The earlier access (thread, pc).
    pub first: (Tid, Pc),
    /// The later, unordered access (thread, pc).
    pub second: (Tid, Pc),
    /// Conflict kind.
    pub kind: RaceKind,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} race on [{:#x}]: t{}@{} vs t{}@{}",
            self.kind, self.addr, self.first.0, self.first.1, self.second.0, self.second.1
        )
    }
}

#[derive(Debug, Clone, Default)]
struct VarState {
    /// Clock and site of the last write.
    write_clock: VectorClock,
    write_site: Option<(Tid, Pc)>,
    /// Per-thread read clocks and sites since the last write.
    reads: HashMap<Tid, (u64, Pc)>,
}

/// A happens-before race detector, usable as an instrumentation tool during
/// live runs or replays.
#[derive(Debug, Default)]
pub struct RaceDetector {
    clocks: Vec<VectorClock>,
    /// Release clocks of mutex words and atomic cells.
    sync: HashMap<Addr, VectorClock>,
    vars: HashMap<Addr, VarState>,
    /// Clocks of halted threads, for `join`.
    halted: HashMap<Tid, VectorClock>,
    races: BTreeSet<Race>,
    /// Addresses to ignore (e.g. known mutex words tracked as sync only).
    sync_addrs: BTreeSet<Addr>,
}

impl RaceDetector {
    /// Creates a detector.
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// The distinct races detected so far.
    pub fn races(&self) -> impl Iterator<Item = &Race> {
        self.races.iter()
    }

    /// Whether any race was detected on `addr`.
    pub fn has_race_on(&self, addr: Addr) -> bool {
        self.races.iter().any(|r| r.addr == addr)
    }

    /// Number of distinct races.
    pub fn race_count(&self) -> usize {
        self.races.len()
    }

    fn clock_mut(&mut self, tid: Tid) -> &mut VectorClock {
        let t = tid as usize;
        if self.clocks.len() <= t {
            self.clocks.resize_with(t + 1, VectorClock::default);
            // A thread's own component starts at 1 so that "never
            // synchronised" clocks are distinguishable from zero.
            self.clocks[t].set(tid, 1);
        }
        &mut self.clocks[t]
    }

    fn tick(&mut self, tid: Tid) {
        let cur = self.clock_mut(tid).get(tid);
        self.clock_mut(tid).set(tid, cur + 1);
    }

    fn acquire(&mut self, tid: Tid, addr: Addr) {
        self.sync_addrs.insert(addr);
        if let Some(rel) = self.sync.get(&addr).cloned() {
            self.clock_mut(tid).join(&rel);
        }
    }

    fn release(&mut self, tid: Tid, addr: Addr) {
        self.sync_addrs.insert(addr);
        let clk = self.clock_mut(tid).clone();
        self.sync.insert(addr, clk);
        self.tick(tid);
    }

    fn on_read(&mut self, tid: Tid, pc: Pc, addr: Addr) {
        if self.sync_addrs.contains(&addr) {
            return;
        }
        let clk = self.clock_mut(tid).clone();
        let var = self.vars.entry(addr).or_default();
        if let Some(site) = var.write_site {
            if site.0 != tid && !var.write_clock.le(&clk) {
                self.races.insert(Race {
                    addr,
                    first: site,
                    second: (tid, pc),
                    kind: RaceKind::ReadWrite,
                });
            }
        }
        let own = clk.get(tid);
        var.reads.insert(tid, (own, pc));
    }

    fn on_write(&mut self, tid: Tid, pc: Pc, addr: Addr) {
        if self.sync_addrs.contains(&addr) {
            return;
        }
        let clk = self.clock_mut(tid).clone();
        let var = self.vars.entry(addr).or_default();
        if let Some(site) = var.write_site {
            if site.0 != tid && !var.write_clock.le(&clk) {
                self.races.insert(Race {
                    addr,
                    first: site,
                    second: (tid, pc),
                    kind: RaceKind::WriteWrite,
                });
            }
        }
        for (&rt, &(rclk, rpc)) in &var.reads {
            if rt != tid && rclk > clk.get(rt) {
                self.races.insert(Race {
                    addr,
                    first: (rt, rpc),
                    second: (tid, pc),
                    kind: RaceKind::WriteRead,
                });
            }
        }
        var.write_clock = clk;
        var.write_site = Some((tid, pc));
        var.reads.clear();
    }
}

impl Tool for RaceDetector {
    fn on_event(&mut self, ev: &InsEvent) -> ToolControl {
        let tid = ev.tid;
        match ev.instr {
            Instr::Lock { .. } => {
                // Only a successful acquire (pc advanced) synchronises.
                if ev.next_pc != ev.pc {
                    if let Some((Loc::Mem(a), _)) =
                        ev.uses.iter().find(|(l, _)| matches!(l, Loc::Mem(_)))
                    {
                        self.acquire(tid, a);
                    }
                }
            }
            Instr::Unlock { .. } => {
                if let Some((Loc::Mem(a), _)) =
                    ev.uses.iter().find(|(l, _)| matches!(l, Loc::Mem(_)))
                {
                    self.release(tid, a);
                }
            }
            Instr::Cas { .. } | Instr::AtomicAdd { .. } => {
                // Atomic RMW: acquire then release on the cell.
                if let Some((Loc::Mem(a), _)) =
                    ev.uses.iter().find(|(l, _)| matches!(l, Loc::Mem(_)))
                {
                    self.acquire(tid, a);
                    self.release(tid, a);
                }
            }
            Instr::Spawn { .. } => {
                if let Some((child, _)) = ev.spawned {
                    let parent_clk = self.clock_mut(tid).clone();
                    self.clock_mut(child).join(&parent_clk);
                    self.tick(tid);
                }
            }
            Instr::Join { .. } => {
                if ev.next_pc != ev.pc {
                    // The join completed; the target tid is the use value.
                    if let Some((_, target)) = ev.uses.iter().next() {
                        let target = target as Tid;
                        if let Some(hclk) = self.halted.get(&target).cloned() {
                            self.clock_mut(tid).join(&hclk);
                        }
                    }
                }
            }
            Instr::Halt => {
                let clk = self.clock_mut(tid).clone();
                self.halted.insert(tid, clk);
            }
            _ => {
                for (loc, _) in ev.uses {
                    if let Loc::Mem(a) = loc {
                        self.on_read(tid, ev.pc, a);
                    }
                }
                for (loc, _) in ev.defs {
                    if let Loc::Mem(a) = loc {
                        self.on_write(tid, ev.pc, a);
                    }
                }
            }
        }
        ToolControl::Continue
    }
}

/// Runs `program` once under the given scheduler seed and reports the races
/// the execution exhibits.
pub fn find_races(
    program: &std::sync::Arc<minivm::Program>,
    sched_seed: u64,
    env_seed: u64,
    max_steps: u64,
) -> Vec<Race> {
    let mut det = RaceDetector::new();
    let mut exec = minivm::Executor::new(std::sync::Arc::clone(program));
    let _ = minivm::run(
        &mut exec,
        &mut minivm::RandomSched::new(sched_seed, 5),
        &mut minivm::LiveEnv::new(env_seed),
        &mut det,
        max_steps,
    );
    det.races().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use minivm::assemble;

    fn races_in(src: &str) -> Vec<Race> {
        let p = Arc::new(assemble(src).unwrap());
        // A few seeds to make the interleaving representative.
        let mut all = BTreeSet::new();
        for seed in 0..4 {
            all.extend(find_races(&p, seed, seed, 1_000_000));
        }
        all.into_iter().collect()
    }

    const RACY_COUNTER: &str = r"
        .data
        counter: .word 0
        .text
        .func main
            movi r1, 0
            spawn r2, worker, r1
            spawn r3, worker, r1
            join r2
            join r3
            halt
        .endfunc
        .func worker
            la r1, counter
            load r2, r1, 0
            addi r2, r2, 1
            store r2, r1, 0
            halt
        .endfunc
        ";

    #[test]
    fn plain_counter_races() {
        let races = races_in(RACY_COUNTER);
        assert!(!races.is_empty(), "unsynchronised counter must race");
        let counter = 0x1000;
        assert!(races.iter().any(|r| r.addr == counter), "{races:?}");
    }

    #[test]
    fn atomic_counter_does_not_race() {
        let races = races_in(
            r"
            .data
            counter: .word 0
            .text
            .func main
                movi r1, 1
                spawn r2, worker, r1
                spawn r3, worker, r1
                join r2
                join r3
                halt
            .endfunc
            .func worker
                la r1, counter
                xadd r2, r1, r0
                halt
            .endfunc
            ",
        );
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn lock_protected_counter_does_not_race() {
        let races = races_in(
            r"
            .data
            counter: .word 0
            m:       .word 0
            .text
            .func main
                movi r1, 0
                spawn r2, worker, r1
                spawn r3, worker, r1
                join r2
                join r3
                halt
            .endfunc
            .func worker
                la r4, m
                lock r4
                la r1, counter
                load r2, r1, 0
                addi r2, r2, 1
                store r2, r1, 0
                unlock r4
                halt
            .endfunc
            ",
        );
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn join_orders_parent_reads_after_child_writes() {
        let races = races_in(
            r"
            .data
            x: .word 0
            .text
            .func main
                movi r1, 0
                spawn r2, worker, r1
                join r2
                la r3, x
                load r4, r3, 0   ; ordered after the child's store by join
                halt
            .endfunc
            .func worker
                la r1, x
                movi r2, 9
                store r2, r1, 0
                halt
            .endfunc
            ",
        );
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn spawn_orders_child_after_parent_initialisation() {
        let races = races_in(
            r"
            .data
            config: .word 0
            .text
            .func main
                la r1, config
                movi r2, 42
                store r2, r1, 0   ; before spawn: ordered
                movi r3, 0
                spawn r4, worker, r3
                join r4
                halt
            .endfunc
            .func worker
                la r1, config
                load r2, r1, 0
                halt
            .endfunc
            ",
        );
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn table1_bug_cases_contain_the_documented_races() {
        for case in workloads::all_bugs() {
            let mut all = BTreeSet::new();
            for seed in 0..4 {
                all.extend(find_races(&case.program, seed, seed, 5_000_000));
            }
            assert!(
                !all.is_empty(),
                "{}: the case study must exhibit a detectable race",
                case.name
            );
        }
    }
}
