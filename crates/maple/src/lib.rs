//! # maple — coverage-driven exposure of concurrency bugs
//!
//! A from-scratch reproduction of the Maple workflow the DrDebug paper
//! integrates with (paper §6): a [profiling phase](iroot::profile) records
//! inter-thread dependencies ([iRoots](iroot::IRoot)) — some observed, some
//! predicted by reversal — and an [active scheduler](active::ActiveScheduler)
//! forces candidate interleavings until a bug is exposed. Because the
//! active scheduler is deterministic, the exposing run can be re-executed
//! under the PinPlay logger, yielding a pinball that DrDebug replays and
//! slices; [`expose()`](expose()) packages the whole pipeline.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use minivm::assemble;
//! use maple::{expose, ExposeOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(assemble(
//!     r"
//!     .data
//!     counter: .word 0
//!     .text
//!     .func main
//!         movi r1, 0
//!         spawn r2, worker, r1
//!         spawn r3, worker, r1
//!         join r2
//!         join r3
//!         la r4, counter
//!         load r5, r4, 0
//!         seqi r6, r5, 2
//!         assert r6        ; fails if an increment was lost
//!         halt
//!     .endfunc
//!     .func worker
//!         la r1, counter
//!         load r2, r1, 0   ; racy read-modify-write
//!         addi r2, r2, 1
//!         store r2, r1, 0
//!         halt
//!     .endfunc
//!     ",
//! )?);
//! let exposure = expose(&program, ExposeOptions::default())
//!     .expect("the lost-update race is exposable");
//! println!("exposed by forcing {}", exposure.iroot);
//! # Ok(())
//! # }
//! ```

pub mod active;
pub mod expose;
pub mod iroot;
pub mod race;

pub use active::ActiveScheduler;
pub use expose::{expose, expose_iroot, expose_with_candidates, ExposeOptions, Exposure};
pub use iroot::{profile, IRoot, Profile};
pub use race::{find_races, Race, RaceDetector, RaceKind};
