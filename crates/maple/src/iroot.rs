//! iRoot profiling: observing and predicting inter-thread dependencies.
//!
//! Maple (OOPSLA'12; paper §6) has "a profiling phase where a set of
//! inter-thread dependencies, some observed and some predicted, are
//! recorded". The unit is the *iRoot*: an ordered pair of program points in
//! different threads whose accesses to the same shared location happen
//! back to back. The profiler here records every observed inter-thread
//! conflicting-access pair, and *predicts* the reversed pair — the
//! interleaving that was *not* seen, which is where untested orderings (and
//! the bugs they hide) live.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use minivm::{Executor, InsEvent, LiveEnv, Loc, Pc, Program, RandomSched, Tid, Tool, ToolControl};
use std::sync::Arc;

/// An inter-thread dependency: thread A executes `src_pc`, then (next
/// conflicting access to the same location) thread B executes `dst_pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IRoot {
    /// First access's program point.
    pub src_pc: Pc,
    /// Second (dependent) access's program point.
    pub dst_pc: Pc,
}

impl IRoot {
    /// The reversed interleaving — Maple's *predicted* candidate.
    pub fn flipped(self) -> IRoot {
        IRoot {
            src_pc: self.dst_pc,
            dst_pc: self.src_pc,
        }
    }
}

impl std::fmt::Display for IRoot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.src_pc, self.dst_pc)
    }
}

/// Profiling results: observed and predicted iRoots with observation counts.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    observed: HashMap<IRoot, u64>,
}

impl Profile {
    /// iRoots seen during profiling, most frequent first.
    pub fn observed(&self) -> Vec<IRoot> {
        let mut v: Vec<(IRoot, u64)> = self.observed.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|&(r, n)| (std::cmp::Reverse(n), r));
        v.into_iter().map(|(r, _)| r).collect()
    }

    /// Predicted (reversed, never-observed) iRoots — the active scheduler's
    /// candidate list, rarest source first (a rarely-seen ordering's
    /// reverse is the most suspicious).
    pub fn predicted(&self) -> Vec<IRoot> {
        let mut v: Vec<IRoot> = self
            .observed
            .keys()
            .map(|r| r.flipped())
            .filter(|r| !self.observed.contains_key(r))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All candidates for active testing: predicted first (untested
    /// interleavings), then observed (already-seen, for reproduction).
    pub fn candidates(&self) -> Vec<IRoot> {
        let mut v = self.predicted();
        v.extend(self.observed());
        v
    }

    /// Number of distinct observed iRoots.
    pub fn len(&self) -> usize {
        self.observed.len()
    }

    /// Whether profiling saw no inter-thread dependencies at all.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }
}

/// A tool that records inter-thread conflicting-access pairs.
#[derive(Debug, Default)]
struct IRootObserver {
    /// addr -> (last accessing tid, last pc, last was write).
    last: HashMap<u64, (Tid, Pc, bool)>,
    observed: HashMap<IRoot, u64>,
}

impl Tool for IRootObserver {
    fn on_event(&mut self, ev: &InsEvent) -> ToolControl {
        let touch = |this: &mut Self, addr: u64, is_write: bool, ev: &InsEvent| {
            if let Some(&(ltid, lpc, lw)) = this.last.get(&addr) {
                if ltid != ev.tid && (lw || is_write) {
                    *this
                        .observed
                        .entry(IRoot {
                            src_pc: lpc,
                            dst_pc: ev.pc,
                        })
                        .or_insert(0) += 1;
                }
            }
            this.last.insert(addr, (ev.tid, ev.pc, is_write));
        };
        for (loc, _) in ev.uses {
            if let Loc::Mem(a) = loc {
                touch(self, a, false, ev);
            }
        }
        for (loc, _) in ev.defs {
            if let Loc::Mem(a) = loc {
                touch(self, a, true, ev);
            }
        }
        ToolControl::Continue
    }
}

/// Runs `runs` randomized profiling executions of `program` and aggregates
/// the observed/predicted iRoots.
pub fn profile(program: &Arc<Program>, runs: u32, base_seed: u64, max_steps: u64) -> Profile {
    let mut observer = IRootObserver::default();
    let mut seed_rng = StdRng::seed_from_u64(base_seed);
    for _ in 0..runs {
        observer.last.clear();
        let mut exec = Executor::new(Arc::clone(program));
        let mut sched = RandomSched::new(seed_rng.gen(), 6);
        let mut env = LiveEnv::new(seed_rng.gen());
        // Traps during profiling are fine — a crashing interleaving is
        // itself signal; `run` stops on them.
        let _ = minivm::run(&mut exec, &mut sched, &mut env, &mut observer, max_steps);
    }
    Profile {
        observed: observer.observed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::assemble;

    #[test]
    fn flipped_swaps_endpoints() {
        let r = IRoot {
            src_pc: 3,
            dst_pc: 9,
        };
        assert_eq!(
            r.flipped(),
            IRoot {
                src_pc: 9,
                dst_pc: 3
            }
        );
        assert_eq!(r.flipped().flipped(), r);
    }

    #[test]
    fn profiler_finds_counter_race_pairs() {
        // Two threads increment a shared counter non-atomically.
        let p = Arc::new(
            assemble(
                r"
                .data
                counter: .word 0
                .text
                .func main
                    movi r1, 0
                    spawn r2, worker, r1
                    spawn r3, worker, r1
                    join r2
                    join r3
                    halt
                .endfunc
                .func worker
                    la r1, counter
                    load r2, r1, 0     ; racy read
                    addi r2, r2, 1
                    store r2, r1, 0    ; racy write
                    halt
                .endfunc
                ",
            )
            .unwrap(),
        );
        let prof = profile(&p, 8, 42, 100_000);
        assert!(!prof.is_empty(), "conflicting accesses must be observed");
        let load_pc = 7; // `load r2, r1, 0` in worker
        let store_pc = 9; // `store r2, r1, 0`
        let has_cross = prof
            .observed()
            .iter()
            .any(|r| r.src_pc == store_pc && r.dst_pc == load_pc);
        assert!(
            has_cross,
            "store->load ordering observed: {:?}",
            prof.observed()
        );
        // Candidates include predictions first.
        let cands = prof.candidates();
        assert!(!cands.is_empty());
    }

    #[test]
    fn single_threaded_program_has_no_iroots() {
        let p = Arc::new(
            assemble(
                r"
                .data
                x: .word 0
                .text
                .func main
                    la r1, x
                    load r2, r1, 0
                    store r2, r1, 0
                    halt
                .endfunc
                ",
            )
            .unwrap(),
        );
        let prof = profile(&p, 4, 1, 10_000);
        assert!(prof.is_empty(), "no inter-thread pairs in 1 thread");
    }
}
