//! The active scheduler: forcing a target interleaving.
//!
//! Maple's "active scheduling phase ... runs the program on a single
//! processor and controls thread execution (by changing scheduling
//! priorities) to enforce the dependencies recorded by the profiler"
//! (paper §6). This scheduler tries to make the target iRoot happen: it
//! *delays* the thread sitting at the iRoot's source point until another
//! thread is positioned at the destination point, then runs source and
//! destination back to back.
//!
//! The scheduler is a deterministic function of the executor state, which
//! is what makes the §6 integration work: once an interleaving exposes the
//! bug, re-running the same active scheduler under the PinPlay logger
//! reproduces it while recording the pinball ("we changed the active
//! scheduler pintool in Maple to optionally do PinPlay-based logging of the
//! buggy execution it exposes").

use minivm::{Executor, Pc, Scheduler, Tid};

use crate::iroot::IRoot;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting to position one thread at `src_pc` and another at `dst_pc`.
    Positioning,
    /// Thread `src` has executed the source access; drive a thread at the
    /// destination next.
    FiredSrc {
        /// The thread that performed the source access.
        src: Tid,
    },
    /// The iRoot has been enforced (or abandoned); finish round-robin.
    Done {
        /// Whether src and dst actually ran back to back.
        enforced: bool,
    },
}

/// A deterministic scheduler that tries to enforce one iRoot.
#[derive(Debug, Clone)]
pub struct ActiveScheduler {
    target: IRoot,
    phase: Phase,
    /// Last pick: (tid, that thread's pc at pick time).
    last: Option<(Tid, Pc)>,
    /// Round-robin cursor for filler scheduling.
    rr: Tid,
    /// Picks spent delaying; bounded to avoid livelock when the target
    /// positioning never materialises.
    delay_budget: u32,
    /// Set when the previous pick deliberately fired the source access
    /// (as opposed to filler scheduling incidentally passing through the
    /// source pc, which must not change phase).
    fired_intent: bool,
}

impl ActiveScheduler {
    /// Creates a scheduler enforcing `target`.
    pub fn new(target: IRoot) -> ActiveScheduler {
        ActiveScheduler {
            target,
            phase: Phase::Positioning,
            last: None,
            rr: 0,
            delay_budget: 200_000,
            fired_intent: false,
        }
    }

    /// Whether the scheduler managed to run src and dst back to back.
    pub fn enforced(&self) -> bool {
        matches!(
            self.phase,
            Phase::Done { enforced: true } | Phase::FiredSrc { .. }
        )
    }

    fn first_at(&self, exec: &Executor, pc: Pc, avoid: Option<Tid>) -> Option<Tid> {
        exec.runnable()
            .find(|&t| exec.thread(t).pc == pc && Some(t) != avoid)
    }

    fn round_robin(&mut self, exec: &Executor, avoid: Option<Tid>) -> Option<Tid> {
        let n = exec.num_threads() as Tid;
        for i in 0..n {
            let cand = (self.rr + i) % n;
            if exec.thread(cand).is_runnable() && Some(cand) != avoid {
                self.rr = (cand + 1) % n;
                return Some(cand);
            }
        }
        // Only the avoided thread is runnable: run it anyway.
        avoid.filter(|&t| exec.thread(t).is_runnable())
    }
}

impl Scheduler for ActiveScheduler {
    fn pick(&mut self, exec: &Executor) -> Option<Tid> {
        // The previously picked thread has retired exactly one instruction
        // by now; "advanced" distinguishes a real access from a spin retry.
        if let Some((t, pc_at_pick)) = self.last {
            let advanced = exec.thread(t).pc != pc_at_pick;
            match self.phase {
                // Only a *deliberate* firing of the source advances the
                // phase; filler scheduling may pass through src_pc without
                // the destination being positioned.
                Phase::Positioning
                    if self.fired_intent && advanced && pc_at_pick == self.target.src_pc =>
                {
                    self.phase = Phase::FiredSrc { src: t };
                }
                Phase::FiredSrc { src }
                    if advanced && pc_at_pick == self.target.dst_pc && t != src =>
                {
                    self.phase = Phase::Done { enforced: true };
                }
                _ => {}
            }
        }
        self.fired_intent = false;

        let pick = match self.phase {
            Phase::Positioning => {
                match self.first_at(exec, self.target.src_pc, None) {
                    Some(s) => {
                        if self.first_at(exec, self.target.dst_pc, Some(s)).is_some() {
                            // Both endpoints positioned: fire the source.
                            self.fired_intent = true;
                            Some(s)
                        } else if self.delay_budget == 0 {
                            self.phase = Phase::Done { enforced: false };
                            self.round_robin(exec, None)
                        } else {
                            // Delay the source; advance others toward dst.
                            self.delay_budget -= 1;
                            self.round_robin(exec, Some(s))
                        }
                    }
                    None => self.round_robin(exec, None),
                }
            }
            Phase::FiredSrc { src } => match self.first_at(exec, self.target.dst_pc, Some(src)) {
                Some(d) => Some(d),
                None if self.delay_budget == 0 => {
                    self.phase = Phase::Done { enforced: false };
                    self.round_robin(exec, None)
                }
                None => {
                    self.delay_budget -= 1;
                    self.round_robin(exec, Some(src))
                }
            },
            Phase::Done { .. } => self.round_robin(exec, None),
        };
        self.last = pick.map(|t| (t, exec.thread(t).pc));
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, run, ExitStatus, LiveEnv, NullTool};

    /// A lost-update race: `counter += 1` in two threads. Under most
    /// schedules both increments land; the active scheduler can force the
    /// interleaving load(A), load(B), store(A), store(B) that loses one.
    const RACE: &str = r"
        .data
        counter: .word 0
        .text
        .func main
            movi r1, 0             ; 0
            spawn r2, worker, r1   ; 1
            spawn r3, worker, r1   ; 2
            join r2                ; 3
            join r3                ; 4
            la r4, counter         ; 5
            load r5, r4, 0         ; 6
            subi r5, r5, 2         ; 7
            seqi r6, r5, 0         ; 8
            assert r6              ; 9 fails when an update was lost
            halt                   ; 10
        .endfunc
        .func worker
            la r1, counter        ; 11
            load r2, r1, 0        ; 12 racy read
            addi r2, r2, 1        ; 13
            store r2, r1, 0       ; 14 racy write
            halt                  ; 15
        .endfunc
        ";

    #[test]
    fn round_robin_schedule_passes() {
        let p = Arc::new(assemble(RACE).unwrap());
        let mut exec = minivm::Executor::new(Arc::clone(&p));
        let r = run(
            &mut exec,
            &mut minivm::RoundRobin::new(50),
            &mut LiveEnv::new(0),
            &mut NullTool,
            100_000,
        );
        assert_eq!(
            r.status,
            ExitStatus::AllHalted,
            "with a coarse quantum the race does not manifest"
        );
    }

    #[test]
    fn active_scheduler_exposes_lost_update() {
        let p = Arc::new(assemble(RACE).unwrap());
        // Force both workers through the racy load (pc 12) back to back,
        // before either stores — the lost-update interleaving.
        let mut sched = ActiveScheduler::new(IRoot {
            src_pc: 12,
            dst_pc: 12,
        });
        let mut exec = minivm::Executor::new(Arc::clone(&p));
        let r = run(
            &mut exec,
            &mut sched,
            &mut LiveEnv::new(0),
            &mut NullTool,
            100_000,
        );
        assert!(
            matches!(
                r.status,
                ExitStatus::Trap(minivm::VmError::AssertFailed { .. })
            ),
            "active scheduling must expose the lost update, got {:?}",
            r.status
        );
        assert!(sched.enforced());
    }

    #[test]
    fn active_scheduler_is_deterministic() {
        let p = Arc::new(assemble(RACE).unwrap());
        let run_once = || {
            let mut sched = ActiveScheduler::new(IRoot {
                src_pc: 12,
                dst_pc: 12,
            });
            let mut exec = minivm::Executor::new(Arc::clone(&p));
            let r = run(
                &mut exec,
                &mut sched,
                &mut LiveEnv::new(0),
                &mut NullTool,
                100_000,
            );
            (r.status, r.steps, exec.snapshot())
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2, "same interleaving, bit-identical state");
    }

    #[test]
    fn unreachable_iroot_still_terminates() {
        let p = Arc::new(assemble(RACE).unwrap());
        let mut sched = ActiveScheduler::new(IRoot {
            src_pc: 9999,
            dst_pc: 9998,
        });
        let mut exec = minivm::Executor::new(Arc::clone(&p));
        let r = run(
            &mut exec,
            &mut sched,
            &mut LiveEnv::new(0),
            &mut NullTool,
            1_000_000,
        );
        assert_ne!(r.status, ExitStatus::FuelExhausted);
    }
}
