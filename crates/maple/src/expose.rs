//! The full Maple usage model: profile, actively test, record on exposure.
//!
//! Paper §6: Maple "helps when a programmer accidentally hits a bug for
//! some input but is unable to reproduce the bug"; its "active scheduler
//! does multiple runs until the bug is exposed", and the DrDebug
//! integration makes the scheduler "optionally do PinPlay-based logging of
//! the buggy execution it exposes. ... The pinballs generated could be
//! readily replayed and debugged under GDB."

use std::sync::Arc;

use minivm::{ExitStatus, LiveEnv, NullTool, Program, VmError};
use pinplay::{record_whole_program, Recording};

use crate::active::ActiveScheduler;
use crate::iroot::{profile, IRoot, Profile};

/// A successfully exposed-and-recorded bug.
#[derive(Debug)]
pub struct Exposure {
    /// The interleaving pattern that exposed the bug.
    pub iroot: IRoot,
    /// The trap the bug manifests as.
    pub error: VmError,
    /// The pinball recording of the buggy execution, ready for DrDebug.
    pub recording: Recording,
    /// How many candidate iRoots were tried before exposure.
    pub attempts: usize,
}

/// Configuration for [`expose`].
#[derive(Debug, Clone, Copy)]
pub struct ExposeOptions {
    /// Profiling runs before active testing.
    pub profile_runs: u32,
    /// RNG seed for profiling schedules.
    pub seed: u64,
    /// Per-run step budget.
    pub max_steps: u64,
    /// Environment seed used for the active-scheduling runs (fixed so the
    /// recording run reproduces the exposing run exactly).
    pub env_seed: u64,
}

impl Default for ExposeOptions {
    fn default() -> ExposeOptions {
        ExposeOptions {
            profile_runs: 8,
            seed: 0,
            max_steps: 5_000_000,
            env_seed: 0,
        }
    }
}

/// Profiles `program`, then actively tests candidate iRoots until one
/// exposes a trap; the exposing execution is re-run under the PinPlay
/// logger and returned as a pinball.
///
/// Returns `None` when no candidate interleaving exposes a bug.
pub fn expose(program: &Arc<Program>, options: ExposeOptions) -> Option<Exposure> {
    let prof = profile(
        program,
        options.profile_runs,
        options.seed,
        options.max_steps,
    );
    expose_with_candidates(program, &prof, options)
}

/// Like [`expose`], but with a precomputed profile (so tests and the
/// benchmark harness can control the candidate list).
pub fn expose_with_candidates(
    program: &Arc<Program>,
    prof: &Profile,
    options: ExposeOptions,
) -> Option<Exposure> {
    for (attempts, iroot) in prof.candidates().into_iter().enumerate() {
        if let Some(mut exposure) = expose_iroot(program, iroot, options) {
            exposure.attempts = attempts + 1;
            return Some(exposure);
        }
    }
    None
}

/// Actively tests one specific iRoot (the "programmer suspects this
/// ordering" entry point); returns the exposure when forcing it traps.
pub fn expose_iroot(
    program: &Arc<Program>,
    iroot: IRoot,
    options: ExposeOptions,
) -> Option<Exposure> {
    // Dry run: does this interleaving trap?
    let mut sched = ActiveScheduler::new(iroot);
    let mut exec = minivm::Executor::new(Arc::clone(program));
    let result = minivm::run(
        &mut exec,
        &mut sched,
        &mut LiveEnv::new(options.env_seed),
        &mut NullTool,
        options.max_steps,
    );
    let ExitStatus::Trap(error) = result.status else {
        return None;
    };
    // Exposure: re-run the identical (deterministic) schedule under the
    // logger to capture the pinball.
    let mut sched = ActiveScheduler::new(iroot);
    let mut env = LiveEnv::new(options.env_seed);
    let recording = record_whole_program(
        program,
        &mut sched,
        &mut env,
        options.max_steps,
        "maple-exposed",
    )
    .expect("recording the deterministic exposing run cannot fail");
    debug_assert_eq!(
        recording.pinball.exit,
        pinplay::RecordedExit::Trap(error),
        "recording run must reproduce the exposing run"
    );
    Some(Exposure {
        iroot,
        error,
        recording,
        attempts: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, NullTool};
    use pinplay::{ReplayStatus, Replayer};

    const RACE: &str = r"
        .data
        counter: .word 0
        .text
        .func main
            movi r1, 0
            spawn r2, worker, r1
            spawn r3, worker, r1
            join r2
            join r3
            la r4, counter
            load r5, r4, 0
            subi r5, r5, 2
            seqi r6, r5, 0
            assert r6
            halt
        .endfunc
        .func worker
            la r1, counter
            load r2, r1, 0
            addi r2, r2, 1
            store r2, r1, 0
            halt
        .endfunc
        ";

    #[test]
    fn exposes_and_records_the_lost_update() {
        let p = Arc::new(assemble(RACE).unwrap());
        let exposure = expose(&p, ExposeOptions::default()).expect("race must be exposed");
        assert!(matches!(exposure.error, VmError::AssertFailed { .. }));
        assert!(exposure.recording.region_instructions > 0);

        // The pinball replays the bug deterministically — twice.
        for _ in 0..2 {
            let mut rep = Replayer::new(Arc::clone(&p), &exposure.recording.pinball);
            let status = rep.run(&mut NullTool);
            assert_eq!(status, ReplayStatus::Trapped(exposure.error));
        }
    }

    #[test]
    fn bug_free_program_yields_no_exposure() {
        // The same counter, but incremented atomically: no interleaving
        // loses an update.
        let p = Arc::new(
            assemble(
                r"
                .data
                counter: .word 0
                .text
                .func main
                    movi r1, 0
                    spawn r2, worker, r1
                    spawn r3, worker, r1
                    join r2
                    join r3
                    la r4, counter
                    load r5, r4, 0
                    subi r5, r5, 2
                    seqi r6, r5, 0
                    assert r6
                    halt
                .endfunc
                .func worker
                    la r1, counter
                    movi r3, 1
                    xadd r2, r1, r3
                    halt
                .endfunc
                ",
            )
            .unwrap(),
        );
        assert!(expose(&p, ExposeOptions::default()).is_none());
    }
}
