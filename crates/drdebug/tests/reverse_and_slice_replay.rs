//! Differential and property tests for the pillar-4 loop: relogged slice
//! pinballs replay exactly the slice statements, and reverse execution is
//! the exact inverse of forward execution.

use std::collections::BTreeSet;
use std::sync::Arc;

use minivm::{assemble, LiveEnv, Pc, RoundRobin};
use pinplay::{record_whole_program, PinballContainer};
use proptest::prelude::*;

use drdebug::stepper::{SliceStep, SliceStepper};
use drdebug::{DebugSession, StopReason};
use slicer::{
    compute_slice_indexed, Criterion, DepIndex, SliceOptions, SliceSession, SlicerOptions,
};

/// Two racing workers bump a shared accumulator and churn an unrelated
/// `junk` chain the slice must exclude.
const MT_PROG: &str = r"
    .data
    acc: .word 0
    junk: .word 0
    .text
    .func main
        movi r1, 1
        spawn r2, worker, r1
        movi r1, 2
        spawn r3, worker, r1
        join r2
        join r3
        la r1, acc
        load r4, r1, 0   ; pc 7: the slice criterion reads acc
        halt
    .endfunc
    .func worker
        movi r3, 12
    loop:
        la r1, acc
        xadd r2, r1, r3
        la r4, junk
        load r5, r4, 0
        addi r5, r5, 3
        store r5, r4, 0
        subi r3, r3, 1
        bgti r3, 0, loop
        halt
    .endfunc
    ";

fn record_mt(quantum: u64, seed: u64) -> (Arc<minivm::Program>, pinplay::Pinball) {
    let program = Arc::new(assemble(MT_PROG).unwrap());
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(quantum),
        &mut LiveEnv::new(seed),
        1_000_000,
        "reverse-slice-test",
    )
    .unwrap();
    (program, rec.pinball)
}

/// Stepping the slice pinball visits exactly the statements
/// `compute_slice_indexed` put in the slice — same record-id set, same
/// pc set — on a multi-threaded region with excluded side-effect chains.
#[test]
fn slice_pinball_steps_exactly_the_indexed_slice_statements() {
    let (program, pinball) = record_mt(7, 42);
    let session = SliceSession::collect(Arc::clone(&program), &pinball, SlicerOptions::default());
    let criterion = Criterion::Record {
        id: session.last_at_pc(7).expect("acc read executed").id,
    };
    let opts = SliceOptions::default();
    let index = DepIndex::build(session.trace(), session.pairs(), &opts);
    let slice = compute_slice_indexed(&index, criterion);
    assert!(!slice.records.is_empty());

    let (slice_pb, relog_stats, excl_stats) = session.make_slice_pinball(&pinball, &slice);
    assert!(excl_stats.excluded > 0, "junk chain must be excluded");
    assert_eq!(relog_stats.included, slice_pb.logged_instructions());

    let stepper = SliceStepper::new(&session, &slice, &slice_pb);
    let (stops, terminal) = stepper.walk();
    assert_eq!(terminal, SliceStep::Finished);

    let visited_records: BTreeSet<_> = stops.iter().map(|&(_, _, id)| id).collect();
    let slice_records: BTreeSet<_> = slice.records.iter().copied().collect();
    assert_eq!(
        visited_records, slice_records,
        "slice replay stops at exactly the slice statement instances"
    );

    let visited_pcs: BTreeSet<Pc> = stops.iter().map(|&(_, pc, _)| pc).collect();
    let slice_pcs: BTreeSet<Pc> = slice.pcs(session.trace()).into_iter().collect();
    assert_eq!(visited_pcs, slice_pcs, "same pc set as the indexed slice");
}

/// The same equality must hold when the slice pinball comes out of the
/// debugger's relog path (v3 container with embedded checkpoints) and is
/// replayed as a fresh `DebugSession`.
#[test]
fn relogged_container_replays_only_kept_instructions() {
    let (program, pinball) = record_mt(7, 42);
    let container = PinballContainer::with_checkpoints(pinball, &program, 64);
    let mut s = DebugSession::with_container(Arc::clone(&program), container);
    s.cont();
    let slice = s.slice_failure().expect("trace nonempty");
    let idx = s.save_slice(slice);
    let (slice_container, report) = s.relog_slice(idx);
    assert_eq!(slice_container.digest(), report.digest);
    assert_eq!(report.kept, slice_container.pinball.logged_instructions());
    assert!(report.excluded > 0);

    // The relogged container opens as an ordinary session and replays to
    // completion in exactly `kept` instructions.
    let mut sliced = DebugSession::with_container(Arc::clone(&program), slice_container);
    assert_eq!(sliced.cont(), StopReason::ReplayEnd);
    assert_eq!(sliced.position(), report.kept);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Forward/reverse inversion on randomized multi-threaded programs:
    /// `reverse_step` after `run_steps(n)` lands on the state hash of step
    /// `n - 1`, and walking all the way back reproduces every recorded
    /// hash.
    #[test]
    fn reverse_step_inverts_run_steps(
        quantum in 1u64..16,
        seed in 0u64..1024,
        prefix in 1u64..60,
    ) {
        let (program, pinball) = record_mt(quantum, seed);
        let total = pinball.logged_instructions();
        let container = PinballContainer::with_checkpoints(pinball, &program, 32);
        let mut s = DebugSession::with_container(program, container);
        s.set_checkpoint_interval(16);

        let n = prefix.min(total);
        let mut hashes = vec![s.state_hash()];
        for _ in 0..n {
            s.run_steps(1);
            hashes.push(s.state_hash());
        }
        prop_assert_eq!(s.position(), n);

        // One reverse step lands on the hash of step n - 1 ...
        s.reverse_step();
        prop_assert_eq!(s.state_hash(), hashes[n as usize - 1]);
        // ... and the whole walk back reproduces every forward state.
        for k in (0..n as usize - 1).rev() {
            s.reverse_step();
            prop_assert_eq!(s.state_hash(), hashes[k]);
        }
        prop_assert_eq!(s.position(), 0);
    }
}

/// `reverse_continue` with container-embedded checkpoints searches
/// checkpoint windows instead of rescanning from the region entry.
#[test]
fn reverse_continue_uses_checkpoint_windows() {
    let (program, pinball) = record_mt(7, 42);
    let container = PinballContainer::with_checkpoints(pinball, &program, 64);
    assert!(!container.checkpoints.is_empty());
    let mut s = DebugSession::with_container(Arc::clone(&program), container);

    // Break on the accumulator bump, run forward through two hits, then
    // reverse to the previous one.
    let bp = s.add_breakpoint(11, None); // worker xadd
    let first = s.cont();
    assert!(matches!(first, StopReason::Breakpoint { .. }), "{first:?}");
    let first_pos = s.position();
    s.cont();
    let second_pos = s.position();
    assert!(second_pos > first_pos);
    let back = s.reverse_continue();
    assert!(
        matches!(back, StopReason::Breakpoint { id, .. } if id == bp),
        "{back:?}"
    );
    assert_eq!(s.position(), first_pos, "lands on the previous hit");
    assert_eq!(
        s.seek_metrics().full_restarts,
        0,
        "windowed search restores checkpoints, never the region entry: {:?}",
        s.seek_metrics()
    );
}
