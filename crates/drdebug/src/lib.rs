//! # drdebug — deterministic replay based cyclic debugging with dynamic slicing
//!
//! The top of the tool-chain the DrDebug paper (CGO 2014) describes: an
//! interactive debugger that runs entirely off [pinballs](pinplay::Pinball).
//!
//! * [`session::DebugSession`] — replay-based debugging:
//!   breakpoints, stepping, state inspection, and `restart` for cyclic
//!   debugging with a repeatability guarantee (paper Fig. 2);
//! * [`commands::CommandInterpreter`] — the gdb-style
//!   command surface with the paper's new slicing commands;
//! * [`browse::SliceBrowser`] — backward navigation over the
//!   dynamic dependence graph (the KDbg GUI of paper Fig. 9);
//! * [`stepper::SliceStepper`] — forward stepping through an
//!   *execution slice* replayed from a slice pinball, "stepping from the
//!   execution of one statement in the slice to the next while examining
//!   the values of variables" (paper §4) — the capability the paper notes
//!   no other slicing tool provides.
//!
//! # Example: the whole workflow on a failing run
//!
//! ```
//! use std::sync::Arc;
//! use minivm::{assemble, LiveEnv, RoundRobin};
//! use pinplay::record_whole_program;
//! use drdebug::{CommandInterpreter, DebugSession};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(assemble(
//!     r"
//!     .text
//!     .func main
//!         movi r1, 1
//!         subi r1, r1, 1
//!         assert r1        ; fails
//!     .endfunc
//!     ",
//! )?);
//! let rec = record_whole_program(
//!     &program,
//!     &mut RoundRobin::new(8),
//!     &mut LiveEnv::new(0),
//!     10_000,
//!     "doc",
//! )?;
//! let mut dbg = CommandInterpreter::new(DebugSession::new(program, rec.pinball));
//! let out = dbg.execute("continue");
//! assert!(out.contains("trap reproduced"));
//! let out = dbg.execute("slice-failure");
//! assert!(out.contains("slice computed"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod adx;
pub mod browse;
pub mod commands;
pub mod live;
pub mod session;
pub mod stepper;

pub use adx::{spawn_engine, spawn_engine_container, AdxClient, AdxRequest, AdxResponse};
pub use browse::{DepEdge, SliceBrowser};
pub use commands::CommandInterpreter;
pub use live::{LiveSession, LiveStop};
pub use session::{
    Breakpoint, DebugSession, RelogReport, SeekMetrics, StopReason, StopSite, Watchpoint,
};
pub use stepper::{SliceStep, SliceStepper};
