//! Slice browsing and backward navigation — the KDbg GUI's moral
//! equivalent (paper Fig. 9).
//!
//! The GUI lets the programmer see all slice statements highlighted, click
//! a statement to see its concrete (inter-thread) dependences, and
//! "navigate backwards along dependence edges by clicking on the Activate
//! button of the dependent statement". [`SliceBrowser`] provides the same
//! operations as an API plus a text rendering: a cursor over the dynamic
//! dependence graph that can move backward along data or control edges.

use minivm::Program;
use slicer::{DataEdge, GlobalTrace, RecordId, Slice};

/// One outgoing dependence of the cursor's statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepEdge {
    /// A data dependence through `key`.
    Data {
        /// The defining record.
        def: RecordId,
        /// Rendered location (e.g. `t0:r3` or `[0x1000]`).
        key: String,
        /// The concrete value that flowed along the edge (what the cursor's
        /// statement read) — the GUI shows these next to each dependence.
        value: Option<i64>,
    },
    /// The dynamic control dependence.
    Control {
        /// The controlling branch record.
        branch: RecordId,
    },
}

/// A navigable view over a computed slice.
#[derive(Debug)]
pub struct SliceBrowser<'a> {
    slice: &'a Slice,
    trace: &'a GlobalTrace,
    cursor: RecordId,
}

impl<'a> SliceBrowser<'a> {
    /// Opens a browser positioned at the slice criterion.
    pub fn new(slice: &'a Slice, trace: &'a GlobalTrace) -> SliceBrowser<'a> {
        SliceBrowser {
            slice,
            trace,
            cursor: slice.criterion.record_id(),
        }
    }

    /// The record the cursor is on.
    pub fn cursor(&self) -> RecordId {
        self.cursor
    }

    /// Moves the cursor to an arbitrary slice record.
    ///
    /// Returns false (cursor unchanged) when `id` is not in the slice.
    pub fn goto(&mut self, id: RecordId) -> bool {
        if self.slice.records.contains(&id) {
            self.cursor = id;
            true
        } else {
            false
        }
    }

    /// Statement instances in the slice, in execution (global) order.
    pub fn statements(&self) -> Vec<RecordId> {
        let mut v: Vec<RecordId> = self.slice.records.iter().copied().collect();
        v.sort_by_key(|&id| self.trace.position(id));
        v
    }

    /// The dependences of the cursor's statement: every data edge plus the
    /// control edge, backward-navigable.
    pub fn deps(&self) -> Vec<DepEdge> {
        let user_record = self.trace.record(self.cursor);
        let mut out: Vec<DepEdge> = self
            .slice
            .data_edges
            .iter()
            .filter(|e| e.user == self.cursor)
            .map(|e: &DataEdge| {
                let value = user_record
                    .and_then(|r| r.use_keys(true).find(|(k, _)| *k == e.key).map(|(_, v)| v));
                DepEdge::Data {
                    def: e.def,
                    key: e.key.to_string(),
                    value,
                }
            })
            .collect();
        if let Some(&(_, branch)) = self
            .slice
            .control_edges
            .iter()
            .find(|&&(dep, _)| dep == self.cursor)
        {
            out.push(DepEdge::Control { branch });
        }
        out
    }

    /// Follows the `idx`-th dependence backward (the GUI's "Activate"),
    /// moving the cursor to the defining/controlling statement.
    ///
    /// Returns the new cursor, or `None` when `idx` is out of range.
    pub fn activate(&mut self, idx: usize) -> Option<RecordId> {
        let target = match self.deps().into_iter().nth(idx)? {
            DepEdge::Data { def, .. } => def,
            DepEdge::Control { branch } => branch,
        };
        self.cursor = target;
        Some(target)
    }

    /// Describes the cursor's statement (thread, instance, instruction,
    /// source line).
    pub fn describe_cursor(&self, program: &Program) -> String {
        self.describe_record(self.cursor, program)
    }

    /// Describes an arbitrary record of the trace.
    pub fn describe_record(&self, id: RecordId, program: &Program) -> String {
        match self.trace.record(id) {
            Some(r) => format!(
                "t{} {}#{} line {}: {}",
                r.tid,
                program.describe_pc(r.pc),
                r.instance,
                r.line,
                r.instr
            ),
            None => format!("<record {id} not in trace>"),
        }
    }

    /// Renders the program listing with slice statements marked — the
    /// text-mode analogue of KDbg's yellow highlighting.
    pub fn render_listing(&self, program: &Program) -> String {
        let pcs = self.slice.pcs(self.trace);
        let cursor_pc = self.trace.record(self.cursor).map(|r| r.pc);
        let mut out = String::new();
        for (pc, ins) in program.code.iter().enumerate() {
            let pc = pc as u32;
            if let Some(f) = program.functions.iter().find(|f| f.entry == pc) {
                out.push_str(&format!("{}:\n", f.name));
            }
            let mark = if Some(pc) == cursor_pc {
                "=>"
            } else if pcs.contains(&pc) {
                " *"
            } else {
                "  "
            };
            out.push_str(&format!("{mark} {pc:>5}  {ins}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;
    use slicer::{Criterion, SliceSession, SlicerOptions};

    fn setup() -> (Arc<minivm::Program>, SliceSession) {
        let program = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r1, 2      ; 0
                    movi r9, 99    ; 1 (irrelevant)
                    addi r2, r1, 3  ; 2
                    beqi r2, 5, t   ; 3
                    nop             ; 4
                t:
                    add r3, r2, r1  ; 5
                    halt            ; 6
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "browse-test",
        )
        .unwrap();
        let session =
            SliceSession::collect(Arc::clone(&program), &rec.pinball, SlicerOptions::default());
        (program, session)
    }

    #[test]
    fn navigate_backward_along_data_edges() {
        let (_, session) = setup();
        let crit = session.last_at_pc(5).unwrap().id;
        let slice = session.slice(Criterion::Record { id: crit });
        let mut browser = SliceBrowser::new(&slice, session.trace());
        assert_eq!(browser.cursor(), crit);
        let deps = browser.deps();
        assert!(!deps.is_empty(), "criterion has data deps");
        // Follow the first data edge backward.
        let new_cursor = browser.activate(0).unwrap();
        assert_ne!(new_cursor, crit);
        assert!(slice.records.contains(&new_cursor));
    }

    #[test]
    fn statements_are_in_execution_order() {
        let (_, session) = setup();
        let crit = session.last_at_pc(5).unwrap().id;
        let slice = session.slice(Criterion::Record { id: crit });
        let browser = SliceBrowser::new(&slice, session.trace());
        let stmts = browser.statements();
        let positions: Vec<usize> = stmts
            .iter()
            .map(|&id| session.trace().position(id).unwrap())
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn listing_marks_slice_and_cursor() {
        let (program, session) = setup();
        let crit = session.last_at_pc(5).unwrap().id;
        let slice = session.slice(Criterion::Record { id: crit });
        let browser = SliceBrowser::new(&slice, session.trace());
        let listing = browser.render_listing(&program);
        assert!(listing.contains("=>     5"), "cursor marked:\n{listing}");
        assert!(
            listing.contains(" *     0"),
            "slice line marked:\n{listing}"
        );
        assert!(
            listing.contains("       1"),
            "irrelevant line unmarked:\n{listing}"
        );
    }

    #[test]
    fn goto_rejects_non_slice_records() {
        let (_, session) = setup();
        let crit = session.last_at_pc(5).unwrap().id;
        let slice = session.slice(Criterion::Record { id: crit });
        let irrelevant = session.last_at_pc(1).unwrap().id;
        let mut browser = SliceBrowser::new(&slice, session.trace());
        assert!(!browser.goto(irrelevant));
        assert_eq!(browser.cursor(), crit);
    }

    #[test]
    fn control_edge_navigable() {
        let (_, session) = setup();
        // Slice at the instruction *after* the branch... pc 5 is control
        // dependent on the branch at 3 only if 5 is inside its region; the
        // branch jumps to 5 which is its postdominator, so instead check
        // via a guarded statement. Use the branch itself in-slice via data.
        let crit = session.last_at_pc(5).unwrap().id;
        let slice = session.slice(Criterion::Record { id: crit });
        let browser = SliceBrowser::new(&slice, session.trace());
        // Every slice record's deps resolve to slice members.
        for &id in &browser.statements() {
            let mut b = SliceBrowser::new(&slice, session.trace());
            b.goto(id);
            for (i, _) in b.deps().iter().enumerate() {
                let mut b2 = SliceBrowser::new(&slice, session.trace());
                b2.goto(id);
                let t = b2.activate(i).unwrap();
                assert!(slice.records.contains(&t), "edges stay inside the slice");
            }
        }
    }
}
