//! Stepping through an execution slice (paper §4, Fig. 4(c)).
//!
//! "Finally, the user can replay the execution slice using the slice
//! pinball. During this execution, breakpoints are automatically introduced
//! allowing the user to step from the execution of one statement in the
//! slice to the next. At each of these points, the user can examine the
//! program state." The paper stresses that no prior slicing tool supports
//! this: slices elsewhere are postmortem artifacts.
//!
//! The subtlety is instance numbering: in the slice replay, excluded
//! executions never happen, so the k-th execution of a pc corresponds to
//! the k-th *kept* execution in the region — which may be the region's
//! n-th. The stepper precomputes that mapping from the region trace, so it
//! can tell slice statements apart from instructions that were kept only
//! because they are synchronization/lifecycle operations.

use std::collections::HashMap;
use std::sync::Arc;

use minivm::{Pc, Program, Tid, ToolControl, VmError};
use pinplay::{Pinball, ReplayStatus, Replayer};
use slicer::{is_force_included, RecordId, Slice, SliceSession};

/// Where a slice step landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceStep {
    /// Stopped at a slice statement; the region-trace record id identifies
    /// it for cross-referencing with the slice browser.
    AtStatement {
        /// Executing thread.
        tid: Tid,
        /// Program point.
        pc: Pc,
        /// Region-trace record id of this statement instance.
        record: RecordId,
    },
    /// The slice replay finished.
    Finished,
    /// The recorded trap reproduced (the failure the slice explains).
    Trapped(VmError),
}

/// Replays a slice pinball, stopping at each slice statement.
pub struct SliceStepper {
    replayer: Replayer,
    /// The slice pinball, kept so the stepper can [`restart`](Self::restart)
    /// for another cyclic pass over the slice.
    pinball: Pinball,
    /// (tid, pc) -> kept executions in region order: (region record id,
    /// is-in-slice).
    kept: HashMap<(Tid, Pc), Vec<(RecordId, bool)>>,
    /// (tid, pc) -> how many times the slice replay has executed it.
    counts: HashMap<(Tid, Pc), u64>,
    program: Arc<Program>,
}

impl std::fmt::Debug for SliceStepper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SliceStepper")
            .field("finished", &self.replayer.finished())
            .finish()
    }
}

impl SliceStepper {
    /// Creates a stepper over `slice_pinball`, using the region trace in
    /// `session` and the saved `slice` to recognise slice statements.
    pub fn new(session: &SliceSession, slice: &Slice, slice_pinball: &Pinball) -> SliceStepper {
        let program = Arc::clone(session.program());
        let mut kept: HashMap<(Tid, Pc), Vec<(RecordId, bool)>> = HashMap::new();
        // Region records in execution order per thread (ids are retire
        // order, so a simple sort suffices).
        let mut records: Vec<&slicer::TraceRecord> = session.trace().records().iter().collect();
        records.sort_unstable_by_key(|r| r.id);
        for r in records {
            let in_slice = slice.records.contains(&r.id);
            if in_slice || is_force_included(r) {
                kept.entry((r.tid, r.pc))
                    .or_default()
                    .push((r.id, in_slice));
            }
        }
        SliceStepper {
            replayer: Replayer::new(Arc::clone(&program), slice_pinball),
            pinball: slice_pinball.clone(),
            kept,
            counts: HashMap::new(),
            program,
        }
    }

    /// Restarts the slice replay from the region entry — the cyclic
    /// debugging loop at slice granularity. The next [`step`](Self::step)
    /// stops at the first slice statement again, observing identical state.
    pub fn restart(&mut self) {
        self.replayer = Replayer::new(Arc::clone(&self.program), &self.pinball);
        self.counts.clear();
    }

    /// The program being replayed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Read access to the replayed state, for examining variables at each
    /// slice statement.
    pub fn exec(&self) -> &minivm::Executor {
        self.replayer.exec()
    }

    /// Runs to the next slice statement (the auto-inserted breakpoint).
    pub fn step(&mut self) -> SliceStep {
        let kept = &self.kept;
        let counts = &mut self.counts;
        let mut stop_at: Option<(Tid, Pc, RecordId)> = None;
        let mut tool = |ev: &minivm::InsEvent| {
            let c = counts.entry((ev.tid, ev.pc)).or_insert(0);
            *c += 1;
            let k = *c as usize - 1;
            match kept.get(&(ev.tid, ev.pc)).and_then(|v| v.get(k)) {
                Some(&(record, true)) => {
                    stop_at = Some((ev.tid, ev.pc, record));
                    ToolControl::Stop
                }
                _ => ToolControl::Continue,
            }
        };
        match self.replayer.run(&mut tool) {
            ReplayStatus::Paused => {
                let (tid, pc, record) = stop_at.expect("paused implies a slice statement");
                SliceStep::AtStatement { tid, pc, record }
            }
            ReplayStatus::Trapped(e) => SliceStep::Trapped(e),
            ReplayStatus::Completed => SliceStep::Finished,
        }
    }

    /// Collects the full itinerary: every slice statement in order, then
    /// the terminal condition. Convenience for tests and examples.
    pub fn walk(mut self) -> (Vec<(Tid, Pc, RecordId)>, SliceStep) {
        let mut stops = Vec::new();
        loop {
            match self.step() {
                SliceStep::AtStatement { tid, pc, record } => stops.push((tid, pc, record)),
                terminal => return (stops, terminal),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, LiveEnv, Reg, RoundRobin};
    use pinplay::record_whole_program;
    use slicer::{Criterion, SlicerOptions};

    #[test]
    fn stepper_visits_exactly_the_slice_statements() {
        let program = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r1, 2      ; 0  in slice
                    movi r9, 50     ; 1  excluded
                    addi r9, r9, 1  ; 2  excluded
                    addi r2, r1, 3  ; 3  in slice
                    muli r9, r9, 2  ; 4  excluded
                    add  r3, r2, r1 ; 5  in slice (criterion)
                    halt            ; 6  force-included, not a slice stop
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "step-test",
        )
        .unwrap();
        let session = slicer::SliceSession::collect(
            Arc::clone(&program),
            &rec.pinball,
            SlicerOptions::default(),
        );
        let crit = session.last_at_pc(5).unwrap().id;
        let slice = session.slice(Criterion::Record { id: crit });
        let (slice_pb, _, _) = session.make_slice_pinball(&rec.pinball, &slice);

        let stepper = SliceStepper::new(&session, &slice, &slice_pb);
        let (stops, terminal) = stepper.walk();
        let pcs: Vec<Pc> = stops.iter().map(|&(_, pc, _)| pc).collect();
        assert_eq!(pcs, vec![0, 3, 5], "stops exactly at slice statements");
        assert_eq!(terminal, SliceStep::Finished);
    }

    #[test]
    fn values_observable_at_each_stop() {
        let program = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r1, 10    ; 0
                    movi r9, 1     ; 1 excluded
                    addi r1, r1, 5 ; 2
                    halt           ; 3
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "step-values",
        )
        .unwrap();
        let session = slicer::SliceSession::collect(
            Arc::clone(&program),
            &rec.pinball,
            SlicerOptions::default(),
        );
        let crit = session.last_at_pc(2).unwrap().id;
        let slice = session.slice(Criterion::Record { id: crit });
        let (slice_pb, _, _) = session.make_slice_pinball(&rec.pinball, &slice);

        let mut stepper = SliceStepper::new(&session, &slice, &slice_pb);
        // First stop: after movi r1, 10.
        let s1 = stepper.step();
        assert!(matches!(s1, SliceStep::AtStatement { pc: 0, .. }));
        assert_eq!(stepper.exec().read_reg(0, Reg(1)), 10);
        // Second stop: after addi.
        let s2 = stepper.step();
        assert!(matches!(s2, SliceStep::AtStatement { pc: 2, .. }));
        assert_eq!(stepper.exec().read_reg(0, Reg(1)), 15);
        assert_eq!(stepper.step(), SliceStep::Finished);
    }
}
