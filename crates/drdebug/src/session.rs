//! The replay-based debug session — DrDebug's core loop (paper Fig. 2).
//!
//! A [`DebugSession`] replays a pinball under interactive control: set
//! breakpoints, continue, single-step, inspect registers and memory — "all
//! regular debugging commands (except state modification) continue to work"
//! (paper §1). Because every run replays the same pinball, each debug
//! iteration "observes the exact same program state (heap/stack location,
//! outcome of system calls, thread schedule)": [`DebugSession::restart`] is
//! the cyclic-debugging primitive.
//!
//! On top of replay the session serves the paper's new commands: computing
//! dynamic slices at a stop point, saving a slice, generating the slice
//! pinball via the relogger, and re-seating the session on the slice
//! pinball for slice-level stepping (paper Fig. 4).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use minivm::{Addr, Pc, Program, Reg, Tid, ToolControl, VmError};
use pinplay::{Pinball, PinballContainer, PinballDigest, ReplayStatus, Replayer};
use slicer::{
    compute_slice_indexed, Criterion, DepIndex, LocKey, Slice, SliceMetrics, SliceOptions,
    SliceSession, SliceStats, SlicerOptions,
};

/// A breakpoint on a program point, optionally filtered by thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breakpoint {
    /// Program point.
    pub pc: Pc,
    /// Restrict to one thread (`None` = any thread).
    pub tid: Option<Tid>,
    /// Disabled breakpoints are kept but never hit.
    pub enabled: bool,
}

/// A watchpoint on a memory word: the session stops when it is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchpoint {
    /// Watched address.
    pub addr: Addr,
    /// Disabled watchpoints are kept but never hit.
    pub enabled: bool,
}

/// Why the session stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A breakpoint was hit (the instruction at its pc has just retired).
    Breakpoint {
        /// Breakpoint id.
        id: u32,
        /// Thread that hit it.
        tid: Tid,
        /// The breakpoint's pc.
        pc: Pc,
    },
    /// A watchpoint was hit: the watched address was just written.
    Watchpoint {
        /// Watchpoint id.
        id: u32,
        /// Writing thread.
        tid: Tid,
        /// The writing instruction's pc.
        pc: Pc,
        /// The value written.
        value: i64,
    },
    /// Reverse execution reached the region entry.
    ReplayStart,
    /// One instruction was stepped.
    Stepped {
        /// Thread that stepped.
        tid: Tid,
        /// The stepped instruction's pc.
        pc: Pc,
    },
    /// The replay log is exhausted — the end of the recorded region.
    ReplayEnd,
    /// The recorded trap reproduced (the bug fired, deterministically).
    Trapped(VmError),
}

/// Where the session last stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopSite {
    /// Thread of the last retired instruction.
    pub tid: Tid,
    /// Its pc.
    pub pc: Pc,
    /// Its region-relative instance count.
    pub instance: u64,
    /// Its region-relative global sequence number (slice criterion handle).
    pub seq: u64,
}

/// Counters for the session's seek machinery: how stop-point repositioning
/// was served. Reported alongside [`SliceMetrics`] by the `metrics`
/// command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeekMetrics {
    /// Seeks performed (reverse execution, `seek`, and cached `continue`).
    pub seeks: u64,
    /// Seeks served by restoring an embedded container checkpoint.
    pub container_restores: u64,
    /// Seeks served by a session-local (in-memory) checkpoint clone.
    pub session_restores: u64,
    /// Seeks that had to restart replay from the region entry — the
    /// O(region) fallback the chunked container exists to avoid.
    pub full_restarts: u64,
    /// `continue` calls answered from the hop cache (cyclic-debugging
    /// re-runs with an unchanged breakpoint set).
    pub hop_hits: u64,
    /// Instructions replayed while seeking.
    pub instructions_replayed: u64,
    /// Wall time spent seeking.
    pub wall: Duration,
}

impl std::fmt::Display for SeekMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "seeks            {:>8}  ({} container restores, {} session restores, {} full restarts)",
            self.seeks, self.container_restores, self.session_restores, self.full_restarts
        )?;
        writeln!(f, "hop-cache hits   {:>8}", self.hop_hits)?;
        writeln!(
            f,
            "seek replay      {:>8} instructions in {:?}",
            self.instructions_replayed, self.wall
        )
    }
}

/// An interactive, replay-based debugging session over one pinball.
pub struct DebugSession {
    program: Arc<Program>,
    /// The pinball plus any checkpoints embedded in its container. Shared
    /// (never cloned) so every internal replayer reads the same event log
    /// through [`Replayer::shared`], and a server can hand the same parsed
    /// container to many sessions.
    container: Arc<PinballContainer>,
    replayer: Replayer,
    breakpoints: BTreeMap<u32, Breakpoint>,
    watchpoints: BTreeMap<u32, Watchpoint>,
    /// Periodic replay checkpoints `(instructions retired, state)` in
    /// ascending order — the §8 reverse-debugging substrate. Checkpoints
    /// survive `restart` (the pinball never changes). These are seeded from
    /// the container's embedded checkpoints and grown during `cont`.
    checkpoints: Vec<(u64, Replayer)>,
    checkpoint_interval: u64,
    next_bp: u32,
    last_event: Option<StopSite>,
    /// `continue` hop cache for cyclic debugging: with an unchanged
    /// breakpoint/watchpoint set, replay determinism makes every
    /// `cont` from position `p` stop at the same position and reason, so
    /// the second iteration of a break→continue loop becomes a seek.
    hops: HashMap<u64, (u64, StopReason)>,
    seek_metrics: SeekMetrics,
    /// Collected lazily on the first slice request and reused across the
    /// whole session (paper §7: "the dynamic information can be used for
    /// multiple slicing sessions").
    slicer: Option<SliceSession>,
    slicer_options: SlicerOptions,
    /// The Fig. 9 "Prune Vars" set: locations whose dependences slice
    /// requests do not chase.
    prune_keys: std::collections::HashSet<LocKey>,
    saved_slices: Vec<Slice>,
    /// Statistics and wall time of the most recent slice traversal, folded
    /// into [`DebugSession::metrics`].
    last_traversal: Option<(SliceStats, Duration)>,
    /// The reusable dependence index, keyed by the
    /// [`SliceOptions::fingerprint`] it was built for. Built on the first
    /// slice request and reused across `slice`/`restart`/seek cycles;
    /// invalidated when the options fingerprint changes (prune keys, §5.2
    /// toggle) or the slicer configuration is replaced.
    dep_index: Option<(u64, Arc<DepIndex>)>,
    /// Index usage of the most recent slice: (build wall, edges built,
    /// answered from a warm index), folded into [`DebugSession::metrics`].
    last_index: Option<(Duration, u64, bool)>,
}

impl std::fmt::Debug for DebugSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DebugSession")
            .field("program", &self.container.pinball.meta.program)
            .field("breakpoints", &self.breakpoints.len())
            .field("stopped_at", &self.last_event)
            .finish()
    }
}

impl DebugSession {
    /// Opens a session replaying `pinball` (no embedded checkpoints — see
    /// [`DebugSession::with_container`]).
    pub fn new(program: Arc<Program>, pinball: Pinball) -> DebugSession {
        DebugSession::with_container(program, PinballContainer::new(pinball))
    }

    /// Opens a session over a chunked container: its embedded checkpoints seed
    /// the session's checkpoint set, so reverse execution and `seek` are
    /// O(chunk) from the first command instead of only after a forward
    /// `continue` has dropped in-memory checkpoints.
    pub fn with_container(program: Arc<Program>, container: PinballContainer) -> DebugSession {
        DebugSession::with_shared_container(program, Arc::new(container))
    }

    /// As [`DebugSession::with_container`], but over an already-shared
    /// container: the session keeps the `Arc` and every replayer it builds
    /// borrows the event log through it — opening a session over a stored
    /// multi-GiB pinball copies no events.
    pub fn with_shared_container(
        program: Arc<Program>,
        container: Arc<PinballContainer>,
    ) -> DebugSession {
        let replayer = Replayer::shared(Arc::clone(&program), Arc::clone(&container));
        let checkpoints = vec![(0, replayer.clone())];
        DebugSession {
            program,
            container,
            replayer,
            breakpoints: BTreeMap::new(),
            watchpoints: BTreeMap::new(),
            checkpoints,
            checkpoint_interval: 4096,
            next_bp: 1,
            last_event: None,
            hops: HashMap::new(),
            seek_metrics: SeekMetrics::default(),
            slicer: None,
            slicer_options: SlicerOptions::default(),
            prune_keys: std::collections::HashSet::new(),
            saved_slices: Vec::new(),
            last_traversal: None,
            dep_index: None,
            last_index: None,
        }
    }

    /// The session's seek counters.
    pub fn seek_metrics(&self) -> SeekMetrics {
        self.seek_metrics
    }

    /// Checkpoints currently available for seeking: instruction positions
    /// of embedded container checkpoints and in-memory session checkpoints.
    pub fn checkpoint_positions(&self) -> (Vec<u64>, Vec<u64>) {
        (
            self.container.checkpoints.iter().map(|c| c.instr).collect(),
            self.checkpoints.iter().map(|&(s, _)| s).collect(),
        )
    }

    fn invalidate_hops(&mut self) {
        self.hops.clear();
    }

    /// Overrides the slicer configuration (before the first slice request).
    pub fn set_slicer_options(&mut self, options: SlicerOptions) {
        self.slicer_options = options;
        self.slicer = None;
        self.dep_index = None;
    }

    /// Adds a location to the "Prune Vars" set (paper Fig. 9): subsequent
    /// slice requests will not chase its dependences.
    pub fn add_prune_key(&mut self, key: LocKey) {
        self.prune_keys.insert(key);
    }

    /// Clears the "Prune Vars" set.
    pub fn clear_prune_keys(&mut self) {
        self.prune_keys.clear();
    }

    /// The current "Prune Vars" set.
    pub fn prune_keys(&self) -> &std::collections::HashSet<LocKey> {
        &self.prune_keys
    }

    fn slice_options(&self) -> SliceOptions {
        let mut opts = SliceOptions::new();
        opts.prune_save_restore = self.slicer_options.prune_save_restore;
        opts.prune_keys = self.prune_keys.clone();
        opts.parallel_threshold = if self.slicer_options.parallel {
            self.slicer_options.parallel_threshold
        } else {
            usize::MAX
        };
        opts
    }

    /// Pipeline metrics: the slicer's collect/merge/summarize stage timings
    /// plus the most recent slice traversal. `None` until the first slice
    /// request collects the trace.
    pub fn metrics(&self) -> Option<SliceMetrics> {
        let base = *self.slicer.as_ref()?.metrics();
        let base = match self.last_index {
            Some((wall, edges, warm)) => base.with_index(wall, edges, warm),
            None => base,
        };
        Some(match self.last_traversal {
            Some((stats, wall)) => base.with_traversal(&stats, wall),
            None => base,
        })
    }

    /// Whether the most recent slice was answered from a warm dependence
    /// index (`None` until a slice has been computed).
    pub fn last_slice_warm_index(&self) -> Option<bool> {
        self.last_index.map(|(_, _, warm)| warm)
    }

    /// Records a traversal's statistics for [`DebugSession::metrics`] and
    /// hands the slice back.
    fn timed(&mut self, slice: Slice, started: Instant) -> Slice {
        self.last_traversal = Some((slice.stats, started.elapsed()));
        slice
    }

    /// The program being debugged.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The pinball this session replays.
    pub fn pinball(&self) -> &Pinball {
        &self.container.pinball
    }

    /// The container this session replays (pinball + embedded checkpoints).
    pub fn container(&self) -> &PinballContainer {
        &self.container
    }

    /// Sets a breakpoint; returns its id.
    pub fn add_breakpoint(&mut self, pc: Pc, tid: Option<Tid>) -> u32 {
        self.invalidate_hops();
        let id = self.next_bp;
        self.next_bp += 1;
        self.breakpoints.insert(
            id,
            Breakpoint {
                pc,
                tid,
                enabled: true,
            },
        );
        id
    }

    /// Removes a breakpoint; returns whether it existed.
    pub fn delete_breakpoint(&mut self, id: u32) -> bool {
        self.invalidate_hops();
        self.breakpoints.remove(&id).is_some()
    }

    /// Sets a watchpoint on a memory word; returns its id (breakpoints and
    /// watchpoints share the id space).
    pub fn add_watchpoint(&mut self, addr: Addr) -> u32 {
        self.invalidate_hops();
        let id = self.next_bp;
        self.next_bp += 1;
        self.watchpoints.insert(
            id,
            Watchpoint {
                addr,
                enabled: true,
            },
        );
        id
    }

    /// Removes a watchpoint; returns whether it existed.
    pub fn delete_watchpoint(&mut self, id: u32) -> bool {
        self.invalidate_hops();
        self.watchpoints.remove(&id).is_some()
    }

    /// The current watchpoints.
    pub fn watchpoints(&self) -> impl Iterator<Item = (u32, &Watchpoint)> {
        self.watchpoints.iter().map(|(id, wp)| (*id, wp))
    }

    /// Instructions retired so far in the current replay.
    pub fn position(&self) -> u64 {
        self.replayer.replayed_instructions()
    }

    /// Enables/disables a breakpoint; returns whether it exists.
    pub fn enable_breakpoint(&mut self, id: u32, enabled: bool) -> bool {
        self.invalidate_hops();
        if let Some(bp) = self.breakpoints.get_mut(&id) {
            bp.enabled = enabled;
            true
        } else {
            false
        }
    }

    /// The current breakpoints.
    pub fn breakpoints(&self) -> impl Iterator<Item = (u32, &Breakpoint)> {
        self.breakpoints.iter().map(|(id, bp)| (*id, bp))
    }

    /// Where the session last stopped (the most recently retired
    /// instruction).
    pub fn stopped_at(&self) -> Option<StopSite> {
        self.last_event
    }

    /// Restarts the replay from the region entry — the next iteration of
    /// cyclic debugging. Breakpoints and saved slices are kept; the
    /// observed execution is guaranteed identical.
    pub fn restart(&mut self) {
        self.replayer = Replayer::shared(Arc::clone(&self.program), Arc::clone(&self.container));
        self.last_event = None;
    }

    /// Continues replay until a breakpoint or watchpoint hits, the trap
    /// reproduces, or the region ends. Runs in bursts, taking a replay
    /// checkpoint every [`checkpoint_interval`](Self::set_checkpoint_interval)
    /// instructions to keep reverse execution cheap.
    ///
    /// With an unchanged breakpoint/watchpoint set, the stop position and
    /// reason for each starting position are cached: the second and later
    /// iterations of a cyclic break→continue loop are answered by a seek
    /// (O(chunk) with embedded checkpoints) instead of an instrumented
    /// re-scan.
    pub fn cont(&mut self) -> StopReason {
        let from = self.replayer.replayed_instructions();
        if let Some(&(to, reason)) = self.hops.get(&from) {
            self.seek_metrics.hop_hits += 1;
            self.seek(to);
            return reason;
        }
        let reason = self.cont_uncached();
        // Cache only genuinely re-seekable stops: a `seek` lands *after* a
        // retired instruction, so the reproduced state matches.
        if matches!(
            reason,
            StopReason::Breakpoint { .. } | StopReason::Watchpoint { .. } | StopReason::ReplayEnd
        ) {
            self.hops
                .insert(from, (self.replayer.replayed_instructions(), reason));
        }
        reason
    }

    fn cont_uncached(&mut self) -> StopReason {
        loop {
            self.maybe_checkpoint();
            let bps = &self.breakpoints;
            let wps = &self.watchpoints;
            let mut hit: Option<StopReason> = None;
            let mut last: Option<StopSite> = None;
            let mut left = self.checkpoint_interval.max(1);
            let mut tool = |ev: &minivm::InsEvent| {
                last = Some(StopSite {
                    tid: ev.tid,
                    pc: ev.pc,
                    instance: ev.instance,
                    seq: ev.seq,
                });
                for (&id, bp) in bps.iter() {
                    if bp.enabled && bp.pc == ev.pc && bp.tid.is_none_or(|t| t == ev.tid) {
                        hit = Some(StopReason::Breakpoint {
                            id,
                            tid: ev.tid,
                            pc: ev.pc,
                        });
                        return ToolControl::Stop;
                    }
                }
                for (&id, wp) in wps.iter() {
                    if !wp.enabled {
                        continue;
                    }
                    if let Some(value) = ev.defs.value_of(minivm::Loc::Mem(wp.addr)) {
                        hit = Some(StopReason::Watchpoint {
                            id,
                            tid: ev.tid,
                            pc: ev.pc,
                            value,
                        });
                        return ToolControl::Stop;
                    }
                }
                left -= 1;
                if left == 0 {
                    ToolControl::Stop // burst boundary: take a checkpoint
                } else {
                    ToolControl::Continue
                }
            };
            let status = self.replayer.run(&mut tool);
            if last.is_some() {
                self.last_event = last;
            }
            match (status, hit) {
                (ReplayStatus::Paused, Some(reason)) => return reason,
                (ReplayStatus::Paused, None) => continue, // burst boundary
                (ReplayStatus::Trapped(e), _) => return StopReason::Trapped(e),
                (ReplayStatus::Completed, _) => return StopReason::ReplayEnd,
            }
        }
    }

    /// Overrides the reverse-debugging checkpoint interval (instructions).
    pub fn set_checkpoint_interval(&mut self, interval: u64) {
        self.checkpoint_interval = interval.max(1);
    }

    fn maybe_checkpoint(&mut self) {
        let cur = self.replayer.replayed_instructions();
        let due = match self.checkpoints.last() {
            Some(&(s, _)) => cur >= s + self.checkpoint_interval,
            None => true,
        };
        // Checkpoints are kept sorted by position; out-of-order states
        // (after reverse execution) are simply not re-recorded.
        if due && self.checkpoints.last().is_none_or(|&(s, _)| s < cur) {
            self.checkpoints.push((cur, self.replayer.clone()));
            // Bound memory on very long replays: when the set grows large,
            // thin to every other checkpoint (doubling the effective
            // interval). Seeks before the first remaining checkpoint fall
            // back to replaying from the region entry, so thinning only
            // costs time, never correctness.
            const MAX_CHECKPOINTS: usize = 256;
            if self.checkpoints.len() > MAX_CHECKPOINTS {
                let mut i = 0;
                self.checkpoints.retain(|_| {
                    i += 1;
                    i % 2 == 1
                });
                self.checkpoint_interval *= 2;
            }
        }
    }

    /// Seeks the replay to the state after exactly `target` instructions
    /// have retired, restoring the nearest earlier checkpoint — an
    /// in-memory session checkpoint or one embedded in the container,
    /// whichever is closer — and replaying only the tail. This is the
    /// paper §8 recipe ("recording multiple pinballs and then replaying
    /// forward using the right pinball", via user-level checkpointing),
    /// upgraded from O(region) to O(chunk) by the container checkpoints.
    pub fn seek_to(&mut self, target: u64) -> StopReason {
        self.seek(target)
    }

    fn seek(&mut self, target: u64) -> StopReason {
        let started = Instant::now();
        self.seek_metrics.seeks += 1;
        // Restore strictly before the target (when target > 0) so the final
        // instruction is re-stepped and its stop site recorded.
        let limit = target.saturating_sub(1);
        let session_base = self
            .checkpoints
            .iter()
            .rev()
            .find(|&&(s, _)| s <= limit)
            .map(|(s, r)| (*s, r.clone()));
        let container_base = self.container.nearest_checkpoint(limit);
        let mut rep = match (session_base, container_base) {
            (Some((s, _)), Some(cp)) if cp.instr > s => {
                self.seek_metrics.container_restores += 1;
                let mut r =
                    Replayer::shared(Arc::clone(&self.program), Arc::clone(&self.container));
                r.restore_checkpoint(cp);
                r
            }
            (Some((_, r)), _) => {
                self.seek_metrics.session_restores += 1;
                r
            }
            (None, Some(cp)) => {
                self.seek_metrics.container_restores += 1;
                let mut r =
                    Replayer::shared(Arc::clone(&self.program), Arc::clone(&self.container));
                r.restore_checkpoint(cp);
                r
            }
            (None, None) => {
                self.seek_metrics.full_restarts += 1;
                Replayer::shared(Arc::clone(&self.program), Arc::clone(&self.container))
            }
        };
        let base_instr = rep.replayed_instructions();
        let mut last: Option<StopSite> = None;
        while rep.replayed_instructions() < target {
            let mut tool = |ev: &minivm::InsEvent| {
                last = Some(StopSite {
                    tid: ev.tid,
                    pc: ev.pc,
                    instance: ev.instance,
                    seq: ev.seq,
                });
                ToolControl::Continue
            };
            match rep.step(&mut tool) {
                None | Some(ReplayStatus::Completed) | Some(ReplayStatus::Trapped(_)) => break,
                Some(ReplayStatus::Paused) => {}
            }
        }
        self.seek_metrics.instructions_replayed +=
            rep.replayed_instructions().saturating_sub(base_instr);
        self.seek_metrics.wall += started.elapsed();
        self.replayer = rep;
        match last {
            Some(site) => {
                self.last_event = Some(site);
                StopReason::Stepped {
                    tid: site.tid,
                    pc: site.pc,
                }
            }
            None => {
                self.last_event = None;
                StopReason::ReplayStart
            }
        }
    }

    /// Steps one instruction *backwards*: the session ends up in the state
    /// just before the most recently retired instruction.
    pub fn reverse_stepi(&mut self) -> StopReason {
        let cur = self.replayer.replayed_instructions();
        if cur == 0 {
            return StopReason::ReplayStart;
        }
        self.seek(cur - 1)
    }

    /// rr-style name for [`DebugSession::reverse_stepi`]: restores the
    /// nearest earlier checkpoint and replays forward to the state exactly
    /// one instruction back.
    pub fn reverse_step(&mut self) -> StopReason {
        self.reverse_stepi()
    }

    /// Steps `n` instructions forward, stopping early at a trap or the end
    /// of the region. Returns the last stop reason (`ReplayStart` when
    /// `n == 0`).
    pub fn run_steps(&mut self, n: u64) -> StopReason {
        let mut last = StopReason::ReplayStart;
        for _ in 0..n {
            last = self.stepi();
            if matches!(last, StopReason::ReplayEnd | StopReason::Trapped(_)) {
                break;
            }
        }
        last
    }

    /// A digest of the complete replay state at the current position
    /// (machine state, syscall queues, log cursor — see
    /// [`Replayer::state_digest`]). Replay determinism makes this a pure
    /// function of the position: `reverse_step` after `run_steps(n)` lands
    /// on exactly the hash observed at step `n - 1`, however the seek was
    /// served (session checkpoint, container checkpoint, or full restart).
    pub fn state_hash(&self) -> u64 {
        self.replayer.state_digest()
    }

    /// A replayer positioned at exactly `base` retired instructions, restored
    /// from the cheapest matching checkpoint (session clone, then embedded
    /// container checkpoint, then the region entry). Reverse execution uses
    /// this to probe one checkpoint window at a time.
    fn probe_at(&mut self, base: u64) -> Replayer {
        if let Some((_, r)) = self.checkpoints.iter().rev().find(|&&(s, _)| s == base) {
            self.seek_metrics.session_restores += 1;
            return r.clone();
        }
        if let Some(cp) = self.container.nearest_checkpoint(base) {
            if cp.instr == base {
                self.seek_metrics.container_restores += 1;
                let mut r =
                    Replayer::shared(Arc::clone(&self.program), Arc::clone(&self.container));
                r.restore_checkpoint(cp);
                return r;
            }
        }
        self.seek_metrics.full_restarts += 1;
        Replayer::shared(Arc::clone(&self.program), Arc::clone(&self.container))
    }

    /// Runs *backwards* to the most recent breakpoint/watchpoint hit before
    /// the current position (or to the region entry if none) — the rr
    /// recipe: restore the nearest checkpoint and replay forward through its
    /// window looking for the *last* hit, widening to the previous
    /// checkpoint only when the window contains none. The scan therefore
    /// replays O(window) instructions when the hit is recent — the common
    /// cyclic-debugging case — instead of always rescanning from the region
    /// entry.
    pub fn reverse_continue(&mut self) -> StopReason {
        let cur = self.replayer.replayed_instructions();
        if cur == 0 {
            return StopReason::ReplayStart;
        }
        let started = Instant::now();
        // Candidate window bases: the region entry plus every checkpoint
        // (embedded or session-local) strictly before the current position.
        let mut bases: Vec<u64> = std::iter::once(0)
            .chain(self.container.checkpoints.iter().map(|c| c.instr))
            .chain(self.checkpoints.iter().map(|&(s, _)| s))
            .filter(|&s| s < cur)
            .collect();
        bases.sort_unstable();
        bases.dedup();
        // Windows cover stop positions in (base, upper], youngest first; a
        // stop position `p` means "after `p` instructions retired", and the
        // search is capped at `cur - 1` so the hit is strictly in the past.
        let mut upper = cur;
        for i in (0..bases.len()).rev() {
            let base = bases[i];
            let stop_at = upper.min(cur - 1);
            if stop_at <= base {
                upper = base;
                continue;
            }
            let mut probe = self.probe_at(base);
            let probe_base = probe.replayed_instructions();
            let bps = &self.breakpoints;
            let wps = &self.watchpoints;
            let mut best: Option<(u64, StopReason)> = None;
            let mut tool = |ev: &minivm::InsEvent| {
                let after = ev.seq + 1;
                if after > stop_at {
                    return ToolControl::Stop;
                }
                for (&id, bp) in bps.iter() {
                    if bp.enabled && bp.pc == ev.pc && bp.tid.is_none_or(|t| t == ev.tid) {
                        best = Some((
                            after,
                            StopReason::Breakpoint {
                                id,
                                tid: ev.tid,
                                pc: ev.pc,
                            },
                        ));
                    }
                }
                for (&id, wp) in wps.iter() {
                    if !wp.enabled {
                        continue;
                    }
                    if let Some(value) = ev.defs.value_of(minivm::Loc::Mem(wp.addr)) {
                        best = Some((
                            after,
                            StopReason::Watchpoint {
                                id,
                                tid: ev.tid,
                                pc: ev.pc,
                                value,
                            },
                        ));
                    }
                }
                if after == stop_at {
                    ToolControl::Stop
                } else {
                    ToolControl::Continue
                }
            };
            let _ = probe.run(&mut tool);
            self.seek_metrics.instructions_replayed +=
                probe.replayed_instructions().saturating_sub(probe_base);
            if let Some((pos, reason)) = best {
                self.seek_metrics.wall += started.elapsed();
                self.seek(pos);
                return reason;
            }
            upper = base;
        }
        self.seek_metrics.wall += started.elapsed();
        self.seek(0)
    }

    /// Steps one instruction of the replay.
    pub fn stepi(&mut self) -> StopReason {
        let mut last: Option<StopSite> = None;
        let mut tool = |ev: &minivm::InsEvent| {
            last = Some(StopSite {
                tid: ev.tid,
                pc: ev.pc,
                instance: ev.instance,
                seq: ev.seq,
            });
            ToolControl::Continue
        };
        match self.replayer.step(&mut tool) {
            None => StopReason::ReplayEnd,
            Some(status) => {
                if last.is_some() {
                    self.last_event = last;
                }
                match status {
                    ReplayStatus::Trapped(e) => StopReason::Trapped(e),
                    ReplayStatus::Completed => StopReason::ReplayEnd,
                    ReplayStatus::Paused => {
                        let site = self.last_event.expect("stepped event recorded");
                        StopReason::Stepped {
                            tid: site.tid,
                            pc: site.pc,
                        }
                    }
                }
            }
        }
    }

    /// Reads a register of a thread (the `print $r` command).
    pub fn read_reg(&self, tid: Tid, reg: Reg) -> i64 {
        self.replayer.exec().read_reg(tid, reg)
    }

    /// Reads a memory word (the `x` command).
    pub fn read_mem(&self, addr: Addr) -> i64 {
        self.replayer.exec().read_mem(addr)
    }

    /// Resolves a data symbol and reads its value.
    pub fn read_symbol(&self, name: &str) -> Option<i64> {
        self.program.symbol(name).map(|a| self.read_mem(a))
    }

    /// Current pc of each live thread (the `info threads` command).
    pub fn threads(&self) -> Vec<(Tid, Pc, bool)> {
        let exec = self.replayer.exec();
        (0..exec.num_threads() as Tid)
            .map(|t| {
                let th = exec.thread(t);
                (t, th.pc, th.is_runnable())
            })
            .collect()
    }

    /// The slicing session for this pinball, collected on first use.
    pub fn slicer(&mut self) -> &SliceSession {
        if self.slicer.is_none() {
            self.slicer = Some(SliceSession::collect(
                Arc::clone(&self.program),
                &self.container.pinball,
                self.slicer_options,
            ));
        }
        self.slicer.as_ref().expect("collected above")
    }

    /// The slicing session if it has already been collected (borrow-friendly
    /// companion to [`DebugSession::slicer`]).
    pub fn slicer_ref(&self) -> Option<&SliceSession> {
        self.slicer.as_ref()
    }

    /// The trace record id of the current stop point, if the session is
    /// stopped somewhere the collected trace covers. Collects the trace on
    /// first use.
    pub fn record_at_stop(&mut self) -> Option<slicer::RecordId> {
        let site = self.stopped_at()?;
        let slicer = self.slicer();
        slicer
            .trace()
            .rfind(|r| r.tid == site.tid && r.pc == site.pc && r.instance == site.instance)
            .map(|r| r.id)
    }

    /// Computes a slice for an explicit criterion under explicit options —
    /// the server-side entry point: a pooled session serves criteria that
    /// arrive over the wire rather than from the interactive stop point.
    /// Timing is folded into [`DebugSession::metrics`] like every other
    /// slice request.
    pub fn slice_criterion(&mut self, criterion: Criterion, opts: SliceOptions) -> Slice {
        let fingerprint = opts.fingerprint();
        let warm = self
            .dep_index
            .as_ref()
            .is_some_and(|&(f, _)| f == fingerprint);
        let index = self.dep_index_for(&opts);
        self.last_index = Some(if warm {
            (Duration::ZERO, 0, true)
        } else {
            (index.stats().wall, index.stats().edges as u64, false)
        });
        let started = Instant::now();
        let slice = compute_slice_indexed(&index, criterion);
        self.timed(slice, started)
    }

    /// The dependence index for `opts`, built (and cached for subsequent
    /// queries) if absent or built for a different options fingerprint.
    /// Collects the trace on first use.
    pub fn dep_index_for(&mut self, opts: &SliceOptions) -> Arc<DepIndex> {
        let fingerprint = opts.fingerprint();
        if let Some((f, idx)) = &self.dep_index {
            if *f == fingerprint {
                return Arc::clone(idx);
            }
        }
        self.slicer(); // ensure collected
        let slicer = self.slicer.as_ref().expect("collected above");
        let index = Arc::new(DepIndex::build(slicer.trace(), slicer.pairs(), opts));
        self.dep_index = Some((fingerprint, Arc::clone(&index)));
        index
    }

    /// The cached dependence index, if any, with the options fingerprint it
    /// was built for.
    pub fn dep_index(&self) -> Option<(u64, Arc<DepIndex>)> {
        self.dep_index
            .as_ref()
            .map(|(f, idx)| (*f, Arc::clone(idx)))
    }

    /// Installs a dependence index built elsewhere (the server shares one
    /// index across every pooled session of a pinball digest — replay
    /// determinism makes their traces identical). Subsequent
    /// [`DebugSession::slice_criterion`] calls under options with the same
    /// fingerprint are answered from it without rebuilding.
    pub fn install_dep_index(&mut self, fingerprint: u64, index: Arc<DepIndex>) {
        self.dep_index = Some((fingerprint, index));
    }

    /// Computes a slice for the value of `key` at the current stop point —
    /// the `slice` command of paper Fig. 9 ("Thread Id / Line Num /
    /// Variable" fields).
    pub fn slice_here(&mut self, key: LocKey) -> Option<Slice> {
        let id = self.record_at_stop()?;
        Some(self.slice_criterion(Criterion::Value { id, key }, self.slice_options()))
    }

    /// Computes a slice for everything used at the current stop point.
    pub fn slice_here_record(&mut self) -> Option<Slice> {
        let id = self.record_at_stop()?;
        Some(self.slice_criterion(Criterion::Record { id }, self.slice_options()))
    }

    /// Computes a slice for a value at the last execution of a *source
    /// line* — the KDbg dialog's "Line Num / Variable" fields (paper
    /// Fig. 9). `key` of `None` slices on everything the statement used.
    pub fn slice_at_line(&mut self, line: u32, key: Option<LocKey>) -> Option<Slice> {
        let slicer = self.slicer();
        let rec = slicer
            .trace()
            .records()
            .iter()
            .filter(|r| r.line == line)
            .max_by_key(|r| r.id)?;
        let id = rec.id;
        let criterion = match key {
            Some(key) => Criterion::Value { id, key },
            None => Criterion::Record { id },
        };
        Some(self.slice_criterion(criterion, self.slice_options()))
    }

    /// Computes a slice at the failure point (last record of the trace).
    pub fn slice_failure(&mut self) -> Option<Slice> {
        let id = self.slicer().failure_record()?.id;
        Some(self.slice_criterion(Criterion::Record { id }, self.slice_options()))
    }

    /// Saves a slice for later slice-pinball generation; returns its index.
    pub fn save_slice(&mut self, slice: Slice) -> usize {
        self.saved_slices.push(slice);
        self.saved_slices.len() - 1
    }

    /// The saved slices.
    pub fn saved_slices(&self) -> &[Slice] {
        &self.saved_slices
    }

    /// Generates the slice pinball for a saved slice (paper Fig. 4(b)).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn make_slice_pinball(&mut self, index: usize) -> Pinball {
        assert!(index < self.saved_slices.len(), "no saved slice {index}");
        self.slicer(); // ensure collected
        let slicer = self.slicer.as_ref().expect("collected above");
        let slice = &self.saved_slices[index];
        let (pb, _, _) = slicer.make_slice_pinball(&self.container.pinball, slice);
        pb
    }

    /// Relogs a saved slice into a v3 slice-pinball *container*: the slice
    /// pinball of [`DebugSession::make_slice_pinball`], packaged with
    /// embedded checkpoints at the session's checkpoint interval and
    /// content-addressed by its digest — ready to be written to disk,
    /// uploaded to drserve, or opened as a fresh [`DebugSession`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn relog_slice(&mut self, index: usize) -> (PinballContainer, RelogReport) {
        assert!(index < self.saved_slices.len(), "no saved slice {index}");
        let slice = self.saved_slices[index].clone();
        self.relog_of(&slice)
    }

    /// Computes a slice for an explicit criterion and relogs it in one step
    /// — the server-side `Relog` entry point. The slice itself is not
    /// retained in the saved-slice list.
    pub fn relog_criterion(
        &mut self,
        criterion: Criterion,
        opts: SliceOptions,
    ) -> (PinballContainer, RelogReport) {
        let slice = self.slice_criterion(criterion, opts);
        self.relog_of(&slice)
    }

    fn relog_of(&mut self, slice: &Slice) -> (PinballContainer, RelogReport) {
        self.slicer(); // ensure collected
        let slicer = self.slicer.as_ref().expect("collected above");
        let (pb, relog_stats, excl_stats) =
            slicer.make_slice_pinball(&self.container.pinball, slice);
        let instructions = pb.logged_instructions();
        let container =
            PinballContainer::with_checkpoints(pb, &self.program, self.checkpoint_interval);
        let report = RelogReport {
            digest: container.digest(),
            instructions,
            kept: relog_stats.included,
            excluded: relog_stats.excluded,
            in_slice: excl_stats.in_slice,
            forced: excl_stats.forced,
        };
        (container, report)
    }
}

/// Summary of a relogging pass: the content digest of the resulting v3
/// slice-pinball container plus how much of the region it kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelogReport {
    /// Content digest of the slice-pinball container (its upload identity
    /// under drserve).
    pub digest: PinballDigest,
    /// Instructions in the slice pinball's replay log.
    pub instructions: u64,
    /// Region instructions kept (slice statements plus forced sync).
    pub kept: u64,
    /// Region instructions excluded (side effects became injections).
    pub excluded: u64,
    /// Kept instances that are slice statements.
    pub in_slice: u64,
    /// Kept instances force-included only for schedule validity
    /// (synchronization and thread-lifecycle instructions).
    pub forced: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    const PROG: &str = r"
        .data
        x: .word 0
        .text
        .func main
            movi r1, 5      ; 0
            la r2, x        ; 1
            store r1, r2, 0 ; 2
            load r3, r2, 0  ; 3
            addi r3, r3, 1  ; 4
            print r3        ; 5
            halt            ; 6
        .endfunc
        ";

    fn session() -> DebugSession {
        let program = Arc::new(assemble(PROG).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "session-test",
        )
        .unwrap();
        DebugSession::new(program, rec.pinball)
    }

    #[test]
    fn breakpoint_stops_and_state_is_inspectable() {
        let mut s = session();
        let id = s.add_breakpoint(2, None);
        let stop = s.cont();
        assert_eq!(stop, StopReason::Breakpoint { id, tid: 0, pc: 2 });
        // The store has retired: x == 5, and r1 == 5.
        assert_eq!(s.read_symbol("x"), Some(5));
        assert_eq!(s.read_reg(0, Reg(1)), 5);
        // r3 not yet loaded.
        assert_eq!(s.read_reg(0, Reg(3)), 0);
        assert_eq!(s.cont(), StopReason::ReplayEnd);
        assert_eq!(s.read_reg(0, Reg(3)), 6);
    }

    #[test]
    fn restart_reproduces_identically() {
        let mut s = session();
        s.add_breakpoint(3, None);
        let first = s.cont();
        let x1 = s.read_symbol("x");
        s.restart();
        let second = s.cont();
        let x2 = s.read_symbol("x");
        assert_eq!(first, second, "cyclic debugging: same stop every run");
        assert_eq!(x1, x2);
    }

    #[test]
    fn stepi_walks_instructions() {
        let mut s = session();
        assert_eq!(s.stepi(), StopReason::Stepped { tid: 0, pc: 0 });
        assert_eq!(s.stepi(), StopReason::Stepped { tid: 0, pc: 1 });
        let site = s.stopped_at().unwrap();
        assert_eq!(site.pc, 1);
        assert_eq!(site.instance, 1);
    }

    #[test]
    fn disabled_breakpoint_not_hit() {
        let mut s = session();
        let id = s.add_breakpoint(2, None);
        assert!(s.enable_breakpoint(id, false));
        assert_eq!(s.cont(), StopReason::ReplayEnd);
    }

    #[test]
    fn thread_filtered_breakpoint() {
        let mut s = session();
        let _ = s.add_breakpoint(2, Some(7)); // no thread 7
        assert_eq!(s.cont(), StopReason::ReplayEnd);
    }

    #[test]
    fn slice_at_breakpoint() {
        let mut s = session();
        s.add_breakpoint(4, None);
        s.cont();
        let slice = s.slice_here(LocKey::Reg(0, Reg(3))).expect("slice");
        let slicer = s.slicer();
        let pcs = slice.pcs(slicer.trace());
        // r3 at pc 4 comes from load (3) <- store (2) <- movi (0), la (1).
        assert!(pcs.contains(&3) && pcs.contains(&2) && pcs.contains(&0));
    }

    #[test]
    fn dep_index_reused_across_slices_and_invalidated_on_option_change() {
        let mut s = session();
        s.cont();
        let first = s.slice_failure().expect("slice");
        assert_eq!(
            s.last_slice_warm_index(),
            Some(false),
            "first build is cold"
        );
        let second = s.slice_failure().expect("slice again");
        assert_eq!(s.last_slice_warm_index(), Some(true), "index reused");
        assert_eq!(first.records, second.records);
        assert_eq!(first.data_edges, second.data_edges);
        let m = s.metrics().expect("metrics");
        assert!(m.warm_index);
        assert_eq!(
            m.index_build.wall,
            Duration::ZERO,
            "warm reuse builds nothing"
        );
        // A different criterion still hits the same warm index.
        s.restart();
        s.add_breakpoint(4, None);
        s.cont();
        let _ = s.slice_here(LocKey::Reg(0, Reg(3))).expect("slice here");
        assert_eq!(s.last_slice_warm_index(), Some(true));
        // Changing the prune set changes the fingerprint: cold again.
        s.add_prune_key(LocKey::Reg(0, Reg(1)));
        let _ = s.slice_failure().expect("slice with pruning");
        assert_eq!(
            s.last_slice_warm_index(),
            Some(false),
            "fingerprint change invalidates"
        );
    }

    #[test]
    fn save_slice_and_generate_slice_pinball() {
        let mut s = session();
        s.cont();
        let slice = s.slice_failure().expect("failure slice");
        let idx = s.save_slice(slice);
        let pb = s.make_slice_pinball(idx);
        assert!(pb.meta.is_slice);
    }
}

#[cfg(test)]
mod reverse_tests {
    use super::*;
    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    const PROG: &str = r"
        .data
        x: .word 0
        .text
        .func main
            movi r1, 1      ; 0
            addi r1, r1, 1  ; 1  -> r1 = 2
            addi r1, r1, 1  ; 2  -> r1 = 3
            la r2, x        ; 3
            store r1, r2, 0 ; 4  -> x = 3
            addi r1, r1, 1  ; 5  -> r1 = 4
            store r1, r2, 0 ; 6  -> x = 4
            halt            ; 7
        .endfunc
        ";

    fn session() -> DebugSession {
        let program = Arc::new(assemble(PROG).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "reverse-test",
        )
        .unwrap();
        DebugSession::new(program, rec.pinball)
    }

    #[test]
    fn reverse_stepi_rolls_back_state() {
        let mut s = session();
        for _ in 0..3 {
            s.stepi();
        }
        assert_eq!(s.read_reg(0, Reg(1)), 3);
        assert_eq!(s.position(), 3);
        let stop = s.reverse_stepi();
        assert!(
            matches!(stop, StopReason::Stepped { pc: 1, .. }),
            "{stop:?}"
        );
        assert_eq!(s.position(), 2);
        assert_eq!(s.read_reg(0, Reg(1)), 2, "state rolled back");
        // Forward again: deterministic.
        let stop = s.stepi();
        assert!(matches!(stop, StopReason::Stepped { pc: 2, .. }));
        assert_eq!(s.read_reg(0, Reg(1)), 3);
    }

    #[test]
    fn reverse_stepi_to_region_start() {
        let mut s = session();
        s.stepi();
        assert_eq!(s.reverse_stepi(), StopReason::ReplayStart);
        assert_eq!(s.position(), 0);
        assert_eq!(s.read_reg(0, Reg(1)), 0, "initial state restored");
        assert_eq!(
            s.reverse_stepi(),
            StopReason::ReplayStart,
            "idempotent at start"
        );
    }

    #[test]
    fn watchpoint_stops_on_write_and_reverse_continue_returns_to_it() {
        let mut s = session();
        let x = s.program().symbol("x").unwrap();
        let id = s.add_watchpoint(x);
        // Forward: first write (x = 3).
        let stop = s.cont();
        assert_eq!(
            stop,
            StopReason::Watchpoint {
                id,
                tid: 0,
                pc: 4,
                value: 3
            }
        );
        // Forward again: second write (x = 4).
        let stop = s.cont();
        assert!(matches!(
            stop,
            StopReason::Watchpoint {
                pc: 6,
                value: 4,
                ..
            }
        ));
        assert_eq!(s.read_mem(x), 4);
        // Reverse-continue: back to the *first* write.
        let stop = s.reverse_continue();
        assert!(
            matches!(
                stop,
                StopReason::Watchpoint {
                    pc: 4,
                    value: 3,
                    ..
                }
            ),
            "{stop:?}"
        );
        assert_eq!(s.read_mem(x), 3, "memory rolled back to the first write");
        assert_eq!(s.read_reg(0, Reg(1)), 3);
    }

    #[test]
    fn reverse_continue_without_hits_reaches_start() {
        let mut s = session();
        s.cont(); // run to the end
        let stop = s.reverse_continue();
        assert_eq!(stop, StopReason::ReplayStart);
        assert_eq!(s.position(), 0);
    }

    #[test]
    fn checkpoints_speed_up_seek_without_changing_results() {
        let mut s = session();
        s.set_checkpoint_interval(2);
        s.cont(); // to end, dropping checkpoints along the way
        let end = s.position();
        // Walk all the way back one step at a time.
        let mut pos = end;
        while pos > 0 {
            s.reverse_stepi();
            pos -= 1;
            assert_eq!(s.position(), pos);
        }
        assert_eq!(s.read_reg(0, Reg(1)), 0);
    }

    /// Two racing workers give the log many same-interval chunk
    /// boundaries (single-threaded runs coalesce into one Run event, so
    /// they cannot carry embedded checkpoints).
    const MT_PROG: &str = r"
        .data
        acc: .word 0
        .text
        .func main
            movi r1, 1
            spawn r2, worker, r1
            movi r1, 2
            spawn r3, worker, r1
            join r2
            join r3
            halt
        .endfunc
        .func worker
            movi r3, 200
        loop:
            la r1, acc
            xadd r2, r1, r0
            subi r3, r3, 1
            bgti r3, 0, loop
            halt
        .endfunc
        ";

    #[test]
    fn container_checkpoints_seed_seeks() {
        let program = Arc::new(assemble(MT_PROG).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(7),
            &mut LiveEnv::new(42),
            1_000_000,
            "container-seed",
        )
        .unwrap();
        let pinball = rec.pinball;
        // Reference: a checkpoint-free session seeked to the same target.
        let mut plain = DebugSession::new(Arc::clone(&program), pinball.clone());
        plain.seek_to(400);
        let want_acc = plain.read_symbol("acc");

        let container = pinplay::PinballContainer::with_checkpoints(pinball, &program, 64);
        assert!(!container.checkpoints.is_empty());
        let mut s = DebugSession::with_container(Arc::clone(&program), container);
        let (embedded, _) = s.checkpoint_positions();
        assert!(!embedded.is_empty());
        // A fresh session can seek deep into the region by restoring an
        // embedded checkpoint, without ever having replayed forward.
        let stop = s.seek_to(400);
        assert!(matches!(stop, StopReason::Stepped { .. }), "{stop:?}");
        assert_eq!(s.position(), 400);
        assert_eq!(s.read_symbol("acc"), want_acc, "state matches full replay");
        let m = s.seek_metrics();
        assert_eq!(m.seeks, 1);
        assert_eq!(m.container_restores, 1);
        assert_eq!(m.full_restarts, 0);
        assert!(
            m.instructions_replayed < 400,
            "only the tail chunk replays, got {}",
            m.instructions_replayed
        );
    }

    #[test]
    fn cont_hop_cache_serves_cyclic_reruns() {
        let mut s = session();
        let id = s.add_breakpoint(4, None);
        let first = s.cont();
        let x_first = s.read_symbol("x");
        assert_eq!(s.seek_metrics().hop_hits, 0);
        // Second iteration of the cyclic loop: restart + continue must be
        // served from the hop cache, identically.
        s.restart();
        let second = s.cont();
        assert_eq!(first, second);
        assert_eq!(s.read_symbol("x"), x_first);
        assert_eq!(s.seek_metrics().hop_hits, 1);
        assert_eq!(s.position(), 5);
        // Mutating the breakpoint set invalidates the cache.
        s.enable_breakpoint(id, false);
        s.restart();
        assert_eq!(s.cont(), StopReason::ReplayEnd);
        assert_eq!(s.seek_metrics().hop_hits, 1, "stale hops not reused");
    }

    #[test]
    fn reverse_then_breakpoint_forward() {
        let mut s = session();
        s.cont();
        s.reverse_continue();
        let bid = s.add_breakpoint(5, None);
        let stop = s.cont();
        assert_eq!(
            stop,
            StopReason::Breakpoint {
                id: bid,
                tid: 0,
                pc: 5
            }
        );
        assert_eq!(s.read_reg(0, Reg(1)), 4);
    }
}
