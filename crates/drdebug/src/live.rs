//! Live-run region capture — phase 1 of the paper's Fig. 2 workflow.
//!
//! "In the latter case we provide GDB commands/GUI buttons so the
//! programmer can fast-forward to the buggy region and then manually
//! capture the pinball" (paper §2; Fig. 9 shows the `Record on/off`
//! toolbar button). A [`LiveSession`] runs the program *live* (real
//! scheduler, real environment) under breakpoints; `record_on` snapshots
//! the state and starts logging non-deterministic events; `record_off`
//! (or the bug trapping) finalises the pinball, which then seeds the
//! replay-based [`DebugSession`](crate::session::DebugSession).

use std::sync::Arc;

use minivm::{Environment, Executor, InsEvent, Pc, Program, Scheduler, Tid, VmError};
use pinplay::{Pinball, PinballMeta, RecordedExit, ScheduleBuilder};

/// Why a live run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveStop {
    /// A breakpoint pc was reached (the instruction has retired).
    Breakpoint {
        /// Thread that hit it.
        tid: Tid,
        /// The breakpoint's pc.
        pc: Pc,
    },
    /// The program trapped — if recording, this is the captured failure.
    Trapped(VmError),
    /// Every thread halted.
    Finished,
    /// The step budget given to [`LiveSession::cont`] ran out.
    BudgetExhausted,
}

/// A live (non-replay) run with interactive region capture.
pub struct LiveSession<S, E> {
    program: Arc<Program>,
    exec: Executor,
    sched: S,
    env: E,
    breakpoints: Vec<Pc>,
    recording: Option<RecordingState>,
    /// The finalized pinball once `record_off` was called or a trap fired
    /// while recording.
    captured: Option<Pinball>,
    name: String,
}

struct RecordingState {
    snapshot: minivm::Snapshot,
    schedule: ScheduleBuilder,
    syscalls: Vec<Vec<i64>>,
}

impl<S: Scheduler, E: Environment> std::fmt::Debug for LiveSession<S, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSession")
            .field("name", &self.name)
            .field("recording", &self.recording.is_some())
            .field("captured", &self.captured.is_some())
            .finish()
    }
}

impl<S: Scheduler, E: Environment> LiveSession<S, E> {
    /// Starts a live run of `program`.
    pub fn new(program: Arc<Program>, sched: S, env: E, name: &str) -> LiveSession<S, E> {
        let exec = Executor::new(Arc::clone(&program));
        LiveSession {
            program,
            exec,
            sched,
            env,
            breakpoints: Vec::new(),
            recording: None,
            captured: None,
            name: name.to_owned(),
        }
    }

    /// Adds a fast-forward breakpoint.
    pub fn add_breakpoint(&mut self, pc: Pc) {
        self.breakpoints.push(pc);
    }

    /// Removes a breakpoint (all entries at `pc`); returns whether any
    /// existed.
    pub fn remove_breakpoint(&mut self, pc: Pc) -> bool {
        let before = self.breakpoints.len();
        self.breakpoints.retain(|&b| b != pc);
        before != self.breakpoints.len()
    }

    /// Removes every breakpoint.
    pub fn clear_breakpoints(&mut self) {
        self.breakpoints.clear();
    }

    /// Whether recording is currently on.
    pub fn is_recording(&self) -> bool {
        self.recording.is_some()
    }

    /// The live machine state (for inspection between stops).
    pub fn exec(&self) -> &Executor {
        &self.exec
    }

    /// Turns recording on: snapshots the architectural state; subsequent
    /// execution is logged until [`record_off`](Self::record_off) or a trap.
    ///
    /// Returns false (no-op) when already recording.
    pub fn record_on(&mut self) -> bool {
        if self.recording.is_some() {
            return false;
        }
        // Region-relative numbering starts here: rebase the executor on its
        // own snapshot so instances and sequence numbers restart, exactly
        // like replay will see them.
        let snapshot = self.exec.snapshot();
        self.exec = Executor::from_snapshot(Arc::clone(&self.program), &snapshot);
        self.recording = Some(RecordingState {
            snapshot,
            schedule: ScheduleBuilder::new(),
            syscalls: Vec::new(),
        });
        true
    }

    /// Turns recording off and returns the captured pinball.
    ///
    /// Returns `None` when recording was never started.
    pub fn record_off(&mut self) -> Option<Pinball> {
        let state = self.recording.take()?;
        let pb = Self::finish_pinball(&self.name, state, RecordedExit::RegionEnd);
        self.captured = Some(pb.clone());
        Some(pb)
    }

    /// The pinball captured by the last `record_off` (or trap-while-
    /// recording).
    pub fn captured(&self) -> Option<&Pinball> {
        self.captured.as_ref()
    }

    fn finish_pinball(name: &str, state: RecordingState, exit: RecordedExit) -> Pinball {
        Pinball {
            meta: PinballMeta {
                program: name.to_owned(),
                region: "live capture".to_owned(),
                is_slice: false,
            },
            snapshot: state.snapshot,
            events: state.schedule.finish(),
            syscalls: state.syscalls,
            exit,
        }
    }

    /// Runs the live program until a breakpoint, a trap, completion, or
    /// `budget` retired instructions.
    pub fn cont(&mut self, budget: u64) -> LiveStop {
        for _ in 0..budget {
            if self.exec.all_halted() {
                return LiveStop::Finished;
            }
            let Some(tid) = self.sched.pick(&self.exec) else {
                return LiveStop::Finished;
            };
            match self.exec.step(tid, &mut self.env) {
                Ok((ev, _)) => {
                    self.observe(&ev);
                    if self.breakpoints.contains(&ev.pc) {
                        return LiveStop::Breakpoint {
                            tid: ev.tid,
                            pc: ev.pc,
                        };
                    }
                }
                Err((ev, e)) => {
                    self.observe(&ev);
                    // A trap while recording finalises the pinball with the
                    // failure included — the captured buggy region.
                    if let Some(state) = self.recording.take() {
                        self.captured = Some(Self::finish_pinball(
                            &self.name,
                            state,
                            RecordedExit::Trap(e),
                        ));
                    }
                    return LiveStop::Trapped(e);
                }
            }
        }
        LiveStop::BudgetExhausted
    }

    fn observe(&mut self, ev: &InsEvent) {
        let Some(state) = self.recording.as_mut() else {
            return;
        };
        state.schedule.step(ev.tid);
        if let Some(v) = ev.sys_result {
            let t = ev.tid as usize;
            if state.syscalls.len() <= t {
                state.syscalls.resize_with(t + 1, Vec::new);
            }
            state.syscalls[t].push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, LiveEnv, NullTool, Reg, RoundRobin};
    use pinplay::{ReplayStatus, Replayer};

    const PROG: &str = r"
        .data
        x: .word 0
        .text
        .func main
            movi r0, 100     ; 0   warm-up loop
        warm:
            subi r0, r0, 1   ; 1
            bgti r0, 0, warm ; 2
            rand r1          ; 3   <- buggy region starts here
            andi r1, r1, 7   ; 4
            la r2, x         ; 5
            store r1, r2, 0  ; 6
            addi r1, r1, 1   ; 7
            halt             ; 8
        .endfunc
        ";

    fn live() -> LiveSession<RoundRobin, LiveEnv> {
        let program = Arc::new(assemble(PROG).unwrap());
        LiveSession::new(program, RoundRobin::new(8), LiveEnv::new(77), "live-test")
    }

    #[test]
    fn fast_forward_then_record_then_replay() {
        let mut s = live();
        // Fast-forward to the buggy region at full speed.
        s.add_breakpoint(3);
        let stop = s.cont(10_000);
        assert_eq!(stop, LiveStop::Breakpoint { tid: 0, pc: 3 });
        assert!(!s.is_recording());

        // Record the region.
        assert!(s.record_on());
        assert!(!s.record_on(), "double record_on is a no-op");
        let stop = s.cont(10_000);
        assert_eq!(stop, LiveStop::Finished);
        let pb = s.record_off().expect("pinball captured");
        // rand executed before record_on (bp fires after pc 3 retires), so
        // the log holds the remaining instructions only.
        assert!(pb.logged_instructions() < 10);

        // The captured pinball replays to the same final state.
        let program = Arc::new(assemble(PROG).unwrap());
        let mut rep = Replayer::new(Arc::clone(&program), &pb);
        assert_eq!(rep.run(&mut NullTool), ReplayStatus::Completed);
        assert_eq!(rep.exec().read_reg(0, Reg(1)), s.exec().read_reg(0, Reg(1)));
        let x = program.symbol("x").unwrap();
        assert_eq!(rep.exec().read_mem(x), s.exec().read_mem(x));
    }

    #[test]
    fn record_captures_syscalls_for_replay() {
        let mut s = live();
        s.add_breakpoint(2); // stop inside the warm-up, before rand
        s.cont(10_000);
        assert!(s.remove_breakpoint(2));
        s.record_on();
        let stop = s.cont(10_000);
        assert_eq!(stop, LiveStop::Finished);
        let pb = s.record_off().unwrap();
        assert_eq!(
            pb.syscalls.first().map(Vec::len),
            Some(1),
            "the rand result is in the region log"
        );
        // Two replays agree on the injected rand value.
        let program = Arc::new(assemble(PROG).unwrap());
        let replay = |pb: &Pinball| {
            let mut rep = Replayer::new(Arc::clone(&program), pb);
            rep.run(&mut NullTool);
            rep.exec().read_reg(0, Reg(1))
        };
        assert_eq!(replay(&pb), replay(&pb));
        assert_eq!(replay(&pb), s.exec().read_reg(0, Reg(1)));
    }

    #[test]
    fn trap_while_recording_finalises_the_pinball() {
        let program = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r0, 10
                warm:
                    subi r0, r0, 1
                    bgti r0, 0, warm
                    movi r1, 0
                    assert r1      ; the bug
                .endfunc
                ",
            )
            .unwrap(),
        );
        let mut s = LiveSession::new(
            Arc::clone(&program),
            RoundRobin::new(8),
            LiveEnv::new(0),
            "trap-test",
        );
        s.record_on();
        let stop = s.cont(10_000);
        assert!(matches!(
            stop,
            LiveStop::Trapped(VmError::AssertFailed { .. })
        ));
        assert!(!s.is_recording(), "trap closes the recording");
        let pb = s.captured().expect("pinball finalised at the trap").clone();
        assert!(matches!(pb.exit, RecordedExit::Trap(_)));
        // The failure replays.
        let mut rep = Replayer::new(program, &pb);
        assert!(matches!(rep.run(&mut NullTool), ReplayStatus::Trapped(_)));
    }

    #[test]
    fn record_off_without_record_on_is_none() {
        let mut s = live();
        assert!(s.record_off().is_none());
    }
}
