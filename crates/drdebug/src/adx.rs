//! The PinADX-style debugger transport.
//!
//! In the paper the debugger is split across two processes: "The GDB
//! component communicates with the Pin-based component via PinADX, a
//! debugging extension of Pin" (§6, Fig. 10). This module reproduces that
//! architecture: the replay/slicing engine ([`DebugSession`]) runs on its
//! own thread behind a typed request/response protocol, and the front end
//! talks to it through an [`AdxClient`] — the same serialization boundary
//! PinADX places between gdb and the pintool, so a remote front end could
//! be substituted without touching the engine.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};

use minivm::{Addr, Pc, Program, Reg, Tid};
use pinplay::{Pinball, PinballContainer};
use slicer::LocKey;

use crate::session::{DebugSession, RelogReport, StopReason};

/// Requests the front end sends to the engine.
#[derive(Debug, Clone)]
pub enum AdxRequest {
    /// Set a breakpoint; responds [`AdxResponse::Id`].
    AddBreakpoint {
        /// Program point.
        pc: Pc,
        /// Optional thread filter.
        tid: Option<Tid>,
    },
    /// Set a watchpoint; responds [`AdxResponse::Id`].
    AddWatchpoint {
        /// Watched address.
        addr: Addr,
    },
    /// Delete a breakpoint; responds [`AdxResponse::Ok`] or `Error`.
    DeleteBreakpoint {
        /// Id from `AddBreakpoint`.
        id: u32,
    },
    /// Continue the replay; responds [`AdxResponse::Stopped`].
    Continue,
    /// Step one instruction; responds [`AdxResponse::Stopped`].
    StepI,
    /// Step one instruction backwards; responds [`AdxResponse::Stopped`].
    ReverseStepI,
    /// Run backwards to the previous hit; responds [`AdxResponse::Stopped`].
    ReverseContinue,
    /// Restart the replay from the region entry; responds `Ok`.
    Restart,
    /// Read a register; responds [`AdxResponse::Value`].
    ReadReg {
        /// Thread.
        tid: Tid,
        /// Register.
        reg: Reg,
    },
    /// Read a memory word; responds [`AdxResponse::Value`].
    ReadMem {
        /// Address.
        addr: Addr,
    },
    /// List threads; responds [`AdxResponse::Threads`].
    Threads,
    /// Compute + save a slice at the failure point; responds
    /// [`AdxResponse::SliceSaved`].
    SliceFailure,
    /// Compute + save a slice for a location at the current stop; responds
    /// [`AdxResponse::SliceSaved`] or `Error`.
    SliceHere {
        /// The location to slice on.
        key: LocKey,
    },
    /// Build the slice pinball for a saved slice; responds
    /// [`AdxResponse::SlicePinball`].
    MakeSlicePinball {
        /// Saved-slice index.
        index: usize,
    },
    /// Relog a saved slice into a content-addressed v3 slice-pinball
    /// container with embedded checkpoints; responds
    /// [`AdxResponse::Relogged`] or `Error`.
    Relog {
        /// Saved-slice index.
        index: usize,
    },
    /// Shut the engine down; responds `Ok` and ends the thread.
    Shutdown,
}

/// Responses from the engine.
#[derive(Debug, Clone)]
pub enum AdxResponse {
    /// Generic success.
    Ok,
    /// An allocated id (breakpoint/watchpoint).
    Id(u32),
    /// The replay stopped.
    Stopped(StopReason),
    /// A register/memory value.
    Value(i64),
    /// Thread list: `(tid, pc, runnable)`.
    Threads(Vec<(Tid, Pc, bool)>),
    /// A slice was computed and saved: `(index, statement count)`.
    SliceSaved {
        /// Index for `MakeSlicePinball`.
        index: usize,
        /// Statement instances in the slice.
        len: usize,
    },
    /// The generated slice pinball.
    SlicePinball(Box<Pinball>),
    /// The relogged slice-pinball container and its summary (digest,
    /// instruction counts).
    Relogged {
        /// The v3 container: slice pinball plus embedded checkpoints.
        container: Box<PinballContainer>,
        /// Digest and kept/excluded accounting.
        report: RelogReport,
    },
    /// The request failed.
    Error(String),
}

/// The front-end handle: sends requests, receives responses.
#[derive(Debug)]
pub struct AdxClient {
    tx: Sender<AdxRequest>,
    rx: Receiver<AdxResponse>,
    engine: Option<JoinHandle<()>>,
}

impl AdxClient {
    /// Issues one request and waits for its response.
    ///
    /// # Panics
    ///
    /// Panics if the engine thread has died — a protocol violation, not a
    /// recoverable condition.
    pub fn request(&self, req: AdxRequest) -> AdxResponse {
        self.tx.send(req).expect("engine alive");
        self.rx.recv().expect("engine alive")
    }

    /// Convenience: `Continue` and unwrap the stop reason.
    pub fn cont(&self) -> StopReason {
        match self.request(AdxRequest::Continue) {
            AdxResponse::Stopped(s) => s,
            other => panic!("protocol violation: {other:?}"),
        }
    }

    /// Convenience: read a register value.
    pub fn read_reg(&self, tid: Tid, reg: Reg) -> i64 {
        match self.request(AdxRequest::ReadReg { tid, reg }) {
            AdxResponse::Value(v) => v,
            other => panic!("protocol violation: {other:?}"),
        }
    }

    /// Convenience: read a memory word.
    pub fn read_mem(&self, addr: Addr) -> i64 {
        match self.request(AdxRequest::ReadMem { addr }) {
            AdxResponse::Value(v) => v,
            other => panic!("protocol violation: {other:?}"),
        }
    }
}

impl Drop for AdxClient {
    fn drop(&mut self) {
        let _ = self.tx.send(AdxRequest::Shutdown);
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
    }
}

/// Starts the engine thread over a bare pinball (no embedded checkpoints)
/// and returns the client. Prefer [`spawn_engine_container`] when the
/// pinball came from a v3 container: its embedded checkpoints make reverse
/// execution and `seek` O(chunk) from the first command.
pub fn spawn_engine(program: Arc<Program>, pinball: Pinball) -> AdxClient {
    spawn_engine_container(program, PinballContainer::new(pinball))
}

/// Starts the engine thread over a chunked container and returns the
/// client. The engine session is seeded with the container's embedded
/// checkpoints, exactly like [`DebugSession::with_container`].
pub fn spawn_engine_container(program: Arc<Program>, container: PinballContainer) -> AdxClient {
    let (req_tx, req_rx) = bounded::<AdxRequest>(1);
    let (resp_tx, resp_rx) = bounded::<AdxResponse>(1);
    let engine = std::thread::spawn(move || {
        let mut session = DebugSession::with_container(program, container);
        while let Ok(req) = req_rx.recv() {
            let resp = handle(&mut session, &req);
            let shutdown = matches!(req, AdxRequest::Shutdown);
            if resp_tx.send(resp).is_err() {
                return;
            }
            if shutdown {
                return;
            }
        }
    });
    AdxClient {
        tx: req_tx,
        rx: resp_rx,
        engine: Some(engine),
    }
}

fn handle(session: &mut DebugSession, req: &AdxRequest) -> AdxResponse {
    match *req {
        AdxRequest::AddBreakpoint { pc, tid } => AdxResponse::Id(session.add_breakpoint(pc, tid)),
        AdxRequest::AddWatchpoint { addr } => AdxResponse::Id(session.add_watchpoint(addr)),
        AdxRequest::DeleteBreakpoint { id } => {
            if session.delete_breakpoint(id) {
                AdxResponse::Ok
            } else {
                AdxResponse::Error(format!("no breakpoint {id}"))
            }
        }
        AdxRequest::Continue => AdxResponse::Stopped(session.cont()),
        AdxRequest::StepI => AdxResponse::Stopped(session.stepi()),
        AdxRequest::ReverseStepI => AdxResponse::Stopped(session.reverse_stepi()),
        AdxRequest::ReverseContinue => AdxResponse::Stopped(session.reverse_continue()),
        AdxRequest::Restart => {
            session.restart();
            AdxResponse::Ok
        }
        AdxRequest::ReadReg { tid, reg } => AdxResponse::Value(session.read_reg(tid, reg)),
        AdxRequest::ReadMem { addr } => AdxResponse::Value(session.read_mem(addr)),
        AdxRequest::Threads => AdxResponse::Threads(session.threads()),
        AdxRequest::SliceFailure => match session.slice_failure() {
            Some(slice) => {
                let len = slice.len();
                let index = session.save_slice(slice);
                AdxResponse::SliceSaved { index, len }
            }
            None => AdxResponse::Error("empty trace".to_owned()),
        },
        AdxRequest::SliceHere { key } => match session.slice_here(key) {
            Some(slice) => {
                let len = slice.len();
                let index = session.save_slice(slice);
                AdxResponse::SliceSaved { index, len }
            }
            None => AdxResponse::Error("not stopped at a trace record".to_owned()),
        },
        AdxRequest::MakeSlicePinball { index } => {
            if index < session.saved_slices().len() {
                AdxResponse::SlicePinball(Box::new(session.make_slice_pinball(index)))
            } else {
                AdxResponse::Error(format!("no saved slice {index}"))
            }
        }
        AdxRequest::Relog { index } => {
            if index < session.saved_slices().len() {
                let (container, report) = session.relog_slice(index);
                AdxResponse::Relogged {
                    container: Box::new(container),
                    report,
                }
            } else {
                AdxResponse::Error(format!("no saved slice {index}"))
            }
        }
        AdxRequest::Shutdown => AdxResponse::Ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    fn client() -> (Arc<minivm::Program>, AdxClient) {
        let program = Arc::new(
            assemble(
                r"
                .data
                x: .word 0
                .text
                .func main
                    movi r1, 5      ; 0
                    la r2, x        ; 1
                    store r1, r2, 0 ; 2
                    load r3, r2, 0  ; 3
                    addi r3, r3, 1  ; 4
                    halt            ; 5
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "adx-test",
        )
        .unwrap();
        let c = spawn_engine(Arc::clone(&program), rec.pinball);
        (program, c)
    }

    #[test]
    fn breakpoint_roundtrip_over_the_wire() {
        let (program, c) = client();
        let AdxResponse::Id(id) = c.request(AdxRequest::AddBreakpoint { pc: 2, tid: None }) else {
            panic!("expected id")
        };
        let stop = c.cont();
        assert_eq!(stop, StopReason::Breakpoint { id, tid: 0, pc: 2 });
        let x = program.symbol("x").unwrap();
        assert_eq!(c.read_mem(x), 5);
        assert_eq!(c.read_reg(0, Reg(1)), 5);
        assert_eq!(c.cont(), StopReason::ReplayEnd);
    }

    #[test]
    fn restart_and_reverse_over_the_wire() {
        let (_, c) = client();
        assert!(matches!(
            c.request(AdxRequest::StepI),
            AdxResponse::Stopped(_)
        ));
        assert!(matches!(
            c.request(AdxRequest::StepI),
            AdxResponse::Stopped(_)
        ));
        assert!(matches!(
            c.request(AdxRequest::ReverseStepI),
            AdxResponse::Stopped(StopReason::Stepped { pc: 0, .. })
        ));
        assert!(matches!(c.request(AdxRequest::Restart), AdxResponse::Ok));
        let AdxResponse::Threads(ts) = c.request(AdxRequest::Threads) else {
            panic!("expected thread list")
        };
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn slice_pipeline_over_the_wire() {
        let (_, c) = client();
        c.cont();
        let AdxResponse::SliceSaved { index, len } = c.request(AdxRequest::SliceFailure) else {
            panic!("expected slice")
        };
        assert!(len > 0);
        let AdxResponse::SlicePinball(pb) = c.request(AdxRequest::MakeSlicePinball { index })
        else {
            panic!("expected pinball")
        };
        assert!(pb.meta.is_slice);
        assert!(matches!(
            c.request(AdxRequest::MakeSlicePinball { index: 99 }),
            AdxResponse::Error(_)
        ));
    }

    #[test]
    fn relog_over_the_wire_is_content_addressed() {
        let (_, c) = client();
        c.cont();
        let AdxResponse::SliceSaved { index, .. } = c.request(AdxRequest::SliceFailure) else {
            panic!("expected slice")
        };
        let AdxResponse::Relogged { container, report } = c.request(AdxRequest::Relog { index })
        else {
            panic!("expected relogged container")
        };
        assert!(container.pinball.meta.is_slice);
        assert_eq!(container.digest(), report.digest);
        assert_eq!(report.instructions, report.kept);
        assert_eq!(
            report.kept + report.excluded,
            container.pinball.logged_instructions() + report.excluded,
        );
        assert!(matches!(
            c.request(AdxRequest::Relog { index: 99 }),
            AdxResponse::Error(_)
        ));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let (_, c) = client();
        assert!(matches!(
            c.request(AdxRequest::DeleteBreakpoint { id: 42 }),
            AdxResponse::Error(_)
        ));
    }
}
