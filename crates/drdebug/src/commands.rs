//! The gdb-style command interpreter.
//!
//! DrDebug fronts its machinery with gdb plus new commands (paper §1:
//! "new commands for region recording and dynamic slicing are made
//! available"). This module is that command surface: a line-oriented
//! interpreter over [`DebugSession`], with the slice-browsing verbs the
//! KDbg GUI exposes as buttons (Fig. 9's `slice`, dependence activation)
//! and the §4 execution-slice workflow (`save-slice`, `replay-slice`,
//! `step-slice`).

use minivm::{Pc, Reg, Tid};
use slicer::{LocKey, RecordId, Slice};

use crate::browse::SliceBrowser;
use crate::session::{DebugSession, StopReason};
use crate::stepper::{SliceStep, SliceStepper};

/// A line-oriented debugger front end.
pub struct CommandInterpreter {
    session: DebugSession,
    current_slice: Option<Slice>,
    cursor: Option<RecordId>,
    stepper: Option<SliceStepper>,
}

impl std::fmt::Debug for CommandInterpreter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommandInterpreter")
            .field("session", &self.session)
            .field("has_slice", &self.current_slice.is_some())
            .finish()
    }
}

impl CommandInterpreter {
    /// Wraps a debug session.
    pub fn new(session: DebugSession) -> CommandInterpreter {
        CommandInterpreter {
            session,
            current_slice: None,
            cursor: None,
            stepper: None,
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &DebugSession {
        &self.session
    }

    /// Executes one command line and returns the textual response.
    pub fn execute(&mut self, line: &str) -> String {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return String::new();
        };
        let args: Vec<&str> = parts.collect();
        match cmd {
            "help" => HELP.to_owned(),
            "break" | "b" => self.cmd_break(&args),
            "delete" => self.cmd_delete(&args),
            "enable" => self.cmd_enable(&args, true),
            "disable" => self.cmd_enable(&args, false),
            "info" => self.cmd_info(&args),
            "continue" | "c" => {
                let stop = self.run_continue();
                self.report_stop(stop)
            }
            "stepi" | "si" => self.cmd_stepi(&args),
            "reverse-stepi" | "reverse-step" | "rsi" => {
                let stop = self.session.reverse_stepi();
                self.report_stop(stop)
            }
            "reverse-continue" | "rc" => {
                let stop = self.session.reverse_continue();
                self.report_stop(stop)
            }
            "watch" => self.cmd_watch(&args),
            "delete-watch" => self.cmd_delete_watch(&args),
            "restart" => {
                self.session.restart();
                "restarted: replaying the same pinball from the region entry".to_owned()
            }
            "seek" => self.cmd_seek(&args),
            "print" | "p" => self.cmd_print(&args),
            "x" => self.cmd_examine(&args),
            "list" | "l" => self.cmd_list(),
            "where" => self.cmd_where(),
            "slice" => self.cmd_slice(&args),
            "slice-line" => self.cmd_slice_line(&args),
            "prune-var" => self.cmd_prune_var(&args),
            "clear-prune" => {
                self.session.clear_prune_keys();
                "prune-vars cleared".to_owned()
            }
            "slice-failure" => self.cmd_slice_failure(),
            "metrics" => self.cmd_metrics(),
            "deps" => self.cmd_deps(),
            "activate" => self.cmd_activate(&args),
            "statements" => self.cmd_statements(),
            "save-slice" => self.cmd_save_slice(),
            "save-slice-file" => self.cmd_save_slice_file(&args),
            "load-slice-file" => self.cmd_load_slice_file(&args),
            "replay-slice" => self.cmd_replay_slice(&args),
            "relog" => self.cmd_relog(&args),
            "step-slice" => self.cmd_step_slice(),
            "restart-slice" => self.cmd_restart_slice(),
            other => format!("unknown command `{other}` (try `help`)"),
        }
    }

    fn run_continue(&mut self) -> StopReason {
        self.session.cont()
    }

    fn report_stop(&self, stop: StopReason) -> String {
        match stop {
            StopReason::Breakpoint { id, tid, pc } => {
                let loc = self.session.program().describe_pc(pc);
                format!("breakpoint {id} hit: thread {tid} at {loc} (pc {pc})")
            }
            StopReason::Stepped { tid, pc } => {
                let loc = self.session.program().describe_pc(pc);
                format!("thread {tid} stepped: {loc} (pc {pc})")
            }
            StopReason::Watchpoint { id, tid, pc, value } => {
                let loc = self.session.program().describe_pc(pc);
                format!("watchpoint {id} hit: thread {tid} wrote {value} at {loc} (pc {pc})")
            }
            StopReason::ReplayStart => "at the start of the recorded region".to_owned(),
            StopReason::ReplayEnd => "replay finished: end of recorded region".to_owned(),
            StopReason::Trapped(e) => format!("trap reproduced: {e}"),
        }
    }

    fn parse_loc(&self, s: &str) -> Option<Pc> {
        if let Ok(pc) = s.parse::<Pc>() {
            return Some(pc);
        }
        let (name, off) = match s.split_once('+') {
            Some((n, o)) => (n, o.parse::<Pc>().ok()?),
            None => (s, 0),
        };
        let program = self.session.program();
        program
            .function(name)
            .map(|f| f.entry)
            .or_else(|| program.label(name))
            .map(|entry| entry + off)
    }

    fn cmd_break(&mut self, args: &[&str]) -> String {
        let Some(loc) = args.first().and_then(|s| self.parse_loc(s)) else {
            return "usage: break <pc|func|label[+off]> [tid]".to_owned();
        };
        let tid = args.get(1).and_then(|s| s.parse::<Tid>().ok());
        let id = self.session.add_breakpoint(loc, tid);
        format!("breakpoint {id} at pc {loc}")
    }

    fn cmd_watch(&mut self, args: &[&str]) -> String {
        let Some(what) = args.first() else {
            return "usage: watch <addr|symbol>".to_owned();
        };
        let addr = self
            .session
            .program()
            .symbol(what)
            .or_else(|| parse_u64(what));
        match addr {
            Some(addr) => {
                let id = self.session.add_watchpoint(addr);
                format!("watchpoint {id} on [{addr:#x}]")
            }
            None => format!("cannot resolve `{what}` to an address"),
        }
    }

    fn cmd_delete_watch(&mut self, args: &[&str]) -> String {
        match args.first().and_then(|s| s.parse::<u32>().ok()) {
            Some(id) if self.session.delete_watchpoint(id) => format!("deleted watchpoint {id}"),
            Some(id) => format!("no watchpoint {id}"),
            None => "usage: delete-watch <id>".to_owned(),
        }
    }

    fn cmd_delete(&mut self, args: &[&str]) -> String {
        match args.first().and_then(|s| s.parse::<u32>().ok()) {
            Some(id) if self.session.delete_breakpoint(id) => format!("deleted breakpoint {id}"),
            Some(id) => format!("no breakpoint {id}"),
            None => "usage: delete <id>".to_owned(),
        }
    }

    fn cmd_enable(&mut self, args: &[&str], enabled: bool) -> String {
        match args.first().and_then(|s| s.parse::<u32>().ok()) {
            Some(id) if self.session.enable_breakpoint(id, enabled) => {
                format!(
                    "breakpoint {id} {}",
                    if enabled { "enabled" } else { "disabled" }
                )
            }
            Some(id) => format!("no breakpoint {id}"),
            None => "usage: enable|disable <id>".to_owned(),
        }
    }

    fn cmd_info(&mut self, args: &[&str]) -> String {
        match args.first().copied() {
            Some("breakpoints") => {
                let mut out = String::from("id  pc     tid    enabled\n");
                for (id, bp) in self.session.breakpoints() {
                    out.push_str(&format!(
                        "{:<3} {:<6} {:<6} {}\n",
                        id,
                        bp.pc,
                        bp.tid.map_or("any".to_owned(), |t| t.to_string()),
                        bp.enabled
                    ));
                }
                out
            }
            Some("watchpoints") => {
                let mut out = String::from("id  addr      enabled\n");
                for (id, wp) in self.session.watchpoints() {
                    out.push_str(&format!("{:<3} {:#8x} {}\n", id, wp.addr, wp.enabled));
                }
                out
            }
            Some("threads") => {
                let mut out = String::from("tid  pc     state\n");
                for (tid, pc, runnable) in self.session.threads() {
                    out.push_str(&format!(
                        "{:<4} {:<6} {}\n",
                        tid,
                        pc,
                        if runnable { "runnable" } else { "halted" }
                    ));
                }
                out
            }
            Some("checkpoints") => {
                let (embedded, session) = self.session.checkpoint_positions();
                let fmt_list = |v: &[u64]| {
                    if v.is_empty() {
                        "(none)".to_owned()
                    } else {
                        v.iter().map(u64::to_string).collect::<Vec<_>>().join(" ")
                    }
                };
                format!(
                    "embedded container checkpoints at instructions: {}\n\
                     session checkpoints at instructions: {}\n",
                    fmt_list(&embedded),
                    fmt_list(&session)
                )
            }
            Some("container") => {
                // Report the session's container as encoded by the current
                // (v3) writer: version, per-frame codecs, compression.
                let bytes = match self.session.container().to_bytes() {
                    Ok(bytes) => bytes,
                    Err(e) => return format!("cannot encode container: {e}"),
                };
                match pinplay::inspect(&bytes) {
                    Ok(report) => report.to_string(),
                    Err(e) => format!("cannot inspect container: {e}"),
                }
            }
            _ => "usage: info breakpoints|watchpoints|threads|checkpoints|container".to_owned(),
        }
    }

    fn cmd_seek(&mut self, args: &[&str]) -> String {
        let Some(target) = args.first().and_then(|s| s.parse::<u64>().ok()) else {
            return "usage: seek <instruction-count>".to_owned();
        };
        let stop = self.session.seek_to(target);
        format!(
            "seeked to instruction {}: {}",
            self.session.position(),
            self.report_stop(stop)
        )
    }

    fn cmd_stepi(&mut self, args: &[&str]) -> String {
        let n: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1);
        let mut last = String::new();
        for _ in 0..n.max(1) {
            let stop = self.session.stepi();
            last = self.report_stop(stop);
            if matches!(stop, StopReason::ReplayEnd | StopReason::Trapped(_)) {
                break;
            }
        }
        last
    }

    fn parse_reg(s: &str) -> Option<Reg> {
        if s == "sp" {
            return Some(Reg::SP);
        }
        let n: u8 = s.strip_prefix('r')?.parse().ok()?;
        (n < 16).then_some(Reg(n))
    }

    fn cmd_print(&mut self, args: &[&str]) -> String {
        let Some(what) = args.first() else {
            return "usage: print <rN [tid] | symbol | *addr>".to_owned();
        };
        if let Some(reg) = Self::parse_reg(what) {
            let tid: Tid = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .or_else(|| self.session.stopped_at().map(|s| s.tid))
                .unwrap_or(0);
            return format!("t{tid}:{reg} = {}", self.session.read_reg(tid, reg));
        }
        if let Some(addr) = what.strip_prefix('*').and_then(parse_u64) {
            return format!("[{addr:#x}] = {}", self.session.read_mem(addr));
        }
        match self.session.read_symbol(what) {
            Some(v) => format!("{what} = {v}"),
            None => format!("unknown symbol `{what}`"),
        }
    }

    fn cmd_examine(&mut self, args: &[&str]) -> String {
        let Some(addr) = args.first().and_then(|s| parse_u64(s)) else {
            return "usage: x <addr> [count]".to_owned();
        };
        let n: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
        (0..n)
            .map(|i| format!("[{:#x}] = {}", addr + i, self.session.read_mem(addr + i)))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn cmd_where(&mut self) -> String {
        match self.session.stopped_at() {
            Some(site) => format!(
                "thread {} at {} (pc {}, instance {}, seq {})",
                site.tid,
                self.session.program().describe_pc(site.pc),
                site.pc,
                site.instance,
                site.seq
            ),
            None => "not started (use continue/stepi)".to_owned(),
        }
    }

    fn cmd_list(&mut self) -> String {
        match (&self.current_slice, self.cursor) {
            (Some(slice), Some(cursor)) => {
                let program = std::sync::Arc::clone(self.session.program());
                let slicer = self.session.slicer();
                let mut b = SliceBrowser::new(slice, slicer.trace());
                b.goto(cursor);
                b.render_listing(&program)
            }
            _ => self.session.program().disassemble(),
        }
    }

    fn set_slice(&mut self, slice: Slice) -> String {
        let n = slice.len();
        let stats = slice.stats;
        self.cursor = Some(slice.criterion.record_id());
        self.current_slice = Some(slice);
        format!(
            "slice computed: {n} statement instances, {} records scanned, \
             {} of {} blocks skipped (use statements/deps/activate/metrics/list)",
            stats.records_scanned,
            stats.blocks_skipped,
            stats.blocks_visited + stats.blocks_skipped,
        )
    }

    fn cmd_metrics(&mut self) -> String {
        let seek = format!("seek metrics:\n{}", self.session.seek_metrics());
        match self.session.metrics() {
            Some(m) => {
                let index = match self.session.last_slice_warm_index() {
                    Some(true) => "last slice: answered from a warm dependence index\n",
                    Some(false) => "last slice: built the dependence index (cold)\n",
                    None => "",
                };
                format!("pipeline stage metrics:\n{m}\n{index}{seek}")
            }
            None => format!("no trace collected yet (run a slice command first)\n{seek}"),
        }
    }

    fn cmd_slice(&mut self, args: &[&str]) -> String {
        let Some(site) = self.session.stopped_at() else {
            return "not stopped anywhere; continue/stepi first".to_owned();
        };
        let slice = match args.first() {
            None => self.session.slice_here_record(),
            Some(what) => {
                if let Some(reg) = Self::parse_reg(what) {
                    self.session.slice_here(LocKey::Reg(site.tid, reg))
                } else if let Some(addr) = self.session.program().symbol(what) {
                    self.session.slice_here(LocKey::Mem(addr))
                } else if let Some(addr) = what.strip_prefix('*').and_then(parse_u64) {
                    self.session.slice_here(LocKey::Mem(addr))
                } else {
                    return format!("cannot resolve `{what}` to a register or symbol");
                }
            }
        };
        match slice {
            Some(s) => self.set_slice(s),
            None => "no trace record at the stop site".to_owned(),
        }
    }

    fn cmd_prune_var(&mut self, args: &[&str]) -> String {
        let Some(what) = args.first() else {
            return "usage: prune-var <symbol | rN [tid]>".to_owned();
        };
        let key = if let Some(reg) = Self::parse_reg(what) {
            let tid: minivm::Tid = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .or_else(|| self.session.stopped_at().map(|s| s.tid))
                .unwrap_or(0);
            LocKey::Reg(tid, reg)
        } else if let Some(addr) = self.session.program().symbol(what) {
            LocKey::Mem(addr)
        } else if let Some(addr) = what.strip_prefix('*').and_then(parse_u64) {
            LocKey::Mem(addr)
        } else {
            return format!("cannot resolve `{what}`");
        };
        self.session.add_prune_key(key);
        format!(
            "pruning {key} from slice traversal ({} pruned vars)",
            self.session.prune_keys().len()
        )
    }

    fn cmd_slice_line(&mut self, args: &[&str]) -> String {
        let Some(line) = args.first().and_then(|s| s.parse::<u32>().ok()) else {
            return "usage: slice-line <line> [rN tid | symbol]".to_owned();
        };
        let key = match args.get(1) {
            None => None,
            Some(what) => {
                if let Some(reg) = Self::parse_reg(what) {
                    let tid: minivm::Tid = args
                        .get(2)
                        .and_then(|s| s.parse().ok())
                        .or_else(|| self.session.stopped_at().map(|s| s.tid))
                        .unwrap_or(0);
                    Some(LocKey::Reg(tid, reg))
                } else if let Some(addr) = self.session.program().symbol(what) {
                    Some(LocKey::Mem(addr))
                } else {
                    return format!("cannot resolve `{what}`");
                }
            }
        };
        match self.session.slice_at_line(line, key) {
            Some(s) => self.set_slice(s),
            None => format!("no executed statement on line {line}"),
        }
    }

    fn cmd_slice_failure(&mut self) -> String {
        match self.session.slice_failure() {
            Some(s) => self.set_slice(s),
            None => "empty trace".to_owned(),
        }
    }

    fn with_browser<R>(&mut self, f: impl FnOnce(&mut SliceBrowser<'_>) -> R) -> Result<R, String> {
        let (Some(slice), Some(cursor)) = (&self.current_slice, self.cursor) else {
            return Err("no slice computed (use `slice`)".to_owned());
        };
        // Ensure the slicer session exists, then browse immutably.
        self.session.slicer();
        let slicer = self.session.slicer();
        let mut b = SliceBrowser::new(slice, slicer.trace());
        b.goto(cursor);
        let r = f(&mut b);
        Ok(r)
    }

    fn cmd_deps(&mut self) -> String {
        let program = std::sync::Arc::clone(self.session.program());
        match self.with_browser(|b| {
            let head = b.describe_cursor(&program);
            let deps = b.deps();
            (head, deps)
        }) {
            Ok((head, deps)) => {
                let mut out = format!("at {head}\n");
                if deps.is_empty() {
                    out.push_str("  (no dependences within the region)\n");
                }
                for (i, d) in deps.iter().enumerate() {
                    match d {
                        crate::browse::DepEdge::Data { def, key, value } => {
                            let v = value.map_or(String::new(), |v| format!(" = {v}"));
                            out.push_str(&format!(
                                "  [{i}] data dep through {key}{v} <- record {def}\n"
                            ));
                        }
                        crate::browse::DepEdge::Control { branch } => {
                            out.push_str(&format!(
                                "  [{i}] control dep <- branch record {branch}\n"
                            ));
                        }
                    }
                }
                out
            }
            Err(e) => e,
        }
    }

    fn cmd_activate(&mut self, args: &[&str]) -> String {
        let Some(idx) = args.first().and_then(|s| s.parse::<usize>().ok()) else {
            return "usage: activate <dep-index>".to_owned();
        };
        let program = std::sync::Arc::clone(self.session.program());
        let result =
            self.with_browser(|b| b.activate(idx).map(|id| (id, b.describe_cursor(&program))));
        match result {
            Ok(Some((id, desc))) => {
                self.cursor = Some(id);
                format!("moved to {desc}")
            }
            Ok(None) => format!("no dependence with index {idx}"),
            Err(e) => e,
        }
    }

    fn cmd_statements(&mut self) -> String {
        let program = std::sync::Arc::clone(self.session.program());
        match self.with_browser(|b| {
            b.statements()
                .into_iter()
                .map(|id| format!("  {} {}", id, b.describe_record(id, &program)))
                .collect::<Vec<_>>()
                .join("\n")
        }) {
            Ok(s) => format!("slice statements (execution order):\n{s}"),
            Err(e) => e,
        }
    }

    fn cmd_save_slice(&mut self) -> String {
        match self.current_slice.clone() {
            Some(slice) => {
                let idx = self.session.save_slice(slice);
                format!("saved slice {idx}")
            }
            None => "no slice computed".to_owned(),
        }
    }

    fn cmd_save_slice_file(&mut self, args: &[&str]) -> String {
        let Some(path) = args.first() else {
            return "usage: save-slice-file <path>".to_owned();
        };
        let Some(slice) = self.current_slice.clone() else {
            return "no slice computed".to_owned();
        };
        self.session.slicer();
        let slicer = self.session.slicer_ref().expect("collected above");
        let (exclusions, _) = slicer.exclusion_regions(&slice);
        let name = self.session.pinball().meta.program.clone();
        let sf = slicer::SliceFile::build(&name, &slice, slicer.trace(), exclusions);
        match sf.save(std::path::Path::new(path)) {
            Ok(()) => format!(
                "slice file written to {path} ({} statements + exclusion regions)",
                sf.statements.len()
            ),
            Err(e) => format!("cannot write slice file: {e}"),
        }
    }

    fn cmd_load_slice_file(&mut self, args: &[&str]) -> String {
        let Some(path) = args.first() else {
            return "usage: load-slice-file <path>".to_owned();
        };
        match slicer::SliceFile::load(std::path::Path::new(path)) {
            Ok(sf) => {
                let slice = sf.to_slice();
                // Slices are valid across sessions thanks to PinPlay's
                // repeatability guarantee (paper §1).
                self.session.slicer();
                self.set_slice(slice)
            }
            Err(e) => format!("cannot load slice file: {e}"),
        }
    }

    fn cmd_replay_slice(&mut self, args: &[&str]) -> String {
        let Some(idx) = args.first().and_then(|s| s.parse::<usize>().ok()) else {
            return "usage: replay-slice <saved-slice-index>".to_owned();
        };
        if idx >= self.session.saved_slices().len() {
            return format!("no saved slice {idx}");
        }
        let pb = self.session.make_slice_pinball(idx);
        let kept = pb.logged_instructions();
        let slicer = self
            .session
            .slicer_ref()
            .expect("make_slice_pinball collects the slicer session");
        let slice = &self.session.saved_slices()[idx];
        self.stepper = Some(SliceStepper::new(slicer, slice, &pb));
        format!("slice pinball generated ({kept} instructions kept); use step-slice")
    }

    fn cmd_relog(&mut self, args: &[&str]) -> String {
        let Some(idx) = args.first().and_then(|s| s.parse::<usize>().ok()) else {
            return "usage: relog <saved-slice-index> [path]".to_owned();
        };
        if idx >= self.session.saved_slices().len() {
            return format!("no saved slice {idx}");
        }
        let (container, report) = self.session.relog_slice(idx);
        let mut out = format!(
            "relogged slice {idx} into slice pinball {}: {} instructions kept \
             ({} slice statements + {} forced sync), {} excluded, \
             {} embedded checkpoints",
            report.digest,
            report.kept,
            report.in_slice,
            report.forced,
            report.excluded,
            container.checkpoints.len(),
        );
        if let Some(path) = args.get(1) {
            match container.to_bytes() {
                Ok(bytes) => match std::fs::write(path, &bytes) {
                    Ok(()) => out.push_str(&format!(
                        "\nslice pinball written to {path} ({} bytes)",
                        bytes.len()
                    )),
                    Err(e) => out.push_str(&format!("\ncannot write {path}: {e}")),
                },
                Err(e) => out.push_str(&format!("\ncannot encode container: {e}")),
            }
        }
        out
    }

    fn cmd_restart_slice(&mut self) -> String {
        match self.stepper.as_mut() {
            Some(stepper) => {
                stepper.restart();
                "slice replay restarted from the region entry".to_owned()
            }
            None => "no slice replay active (use replay-slice)".to_owned(),
        }
    }

    fn cmd_step_slice(&mut self) -> String {
        let Some(stepper) = self.stepper.as_mut() else {
            return "no slice replay active (use replay-slice)".to_owned();
        };
        match stepper.step() {
            SliceStep::AtStatement { tid, pc, record } => {
                let loc = self.session.program().describe_pc(pc);
                format!("slice statement: thread {tid} at {loc} (pc {pc}, record {record})")
            }
            SliceStep::Finished => {
                self.stepper = None;
                "slice replay finished".to_owned()
            }
            SliceStep::Trapped(e) => {
                self.stepper = None;
                format!("slice replay reproduced the failure: {e}")
            }
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

const HELP: &str = "\
DrDebug commands:
  break <pc|func|label[+off]> [tid]   set a breakpoint
  delete|enable|disable <id>    manage breakpoints
  info breakpoints|threads|checkpoints   inspect session state
  info container                container format report (frames, codecs, sizes)
  continue | c                  replay until breakpoint/trap/end
  stepi [n] | si                step n instructions
  reverse-stepi | reverse-step | rsi   step one instruction BACKWARDS
  reverse-continue | rc         run backwards to the previous break/watch hit
  seek <n>                      jump to instruction n (O(chunk) w/ checkpoints)
  watch <addr|sym>              stop when a memory word is written
  delete-watch <id>             remove a watchpoint
  restart                       replay the pinball from the start (cyclic!)
  print <rN [tid]|sym|*addr>    read registers/memory
  x <addr> [count]              examine memory words
  where                         current stop site
  list                          program listing (slice lines marked)
  slice [rN|sym|*addr]          backward dynamic slice at the stop site
  slice-line <line> [var]       slice at a source line (Fig. 9 dialog)
  prune-var <sym|rN> | clear-prune   Fig. 9 'Prune Vars': don't chase these
  slice-failure                 slice at the failure point
  metrics                       per-stage slicing pipeline metrics
  statements | deps             browse the current slice
  activate <i>                  follow dependence i backward
  save-slice                    save the current slice (in session)
  save-slice-file <path>        write the slice + exclusion regions to disk
  load-slice-file <path>        load a slice saved by a previous session
  replay-slice <idx>            build + load the slice pinball
  relog <idx> [path]            relog a saved slice into a content-addressed
                                v3 slice-pinball container (optionally to disk)
  step-slice                    run to the next slice statement
  restart-slice                 replay the slice pinball from the start
";

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    fn interp(src: &str) -> CommandInterpreter {
        let program = Arc::new(assemble(src).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            100_000,
            "cmd-test",
        )
        .unwrap();
        CommandInterpreter::new(DebugSession::new(program, rec.pinball))
    }

    const PROG: &str = r"
        .data
        x: .word 0
        .text
        .func main
            movi r1, 5      ; 0
            movi r9, 77     ; 1 irrelevant
            la r2, x        ; 2
            store r1, r2, 0 ; 3
            load r3, r2, 0  ; 4
            addi r3, r3, 1  ; 5
            halt            ; 6
        .endfunc
        ";

    #[test]
    fn breakpoint_continue_print_workflow() {
        let mut d = interp(PROG);
        let out = d.execute("break 3");
        assert!(out.contains("breakpoint 1"), "{out}");
        let out = d.execute("continue");
        assert!(out.contains("breakpoint 1 hit"), "{out}");
        let out = d.execute("print x");
        assert!(out.contains("x = 5"), "{out}");
        let out = d.execute("print r1");
        assert!(out.contains("= 5"), "{out}");
        let out = d.execute("where");
        assert!(out.contains("pc 3"), "{out}");
        let out = d.execute("continue");
        assert!(out.contains("replay finished"), "{out}");
    }

    #[test]
    fn restart_is_cyclic() {
        let mut d = interp(PROG);
        d.execute("break 4");
        let a = d.execute("continue");
        d.execute("restart");
        let b = d.execute("continue");
        assert_eq!(a, b, "identical stop on every iteration");
    }

    #[test]
    fn slice_browse_and_activate() {
        let mut d = interp(PROG);
        d.execute("break 5");
        d.execute("continue");
        let out = d.execute("slice r3");
        assert!(out.contains("slice computed"), "{out}");
        let out = d.execute("statements");
        assert!(out.contains("movi r1, 5"), "{out}");
        assert!(!out.contains("movi r9"), "irrelevant excluded: {out}");
        let out = d.execute("deps");
        assert!(out.contains("[0]"), "{out}");
        let out = d.execute("activate 0");
        assert!(out.contains("moved to"), "{out}");
        let out = d.execute("list");
        assert!(out.contains("=>"), "{out}");
    }

    #[test]
    fn save_and_step_slice() {
        let mut d = interp(PROG);
        d.execute("break 5");
        d.execute("continue");
        d.execute("slice r3");
        let out = d.execute("save-slice");
        assert!(out.contains("saved slice 0"), "{out}");
        let out = d.execute("replay-slice 0");
        assert!(out.contains("slice pinball generated"), "{out}");
        let mut stops = 0;
        loop {
            let out = d.execute("step-slice");
            if out.contains("finished") {
                break;
            }
            assert!(out.contains("slice statement"), "{out}");
            stops += 1;
            assert!(stops < 100, "stepper must terminate");
        }
        assert!(stops >= 4, "several slice statements stepped: {stops}");
    }

    #[test]
    fn unknown_command_and_help() {
        let mut d = interp(PROG);
        assert!(d.execute("frobnicate").contains("unknown command"));
        assert!(d.execute("help").contains("step-slice"));
        assert!(d.execute("help").contains("metrics"));
        assert!(d.execute("help").contains("relog"));
        assert!(d.execute("help").contains("reverse-step"));
        assert_eq!(d.execute(""), "");
    }

    #[test]
    fn relog_writes_a_loadable_slice_pinball_container() {
        let mut d = interp(PROG);
        d.execute("break 5");
        d.execute("continue");
        d.execute("slice r3");
        d.execute("save-slice");
        assert!(d.execute("relog 9").contains("no saved slice 9"));
        let path = std::env::temp_dir().join("drdebug-relog-cmd-test.pb3");
        let path_s = path.to_str().unwrap().to_owned();
        let out = d.execute(&format!("relog 0 {path_s}"));
        assert!(out.contains("relogged slice 0"), "{out}");
        assert!(out.contains("instructions kept"), "{out}");
        assert!(out.contains("slice pinball written"), "{out}");
        // The written container round-trips and replays as a new session.
        let bytes = std::fs::read(&path).unwrap();
        let container = pinplay::PinballContainer::from_bytes(&bytes).unwrap();
        assert!(container.pinball.meta.is_slice);
        let program = std::sync::Arc::clone(d.session().program());
        let mut d2 = CommandInterpreter::new(DebugSession::with_container(program, container));
        let out = d2.execute("continue");
        assert!(out.contains("replay finished"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reverse_step_alias_matches_reverse_stepi() {
        let mut d = interp(PROG);
        d.execute("stepi 4");
        let out = d.execute("reverse-step");
        assert!(out.contains("stepped"), "{out}");
        let back = d.execute("print x");
        assert!(back.contains("x = 0"), "store rolled back: {back}");
    }

    #[test]
    fn metrics_report_pipeline_stages() {
        let mut d = interp(PROG);
        let out = d.execute("metrics");
        assert!(out.contains("no trace collected"), "{out}");
        d.execute("break 5");
        d.execute("continue");
        let out = d.execute("slice r3");
        assert!(out.contains("records scanned"), "{out}");
        let out = d.execute("metrics");
        assert!(out.contains("collect"), "{out}");
        assert!(out.contains("traverse"), "{out}");
        assert!(out.contains("blocks visited"), "{out}");
        assert!(out.contains("cold (built)"), "{out}");
        assert!(
            out.contains("built the dependence index"),
            "first slice is a cold index build: {out}"
        );
        d.execute("slice r3");
        let out = d.execute("metrics");
        assert!(out.contains("warm (reused)"), "{out}");
        assert!(
            out.contains("answered from a warm dependence index"),
            "repeat slice hits the warm index: {out}"
        );
    }

    #[test]
    fn break_resolves_labels() {
        // `x:` in .data is a symbol, not a code label; use a code label.
        let mut d = interp(
            r"
            .text
            .func main
                movi r1, 1
            here:
                addi r1, r1, 1
                halt
            .endfunc
            ",
        );
        let out = d.execute("break here");
        assert!(out.contains("breakpoint 1 at pc 1"), "{out}");
        let out = d.execute("continue");
        assert!(out.contains("breakpoint 1 hit"), "{out}");
    }

    #[test]
    fn info_and_examine() {
        let mut d = interp(PROG);
        d.execute("break main+3 0");
        let out = d.execute("info breakpoints");
        assert!(out.contains('3'), "{out}");
        d.execute("continue");
        let out = d.execute("x 0x1000 1");
        assert!(out.contains("= 5"), "{out}");
        let out = d.execute("info threads");
        assert!(out.contains("runnable") || out.contains("halted"), "{out}");
    }

    #[test]
    fn info_container_reports_frames_and_codecs() {
        let mut d = interp(PROG);
        let out = d.execute("info container");
        assert!(out.contains("container v4"), "{out}");
        assert!(out.contains("binary"), "{out}");
        assert!(out.contains("header"), "{out}");
        assert!(out.contains("index"), "{out}");
        // v4-specific rows: the shared dictionary frame, the columnar
        // events codec, and the per-column size breakdown.
        assert!(out.contains("dict"), "{out}");
        assert!(out.contains("columnar"), "{out}");
        assert!(out.contains("shared dictionary:"), "{out}");
        assert!(out.contains("event columns (encoded):"), "{out}");
        let usage = d.execute("info nonsense");
        assert!(usage.contains("container"), "{usage}");
    }
}

#[cfg(test)]
mod line_and_reverse_tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    fn interp() -> CommandInterpreter {
        // Source lines matter here: the assembler records 1-based lines.
        let src = "\
.data
x: .word 0
.text
.func main
 movi r1, 5
 movi r9, 77
 la r2, x
 store r1, r2, 0
 load r3, r2, 0
 addi r3, r3, 1
 halt
.endfunc
";
        let program = Arc::new(assemble(src).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "line-test",
        )
        .unwrap();
        CommandInterpreter::new(DebugSession::new(program, rec.pinball))
    }

    #[test]
    fn slice_line_resolves_source_lines() {
        let mut d = interp();
        d.execute("continue");
        // Line 10 is `addi r3, r3, 1`.
        let out = d.execute("slice-line 10");
        assert!(out.contains("slice computed"), "{out}");
        let stmts = d.execute("statements");
        assert!(stmts.contains("movi r1, 5"), "{stmts}");
        assert!(!stmts.contains("movi r9"), "{stmts}");
        let out = d.execute("slice-line 9999");
        assert!(out.contains("no executed statement"), "{out}");
    }

    #[test]
    fn reverse_commands_through_interpreter() {
        let mut d = interp();
        d.execute("stepi 4");
        let fwd = d.execute("print x");
        assert!(fwd.contains("x = 5"), "{fwd}");
        let out = d.execute("reverse-stepi");
        assert!(out.contains("stepped"), "{out}");
        let back = d.execute("print x");
        assert!(back.contains("x = 0"), "store rolled back: {back}");
    }

    #[test]
    fn watch_command_stops_on_store() {
        let mut d = interp();
        let out = d.execute("watch x");
        assert!(out.contains("watchpoint"), "{out}");
        let out = d.execute("continue");
        assert!(out.contains("wrote 5"), "{out}");
        let out = d.execute("info watchpoints");
        assert!(out.contains("true"), "{out}");
        let out = d.execute("delete-watch 1");
        assert!(out.contains("deleted"), "{out}");
    }

    #[test]
    fn deps_show_concrete_values() {
        let mut d = interp();
        d.execute("continue");
        d.execute("slice-line 10");
        let out = d.execute("deps");
        assert!(
            out.contains("= 5") || out.contains("= 6"),
            "values shown: {out}"
        );
    }
}

#[cfg(test)]
mod slice_file_tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    #[test]
    fn slice_survives_sessions_through_a_file() {
        let program = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r1, 2
                    movi r9, 7
                    addi r2, r1, 3
                    halt
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "slice-file-cmd",
        )
        .unwrap();
        let path = std::env::temp_dir().join("drdebug-cmd-test.slice");
        let path_s = path.to_str().unwrap().to_owned();

        // Session 1: compute and persist the slice.
        let mut d1 =
            CommandInterpreter::new(DebugSession::new(Arc::clone(&program), rec.pinball.clone()));
        d1.execute("continue");
        d1.execute("slice r2");
        let out = d1.execute(&format!("save-slice-file {path_s}"));
        assert!(out.contains("slice file written"), "{out}");

        // Session 2 (fresh): load it and browse — valid because the pinball
        // replays identically.
        let mut d2 = CommandInterpreter::new(DebugSession::new(program, rec.pinball));
        let out = d2.execute(&format!("load-slice-file {path_s}"));
        assert!(out.contains("slice computed"), "{out}");
        let stmts = d2.execute("statements");
        assert!(stmts.contains("movi r1, 2"), "{stmts}");
        assert!(!stmts.contains("movi r9"), "{stmts}");
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod prune_var_tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    #[test]
    fn prune_var_shrinks_subsequent_slices() {
        let program = Arc::new(
            assemble(
                r"
                .data
                config: .word 0
                .text
                .func main
                    movi r1, 3      ; 0 config chain
                    mul  r1, r1, r1 ; 1
                    la r2, config   ; 2
                    store r1, r2, 0 ; 3
                    movi r3, 10     ; 4
                    load r4, r2, 0  ; 5
                    add r5, r3, r4  ; 6
                    halt            ; 7
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "prune-cmd",
        )
        .unwrap();
        let mut d = CommandInterpreter::new(DebugSession::new(program, rec.pinball));
        d.execute("continue");
        d.execute("slice r5");
        let full = d.execute("statements");
        assert!(full.contains("store r1"), "{full}");

        let out = d.execute("prune-var config");
        assert!(out.contains("pruning"), "{out}");
        d.execute("slice r5");
        let pruned = d.execute("statements");
        assert!(!pruned.contains("store r1"), "{pruned}");
        assert!(pruned.contains("movi r3, 10"), "{pruned}");

        d.execute("clear-prune");
        d.execute("slice r5");
        let again = d.execute("statements");
        assert!(again.contains("store r1"), "{again}");
    }
}
