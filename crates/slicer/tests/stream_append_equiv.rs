//! Differential property test for the incremental dependence index.
//!
//! Random multi-threaded minivm programs (same generator family as
//! `index_equiv`) are recorded under random schedules and collected with
//! clustering off (the streaming configuration: appends preserve prefix
//! positions). The record list is then split at a random chunk schedule
//! and grown two ways:
//!
//! * incrementally — [`GlobalTrace::extend`] + [`DepIndex::append`] per
//!   chunk;
//! * batch — [`GlobalTrace::build_with`] + [`DepIndex::build`] over the
//!   full prefix, from scratch.
//!
//! After every chunk the two must agree exactly: [`DepIndex::same_graph`]
//! over every internal array, the trace's records/blocks/definition index,
//! and the slice at the prefix's last record.

use std::sync::Arc;

use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

use minivm::{assemble, LiveEnv, RandomSched};
use pinplay::record_whole_program;
use slicer::{
    compute_slice_indexed, Criterion, DepIndex, GlobalTrace, RecordId, Slice, SliceOptions,
    SliceSession, SlicerOptions,
};

/// A slice's content in canonical order.
type CanonSlice = (
    Vec<RecordId>,
    Vec<(RecordId, RecordId, slicer::LocKey)>,
    Vec<(RecordId, RecordId)>,
);

fn canon(slice: &Slice) -> CanonSlice {
    let mut records: Vec<RecordId> = slice.records.iter().copied().collect();
    records.sort_unstable();
    let mut data: Vec<_> = slice
        .data_edges
        .iter()
        .map(|e| (e.user, e.def, e.key))
        .collect();
    data.sort_unstable();
    let mut control = slice.control_edges.clone();
    control.sort_unstable();
    (records, data, control)
}

/// A small random program: arithmetic over r1..r6, shared-buffer traffic,
/// forward guards, and push/pop helper calls for save/restore pairs.
fn program_source(workers: usize, seed: u64) -> String {
    use std::fmt::Write as _;
    let mut src = String::new();
    src.push_str(".data\nbuf: .word 0, 0, 0, 0, 0, 0, 0, 0\n.text\n.func main\n");
    src.push_str("    la r8, buf\n");
    for r in 1..=6 {
        writeln!(src, "    movi r{r}, {r}").unwrap();
    }
    for w in 0..workers {
        writeln!(src, "    spawn r1{w}, worker, r1").unwrap();
    }
    for w in 0..workers {
        writeln!(src, "    join r1{w}").unwrap();
    }
    src.push_str("    halt\n.endfunc\n.func worker\n    la r8, buf\n");
    // A deterministic body parameterized by the seed: loads, stores,
    // atomics, a guard, and a helper call inside a short loop.
    let s = seed as u8;
    writeln!(src, "    movi r3, {}", 8 + (s % 8)).unwrap();
    src.push_str("spin:\n");
    writeln!(src, "    load r1, r8, {}", s % 8).unwrap();
    writeln!(src, "    addi r1, r1, {}", 1 + (s % 3)).unwrap();
    writeln!(src, "    store r1, r8, {}", (s / 2) % 8).unwrap();
    writeln!(src, "    xadd r2, r8, r1").unwrap();
    writeln!(src, "    bgei r1, {}, skip\n    call helper\nskip:", s % 5).unwrap();
    src.push_str("    subi r3, r3, 1\n    bgti r3, 0, spin\n    halt\n.endfunc\n");
    src.push_str(
        ".func helper\n    push r1\n    push r2\n    movi r1, 40\n    movi r2, 2\n    \
         add r7, r1, r2\n    pop r2\n    pop r1\n    ret\n.endfunc\n",
    );
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn append_equals_batch_at_every_prefix(
        workers in 1usize..4,
        body_seed in any::<u64>(),
        sched_seed in any::<u64>(),
        switch_period in 1u32..8,
        cuts in prop_vec(any::<usize>(), 1..6),
        prune_save_restore in any::<bool>(),
        block_small in any::<bool>(),
    ) {
        let src = program_source(workers, body_seed);
        let program = Arc::new(assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}")));
        let rec = record_whole_program(
            &program,
            &mut RandomSched::new(sched_seed, switch_period),
            &mut LiveEnv::new(1),
            200_000,
            "stream-append-equiv",
        )
        .expect("records");
        let block_size = if block_small { 8 } else { 64 };
        // Streaming configuration: clustering off keeps prefix positions
        // stable under appends.
        let session = SliceSession::collect(
            Arc::clone(&program),
            &rec.pinball,
            SlicerOptions {
                cluster: false,
                block_size,
                ..SlicerOptions::default()
            },
        );
        let records = session.trace().records().to_vec();
        let pairs = session.pairs();
        let n = records.len();
        prop_assert!(n > 0, "empty trace");
        let opts = SliceOptions {
            prune_save_restore,
            ..SliceOptions::new()
        };

        // Random ascending chunk boundaries over the record list.
        let mut splits: Vec<usize> = cuts.iter().map(|c| c % (n + 1)).collect();
        splits.push(n);
        splits.sort_unstable();
        splits.dedup();

        let mut grown_trace = GlobalTrace::build_with(Vec::new(), block_size, false, false);
        let mut grown_index = DepIndex::build(&grown_trace, pairs, &opts);
        let mut done = 0usize;
        for &split in &splits {
            grown_trace.extend(records[done..split].to_vec());
            grown_index.append(&grown_trace, pairs, &opts);
            done = split;

            let batch_trace =
                GlobalTrace::build_with(records[..split].to_vec(), block_size, false, false);
            let batch_index = DepIndex::build(&batch_trace, pairs, &opts);
            prop_assert_eq!(grown_trace.records(), batch_trace.records());
            prop_assert_eq!(grown_trace.blocks(), batch_trace.blocks());
            prop_assert!(
                grown_index.same_graph(&batch_index),
                "append-grown index diverged from batch at prefix {} of {}\n{}",
                split,
                n,
                src
            );
            if split > 0 {
                let crit = Criterion::Record {
                    id: records[split - 1].id,
                };
                prop_assert_eq!(
                    canon(&compute_slice_indexed(&grown_index, crit)),
                    canon(&compute_slice_indexed(&batch_index, crit)),
                    "slice diverged at prefix {} of {}",
                    split,
                    n
                );
            }
        }
        prop_assert_eq!(grown_trace.records().len(), n);
    }
}
