//! Differential property test for the reusable dependence index.
//!
//! Random multi-threaded minivm programs — straight-line arithmetic,
//! shared-buffer loads/stores/atomics, forward branches (dynamic control
//! dependences), and push/pop helper calls (save/restore pairs, §5.2) —
//! are recorded under random schedules and sliced three ways:
//!
//! * [`compute_slice_indexed`] over a prebuilt [`DepIndex`],
//! * [`compute_slice_sparse`] (the index-free reference traversal),
//! * [`compute_slice_naive`] (the brute-force oracle).
//!
//! For every random criterion — record and value form — and every option
//! combination (defaults, §5.2 pruning off, prune-keys, both) the three
//! must agree exactly on records, data edges, and control edges. One
//! index instance serves all criteria and all records, which is the
//! reuse the tentpole optimization depends on.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

use minivm::{assemble, LiveEnv, RandomSched, Reg};
use pinplay::record_whole_program;
use slicer::{
    compute_slice_indexed, compute_slice_naive, compute_slice_sparse, Criterion, DepIndex, LocKey,
    RecordId, Slice, SliceOptions, SliceSession, SlicerOptions,
};

/// One generated operation. Registers r1–r6 are data registers; r8 holds
/// the shared buffer base; r7 is helper scratch; r10.. hold thread ids.
#[derive(Debug, Clone)]
enum Op {
    MovI {
        dst: u8,
        imm: i8,
    },
    Bin {
        op: &'static str,
        dst: u8,
        a: u8,
        b: u8,
    },
    AddI {
        dst: u8,
        a: u8,
        imm: i8,
    },
    Load {
        dst: u8,
        off: u8,
    },
    Store {
        src: u8,
        off: u8,
    },
    XAdd {
        dst: u8,
        val: u8,
    },
    /// Forward branch over the next `len` ops: a dynamic control
    /// dependence for everything it guards.
    Guard {
        a: u8,
        imm: i8,
        len: u8,
    },
    /// Call the push/pop helper, producing save/restore pairs.
    CallHelper,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let r = || 1u8..7;
    prop_oneof![
        (r(), any::<i8>()).prop_map(|(dst, imm)| Op::MovI { dst, imm }),
        (
            prop_oneof![Just("add"), Just("sub"), Just("mul"), Just("xor")],
            r(),
            r(),
            r()
        )
            .prop_map(|(op, dst, a, b)| Op::Bin { op, dst, a, b }),
        (r(), r(), any::<i8>()).prop_map(|(dst, a, imm)| Op::AddI { dst, a, imm }),
        (r(), 0u8..8).prop_map(|(dst, off)| Op::Load { dst, off }),
        (r(), 0u8..8).prop_map(|(src, off)| Op::Store { src, off }),
        (r(), r()).prop_map(|(dst, val)| Op::XAdd { dst, val }),
        (r(), -4i8..5, 1u8..6).prop_map(|(a, imm, len)| Op::Guard { a, imm, len }),
        Just(Op::CallHelper),
    ]
}

/// Emits one function body; forward-branch labels are scoped by `fname`.
fn emit_body(out: &mut String, fname: &str, ops: &[Op]) {
    let mut label = 0usize;
    // (ops remaining under the guard, label to place when it closes)
    let mut pending: Vec<(u8, usize)> = Vec::new();
    for op in ops {
        match op {
            Op::MovI { dst, imm } => writeln!(out, "    movi r{dst}, {imm}").unwrap(),
            Op::Bin { op, dst, a, b } => writeln!(out, "    {op} r{dst}, r{a}, r{b}").unwrap(),
            Op::AddI { dst, a, imm } => writeln!(out, "    addi r{dst}, r{a}, {imm}").unwrap(),
            Op::Load { dst, off } => writeln!(out, "    load r{dst}, r8, {off}").unwrap(),
            Op::Store { src, off } => writeln!(out, "    store r{src}, r8, {off}").unwrap(),
            Op::XAdd { dst, val } => writeln!(out, "    xadd r{dst}, r8, r{val}").unwrap(),
            Op::Guard { a, imm, len } => {
                writeln!(out, "    bgei r{a}, {imm}, skip_{fname}_{label}").unwrap();
                pending.push((*len, label));
                label += 1;
                continue; // the guard is not a unit of any enclosing guard
            }
            Op::CallHelper => writeln!(out, "    call helper").unwrap(),
        }
        for (left, _) in pending.iter_mut() {
            *left -= 1;
        }
        pending.retain(|&(left, l)| {
            if left == 0 {
                writeln!(out, "skip_{fname}_{l}:").unwrap();
            }
            left > 0
        });
    }
    for &(_, l) in pending.iter().rev() {
        writeln!(out, "skip_{fname}_{l}:").unwrap();
    }
}

/// Assembles a random program: `main` seeds r1–r6, spawns `workers`
/// threads over a shared 8-word buffer, runs its own body, joins, halts.
fn program_source(workers: usize, main_ops: &[Op], worker_ops: &[Op]) -> String {
    let mut src = String::new();
    src.push_str(".data\nbuf: .word 0, 0, 0, 0, 0, 0, 0, 0\n.text\n.func main\n");
    src.push_str("    la r8, buf\n");
    for r in 1..=6 {
        writeln!(src, "    movi r{r}, {r}").unwrap();
    }
    for w in 0..workers {
        writeln!(src, "    spawn r1{w}, worker, r1").unwrap();
    }
    emit_body(&mut src, "main", main_ops);
    for w in 0..workers {
        writeln!(src, "    join r1{w}").unwrap();
    }
    src.push_str("    halt\n.endfunc\n.func worker\n    la r8, buf\n");
    for r in 1..=6 {
        writeln!(src, "    movi r{r}, {}", 7 - r).unwrap();
    }
    emit_body(&mut src, "worker", worker_ops);
    src.push_str("    halt\n.endfunc\n");
    // Save/restore idiom: the helper saves r1/r2, clobbers them, restores.
    src.push_str(
        ".func helper\n    push r1\n    push r2\n    movi r1, 40\n    movi r2, 2\n    \
         add r7, r1, r2\n    pop r2\n    pop r1\n    ret\n.endfunc\n",
    );
    src
}

/// A slice's content in canonical order: records, data-edge triples,
/// control-edge pairs.
type CanonSlice = (
    Vec<RecordId>,
    Vec<(RecordId, RecordId, LocKey)>,
    Vec<(RecordId, RecordId)>,
);

fn canon(slice: &Slice) -> CanonSlice {
    let mut records: Vec<RecordId> = slice.records.iter().copied().collect();
    records.sort_unstable();
    let mut data: Vec<(RecordId, RecordId, LocKey)> = slice
        .data_edges
        .iter()
        .map(|e| (e.user, e.def, e.key))
        .collect();
    data.sort_unstable();
    let mut control = slice.control_edges.clone();
    control.sort_unstable();
    (records, data, control)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn indexed_matches_sparse_and_naive(
        workers in 1usize..4,
        main_ops in prop_vec(op_strategy(), 4..24),
        worker_ops in prop_vec(op_strategy(), 4..24),
        sched_seed in any::<u64>(),
        switch_period in 1u32..8,
        refine_indirect in any::<bool>(),
        cluster in any::<bool>(),
        block_small in any::<bool>(),
        crit_picks in prop_vec(any::<usize>(), 3..4),
        prune_reg in 1u8..7,
    ) {
        let src = program_source(workers, &main_ops, &worker_ops);
        let program = Arc::new(assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}")));
        let rec = record_whole_program(
            &program,
            &mut RandomSched::new(sched_seed, switch_period),
            &mut LiveEnv::new(1),
            200_000,
            "index-equiv",
        )
        .expect("records");
        let session = SliceSession::collect(
            Arc::clone(&program),
            &rec.pinball,
            SlicerOptions {
                refine_indirect,
                cluster,
                block_size: if block_small { 4 } else { 64 },
                ..SlicerOptions::default()
            },
        );
        let trace = session.trace();
        let pairs: &HashMap<RecordId, RecordId> = session.pairs();
        let n = trace.records().len();
        prop_assert!(n > 0, "empty trace");

        // Record criteria at random positions plus the failure point, and
        // a value criterion on each picked record's first used location.
        let mut criteria: Vec<Criterion> = Vec::new();
        for pick in &crit_picks {
            let r = &trace.records()[pick % n];
            criteria.push(Criterion::Record { id: r.id });
            let key = r
                .use_keys(false)
                .map(|(k, _)| k)
                .next()
                .unwrap_or(LocKey::Reg(0, Reg(1)));
            criteria.push(Criterion::Value { id: r.id, key });
        }
        criteria.push(Criterion::Record { id: trace.records()[n - 1].id });

        let buf = program.symbol("buf").expect("buf symbol");
        let option_combos: Vec<SliceOptions> = vec![
            SliceOptions::new(),
            SliceOptions {
                prune_save_restore: false,
                ..SliceOptions::new()
            },
            SliceOptions::new()
                .prune_key(LocKey::Reg(0, Reg(prune_reg)))
                .prune_key(LocKey::Mem(buf)),
            SliceOptions {
                prune_save_restore: false,
                ..SliceOptions::new().prune_key(LocKey::Reg(1, Reg(prune_reg)))
            },
        ];

        for opts in &option_combos {
            // One index serves every criterion under these options.
            let index = DepIndex::build(trace, pairs, opts);
            for &criterion in &criteria {
                let indexed = compute_slice_indexed(&index, criterion);
                let sparse = compute_slice_sparse(trace, criterion, pairs, opts.clone());
                let naive = compute_slice_naive(trace, criterion, pairs, opts.clone());
                prop_assert_eq!(
                    canon(&indexed),
                    canon(&sparse),
                    "indexed vs sparse: criterion {:?}, options {:?}\n{}",
                    criterion,
                    opts,
                    src
                );
                prop_assert_eq!(
                    canon(&sparse),
                    canon(&naive),
                    "sparse vs naive: criterion {:?}, options {:?}\n{}",
                    criterion,
                    opts,
                    src
                );
            }
        }
    }
}
