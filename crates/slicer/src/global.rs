//! Global trace construction (paper §3, step ii).
//!
//! Per-thread traces are combined into "a single fully ordered trace such
//! that each instruction in the trace honors its dynamic data dependences
//! including all read-after-write, write-after-write, and write-after-read
//! dependences". The order constraints are:
//!
//! * **program order** — consecutive records of the same thread;
//! * **shared-memory access order** — consecutive *conflicting* accesses
//!   (at least one write) to the same address, in the order the replay
//!   produced them (this is the information "already available in a
//!   pinball, as it is needed for replay");
//! * **spawn order** — a `spawn` precedes every record of the child thread.
//!
//! The merge is a Kahn topological sort that greedily stays on the current
//! thread — the paper's clustering trick ("we always try to cluster traces
//! for each thread to the extent possible to improve the locality of \[the\]
//! LP algorithm").
//!
//! The result is segmented into fixed-size blocks, each summarising the set
//! of locations it defines — the block summaries the Limited Preprocessing
//! traversal uses to skip irrelevant blocks (Zhang et al., paper §3 step
//! iii).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use minivm::Tid;

use crate::trace::{LocKey, RecordId, TraceRecord};

/// Default LP block size (records per block).
pub const DEFAULT_BLOCK_SIZE: usize = 1024;

/// Traces below this many records are summarized serially — thread spawn
/// overhead dominates for small traces.
pub const PAR_SUMMARY_THRESHOLD: usize = 16_384;

/// Upper bound on summary workers (beyond this the atomic work queue is the
/// bottleneck, not the scanning).
const MAX_SUMMARY_WORKERS: usize = 16;

/// Timings from one [`GlobalTrace`] build, for the pipeline metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildMetrics {
    /// Wall time of the topological cluster merge (zero with clustering
    /// off).
    pub merge_wall: Duration,
    /// Wall time of block summarization + definition indexing.
    pub summarize_wall: Duration,
    /// Workers used for summarization (1 = serial).
    pub summary_workers: usize,
}

/// Summary of one LP block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSummary {
    /// Position range `[start, end)` in the globally ordered trace.
    pub start: usize,
    /// End of the range (exclusive).
    pub end: usize,
    /// Every location key defined by a record in the block (a superset of
    /// the downward-exposed definitions, which is sound for skipping).
    pub defs: HashSet<LocKey>,
}

/// The fully ordered multi-threaded trace, with LP block summaries.
#[derive(Debug)]
pub struct GlobalTrace {
    records: Vec<TraceRecord>,
    /// record id -> position in `records`.
    pos_of: HashMap<RecordId, usize>,
    blocks: Vec<BlockSummary>,
    block_size: usize,
    /// location key -> ascending positions of its definitions. Precomputed
    /// alongside the block summaries, this lets the sparse traversal jump
    /// straight to a live key's reaching definition instead of scanning.
    def_index: HashMap<LocKey, Vec<usize>>,
    track_sp: bool,
}

impl GlobalTrace {
    /// Builds the global trace from records in *collection order* (which is
    /// the replay interleaving: one valid topological order). The records
    /// are re-ordered by the clustering merge, then segmented into blocks of
    /// `block_size`.
    pub fn build(collected: Vec<TraceRecord>, block_size: usize, track_sp: bool) -> GlobalTrace {
        GlobalTrace::build_with(collected, block_size, track_sp, true)
    }

    /// Like [`GlobalTrace::build`], with clustering controllable — the
    /// ablation of the paper's §3 locality trick ("we always try to cluster
    /// traces for each thread to the extent possible to improve the
    /// locality of \[the\] LP algorithm"). With `cluster` off, the trace
    /// keeps the raw replay interleaving (still a valid topological order).
    pub fn build_with(
        collected: Vec<TraceRecord>,
        block_size: usize,
        track_sp: bool,
        cluster: bool,
    ) -> GlobalTrace {
        GlobalTrace::build_instrumented(collected, block_size, track_sp, cluster).0
    }

    /// Like [`GlobalTrace::build_with`], also reporting per-stage timings
    /// for the pipeline metrics.
    pub fn build_instrumented(
        collected: Vec<TraceRecord>,
        block_size: usize,
        track_sp: bool,
        cluster: bool,
    ) -> (GlobalTrace, BuildMetrics) {
        assert!(block_size > 0, "block size must be positive");
        let merge_start = Instant::now();
        let order: Vec<usize> = if cluster {
            cluster_merge(&collected, track_sp)
        } else {
            (0..collected.len()).collect()
        };
        let records: Vec<TraceRecord> = order.into_iter().map(|i| collected[i]).collect();
        let mut pos_of = HashMap::with_capacity(records.len());
        for (pos, r) in records.iter().enumerate() {
            pos_of.insert(r.id, pos);
        }
        let merge_wall = merge_start.elapsed();

        let summarize_start = Instant::now();
        let (blocks, def_index, summary_workers) = build_summaries(&records, block_size, track_sp);
        let summarize_wall = summarize_start.elapsed();

        (
            GlobalTrace {
                records,
                pos_of,
                blocks,
                block_size,
                def_index,
                track_sp,
            },
            BuildMetrics {
                merge_wall,
                summarize_wall,
                summary_workers,
            },
        )
    }

    /// Appends `new_records` to the trace without disturbing the positions
    /// of existing records — the incremental path for a recording that is
    /// still streaming in.
    ///
    /// The suffix is appended in the given order, so the result equals a
    /// batch [`GlobalTrace::build_with`] of the full record list only when
    /// clustering is off (`cluster = false` keeps the raw interleaving,
    /// which appending preserves; the clustering merge may interleave new
    /// records among old positions). Block summaries are re-derived for
    /// the trailing partial block plus the new records, and the per-key
    /// definition index grows in place — both byte-identical to a batch
    /// build of the concatenation.
    pub fn extend(&mut self, new_records: Vec<TraceRecord>) {
        if new_records.is_empty() {
            return;
        }
        let old_n = self.records.len();
        for (i, r) in new_records.iter().enumerate() {
            let prev = self.pos_of.insert(r.id, old_n + i);
            debug_assert!(prev.is_none(), "appended record id already in the trace");
        }
        self.records.extend(new_records);

        // The batch build pushes (key, position) pairs in block order, and
        // blocks in position order — so per-key position lists grow exactly
        // as an in-order append does.
        for pos in old_n..self.records.len() {
            for (k, _) in self.records[pos].def_keys(self.track_sp) {
                self.def_index.entry(k).or_default().push(pos);
            }
        }

        // Re-summarize from the start of the trailing partial block (its
        // summary covers new records now); full blocks before it are
        // untouched.
        let resummarize_from = old_n - (old_n % self.block_size);
        self.blocks.truncate(resummarize_from / self.block_size);
        let mut start = resummarize_from;
        while start < self.records.len() {
            let end = (start + self.block_size).min(self.records.len());
            let mut defs = HashSet::new();
            for r in &self.records[start..end] {
                for (k, _) in r.def_keys(self.track_sp) {
                    defs.insert(k);
                }
            }
            self.blocks.push(BlockSummary { start, end, defs });
            start = end;
        }
    }

    /// Whether stack-pointer registers participate in dependence tracking.
    pub fn track_sp(&self) -> bool {
        self.track_sp
    }

    /// The records in global (clustered topological) order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// The LP block summaries, in position order.
    pub fn blocks(&self) -> &[BlockSummary] {
        &self.blocks
    }

    /// The block size the trace was segmented with (block of position `p`
    /// is `p / block_size`).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Ascending positions of every definition of `key` — the precomputed
    /// per-key summary the sparse traversal jumps through.
    pub fn def_positions(&self, key: &LocKey) -> &[usize] {
        self.def_index.get(key).map_or(&[], Vec::as_slice)
    }

    /// Position of a record id in the global order.
    pub fn position(&self, id: RecordId) -> Option<usize> {
        self.pos_of.get(&id).copied()
    }

    /// The record with the given id.
    pub fn record(&self, id: RecordId) -> Option<&TraceRecord> {
        self.position(id).map(|p| &self.records[p])
    }

    /// Finds the last record (by global position) satisfying `pred` — used
    /// to resolve slice criteria like "the last write to variable x".
    pub fn rfind(&self, mut pred: impl FnMut(&TraceRecord) -> bool) -> Option<&TraceRecord> {
        self.records.iter().rev().find(|r| pred(r))
    }
}

/// Builds the LP block summaries and the per-key definition index over
/// disjoint block ranges, in parallel for large traces.
///
/// Workers claim block indices from a shared atomic counter (work
/// stealing: a worker stalled on a summary-heavy block does not hold the
/// rest of the range hostage). Per-block results are merged in block-index
/// order, so the output is byte-for-byte independent of the worker count —
/// the serial path and every parallel schedule produce identical summaries
/// and indices.
#[allow(clippy::type_complexity)]
fn build_summaries(
    records: &[TraceRecord],
    block_size: usize,
    track_sp: bool,
) -> (Vec<BlockSummary>, HashMap<LocKey, Vec<usize>>, usize) {
    let n_blocks = records.len().div_ceil(block_size);
    let workers = if records.len() >= PAR_SUMMARY_THRESHOLD {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .clamp(1, n_blocks.clamp(1, MAX_SUMMARY_WORKERS))
    } else {
        1
    };
    build_summaries_with(records, block_size, track_sp, workers)
}

/// [`build_summaries`] with an explicit worker count (exposed to the
/// determinism tests).
#[allow(clippy::type_complexity)]
fn build_summaries_with(
    records: &[TraceRecord],
    block_size: usize,
    track_sp: bool,
    workers: usize,
) -> (Vec<BlockSummary>, HashMap<LocKey, Vec<usize>>, usize) {
    let n_blocks = records.len().div_ceil(block_size);

    let summarize_block = |b: usize| {
        let start = b * block_size;
        let end = (start + block_size).min(records.len());
        let mut defs = HashSet::new();
        let mut def_positions: Vec<(LocKey, usize)> = Vec::new();
        for (pos, r) in records[start..end].iter().enumerate() {
            for (k, _) in r.def_keys(track_sp) {
                defs.insert(k);
                def_positions.push((k, start + pos));
            }
        }
        (BlockSummary { start, end, defs }, def_positions)
    };

    let mut per_block: Vec<Option<(BlockSummary, Vec<(LocKey, usize)>)>> =
        (0..n_blocks).map(|_| None).collect();
    if workers <= 1 {
        for (b, slot) in per_block.iter_mut().enumerate() {
            *slot = Some(summarize_block(b));
        }
    } else {
        let next = AtomicUsize::new(0);
        let partials = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            if b >= n_blocks {
                                break;
                            }
                            mine.push((b, summarize_block(b)));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("summary worker panicked"))
                .collect::<Vec<_>>()
        });
        for (b, result) in partials {
            per_block[b] = Some(result);
        }
    }

    let mut blocks = Vec::with_capacity(n_blocks);
    let mut def_index: HashMap<LocKey, Vec<usize>> = HashMap::new();
    // Merging in block order keeps every per-key position list ascending.
    for slot in per_block {
        let (summary, defs_at) = slot.expect("every block summarized");
        blocks.push(summary);
        for (k, pos) in defs_at {
            def_index.entry(k).or_default().push(pos);
        }
    }
    (blocks, def_index, workers)
}

/// Computes the clustered topological order; returns indices into
/// `collected`.
fn cluster_merge(collected: &[TraceRecord], track_sp: bool) -> Vec<usize> {
    let n = collected.len();
    // Edges: successor lists + indegrees.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg: Vec<u32> = vec![0; n];
    let edge = |succ: &mut Vec<Vec<usize>>, indeg: &mut Vec<u32>, a: usize, b: usize| {
        succ[a].push(b);
        indeg[b] += 1;
    };

    // Program order.
    let mut last_of_thread: HashMap<Tid, usize> = HashMap::new();
    // Spawn order: child tid -> spawning record.
    let mut spawner: HashMap<Tid, usize> = HashMap::new();
    // Conflict order per address: (last writer, readers since last write).
    struct MemState {
        last_write: Option<usize>,
        reads_since: Vec<usize>,
    }
    let mut mem: HashMap<u64, MemState> = HashMap::new();

    for (i, r) in collected.iter().enumerate() {
        if let Some(&prev) = last_of_thread.get(&r.tid) {
            edge(&mut succ, &mut indeg, prev, i);
        } else if let Some(&sp) = spawner.get(&r.tid) {
            edge(&mut succ, &mut indeg, sp, i);
        }
        last_of_thread.insert(r.tid, i);
        if let Some((child, _)) = r.spawned {
            spawner.insert(child, i);
        }
        // Conflicting accesses to shared memory.
        for (k, _) in r.use_keys(track_sp) {
            if let LocKey::Mem(a) = k {
                let st = mem.entry(a).or_insert(MemState {
                    last_write: None,
                    reads_since: Vec::new(),
                });
                if let Some(w) = st.last_write {
                    if collected[w].tid != r.tid {
                        edge(&mut succ, &mut indeg, w, i);
                    }
                }
                st.reads_since.push(i);
            }
        }
        for (k, _) in r.def_keys(track_sp) {
            if let LocKey::Mem(a) = k {
                let st = mem.entry(a).or_insert(MemState {
                    last_write: None,
                    reads_since: Vec::new(),
                });
                // Write-after-read and write-after-write edges.
                for &rd in &st.reads_since {
                    if rd != i && collected[rd].tid != r.tid {
                        edge(&mut succ, &mut indeg, rd, i);
                    }
                }
                if let Some(w) = st.last_write {
                    if collected[w].tid != r.tid {
                        edge(&mut succ, &mut indeg, w, i);
                    }
                }
                st.last_write = Some(i);
                st.reads_since.clear();
            }
        }
    }

    // Kahn with thread-clustering: prefer the thread we are already on.
    let mut ready_by_thread: HashMap<Tid, Vec<usize>> = HashMap::new();
    let mut ready_threads: Vec<Tid> = Vec::new();
    for (i, r) in collected.iter().enumerate() {
        if indeg[i] == 0 {
            let q = ready_by_thread.entry(r.tid).or_default();
            if q.is_empty() {
                ready_threads.push(r.tid);
            }
            q.push(i);
        }
    }
    // Per-thread ready queues hold records in program order because each
    // thread's records form a chain; reverse to pop from the back cheaply.
    for q in ready_by_thread.values_mut() {
        q.reverse();
    }

    let mut order = Vec::with_capacity(n);
    let mut current: Option<Tid> = None;
    while order.len() < n {
        let tid = match current {
            Some(t) if ready_by_thread.get(&t).is_some_and(|q| !q.is_empty()) => t,
            _ => {
                // Switch to the lowest ready thread for determinism.
                let t = ready_threads
                    .iter()
                    .copied()
                    .filter(|t| ready_by_thread.get(t).is_some_and(|q| !q.is_empty()))
                    .min()
                    .expect("topological sort stalled: constraint cycle");
                current = Some(t);
                t
            }
        };
        let i = ready_by_thread
            .get_mut(&tid)
            .expect("selected thread has a queue")
            .pop()
            .expect("selected thread queue non-empty");
        order.push(i);
        for &s in &succ[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                let st = collected[s].tid;
                let q = ready_by_thread.entry(st).or_default();
                if q.is_empty() && !ready_threads.contains(&st) {
                    ready_threads.push(st);
                }
                // Queues are kept in descending id order (pop from the back
                // yields the earliest record). In practice a thread has at
                // most one ready record — program-order edges chain them —
                // but keep the insert correct regardless.
                let at = q
                    .iter()
                    .position(|&x| collected[x].id < collected[s].id)
                    .unwrap_or(q.len());
                q.insert(at, s);
            }
        }
    }
    order
}

/// Checks that `order` (indices into `collected`) respects program order,
/// spawn order, and conflicting-access order. Exposed for property tests.
pub fn is_valid_topological_order(collected: &[TraceRecord], order: &[usize]) -> bool {
    let mut pos = vec![0usize; collected.len()];
    for (p, &i) in order.iter().enumerate() {
        pos[i] = p;
    }
    // Program order per thread (ids ascend with time within a thread).
    let mut last: HashMap<Tid, usize> = HashMap::new();
    for (i, r) in collected.iter().enumerate() {
        if let Some(&prev) = last.get(&r.tid) {
            if pos[prev] >= pos[i] {
                return false;
            }
        }
        last.insert(r.tid, i);
    }
    // Conflict order: for every pair of records touching the same address
    // with at least one write, collection order must be preserved.
    let mut by_addr: HashMap<u64, Vec<(usize, bool)>> = HashMap::new();
    for (i, r) in collected.iter().enumerate() {
        for (k, _) in r.use_keys(true) {
            if let LocKey::Mem(a) = k {
                by_addr.entry(a).or_default().push((i, false));
            }
        }
        for (k, _) in r.def_keys(true) {
            if let LocKey::Mem(a) = k {
                by_addr.entry(a).or_default().push((i, true));
            }
        }
    }
    for accesses in by_addr.values() {
        for (x, &(i, wi)) in accesses.iter().enumerate() {
            for &(j, wj) in &accesses[x + 1..] {
                if (wi || wj) && i != j && pos[i] >= pos[j] {
                    return false;
                }
            }
        }
    }
    // Spawn order.
    let mut first_of: HashMap<Tid, usize> = HashMap::new();
    for (i, r) in collected.iter().enumerate() {
        first_of.entry(r.tid).or_insert(i);
    }
    for (i, r) in collected.iter().enumerate() {
        if let Some((child, _)) = r.spawned {
            if let Some(&f) = first_of.get(&child) {
                if pos[i] >= pos[f] {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{Instr, Loc, Reg};

    fn rec(id: RecordId, tid: Tid, uses: &[(Loc, i64)], defs: &[(Loc, i64)]) -> TraceRecord {
        TraceRecord {
            id,
            tid,
            pc: id as u32,
            instance: 1,
            instr: Instr::Nop,
            next_pc: id as u32 + 1,
            uses: uses.iter().copied().collect(),
            defs: defs.iter().copied().collect(),
            spawned: None,
            cd_parent: None,
            line: 0,
        }
    }

    #[test]
    fn single_thread_order_preserved() {
        let collected = vec![
            rec(0, 0, &[], &[(Loc::Reg(Reg(1)), 1)]),
            rec(1, 0, &[(Loc::Reg(Reg(1)), 1)], &[]),
        ];
        let gt = GlobalTrace::build(collected, 16, false);
        let ids: Vec<_> = gt.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn clustering_groups_independent_threads() {
        // Interleaved but independent records: clustering should group each
        // thread's records contiguously.
        let collected = vec![
            rec(0, 0, &[], &[(Loc::Reg(Reg(1)), 1)]),
            rec(1, 1, &[], &[(Loc::Reg(Reg(1)), 2)]),
            rec(2, 0, &[], &[(Loc::Reg(Reg(2)), 3)]),
            rec(3, 1, &[], &[(Loc::Reg(Reg(2)), 4)]),
        ];
        let gt = GlobalTrace::build(collected.clone(), 16, false);
        let ids: Vec<_> = gt.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 2, 1, 3], "thread 0 clustered, then thread 1");
        let order: Vec<usize> = ids.iter().map(|&id| id as usize).collect();
        assert!(is_valid_topological_order(&collected, &order));
    }

    #[test]
    fn conflicting_access_blocks_clustering() {
        // t0 writes M, t1 reads M, t0 then reads what t1 wrote: the merge
        // cannot fully cluster; order constraints must hold.
        let m = 0x1000;
        let k = 0x2000;
        let collected = vec![
            rec(0, 0, &[], &[(Loc::Mem(m), 1)]),
            rec(1, 1, &[(Loc::Mem(m), 1)], &[(Loc::Mem(k), 2)]),
            rec(2, 0, &[(Loc::Mem(k), 2)], &[]),
        ];
        let gt = GlobalTrace::build(collected.clone(), 16, false);
        let ids: Vec<_> = gt.records().iter().map(|r| r.id).collect();
        let order: Vec<usize> = ids.iter().map(|&id| id as usize).collect();
        assert!(is_valid_topological_order(&collected, &order));
        let p0 = gt.position(0).unwrap();
        let p1 = gt.position(1).unwrap();
        let p2 = gt.position(2).unwrap();
        assert!(p0 < p1 && p1 < p2);
    }

    #[test]
    fn block_summaries_cover_defs() {
        let collected = vec![
            rec(0, 0, &[], &[(Loc::Reg(Reg(1)), 1)]),
            rec(1, 0, &[], &[(Loc::Mem(0x1000), 2)]),
            rec(2, 0, &[], &[(Loc::Reg(Reg(2)), 3)]),
        ];
        let gt = GlobalTrace::build(collected, 2, false);
        assert_eq!(gt.blocks().len(), 2);
        assert!(gt.blocks()[0].defs.contains(&LocKey::Reg(0, Reg(1))));
        assert!(gt.blocks()[0].defs.contains(&LocKey::Mem(0x1000)));
        assert!(gt.blocks()[1].defs.contains(&LocKey::Reg(0, Reg(2))));
    }

    #[test]
    fn spawn_edge_enforced() {
        let mut spawn = rec(0, 0, &[], &[]);
        spawn.spawned = Some((1, 7));
        let collected = vec![spawn, rec(1, 1, &[(Loc::Reg(Reg(0)), 7)], &[])];
        let gt = GlobalTrace::build(collected.clone(), 16, false);
        let p_spawn = gt.position(0).unwrap();
        let p_child = gt.position(1).unwrap();
        assert!(p_spawn < p_child);
    }

    #[test]
    fn rfind_locates_last_matching() {
        let collected = vec![
            rec(0, 0, &[], &[(Loc::Mem(0x1000), 1)]),
            rec(1, 0, &[], &[(Loc::Mem(0x1000), 2)]),
        ];
        let gt = GlobalTrace::build(collected, 16, false);
        let r = gt
            .rfind(|r| r.def_keys(false).any(|(k, _)| k == LocKey::Mem(0x1000)))
            .unwrap();
        assert_eq!(r.id, 1);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        let _ = GlobalTrace::build(Vec::new(), 0, false);
    }

    #[test]
    fn def_index_lists_positions_ascending() {
        let collected = vec![
            rec(0, 0, &[], &[(Loc::Mem(0x1000), 1)]),
            rec(1, 0, &[], &[(Loc::Reg(Reg(1)), 2)]),
            rec(2, 0, &[], &[(Loc::Mem(0x1000), 3)]),
            rec(3, 0, &[], &[(Loc::Mem(0x1000), 4)]),
        ];
        let gt = GlobalTrace::build(collected, 2, false);
        assert_eq!(gt.def_positions(&LocKey::Mem(0x1000)), &[0, 2, 3]);
        assert_eq!(gt.def_positions(&LocKey::Reg(0, Reg(1))), &[1]);
        assert_eq!(gt.def_positions(&LocKey::Mem(0x9999)), &[] as &[usize]);
        assert_eq!(gt.block_size(), 2);
    }

    #[test]
    fn parallel_summaries_match_serial() {
        // Big single-thread trace; defs rotate over a few keys so blocks
        // and the index have real content.
        let collected: Vec<TraceRecord> = (0..5000)
            .map(|i| {
                let def = match i % 3 {
                    0 => (Loc::Reg(Reg((i % 7) as u8 + 1)), i as i64),
                    1 => (Loc::Mem(0x1000 + (i % 11) as u64 * 8), i as i64),
                    _ => (Loc::Reg(Reg(9)), i as i64),
                };
                rec(i as RecordId, 0, &[], &[def])
            })
            .collect();
        let (serial_blocks, serial_index, _) = build_summaries_with(&collected, 64, false, 1);
        let (par_blocks, par_index, _) = build_summaries_with(&collected, 64, false, 4);
        assert_eq!(serial_blocks.len(), par_blocks.len());
        for (a, b) in serial_blocks.iter().zip(&par_blocks) {
            assert_eq!((a.start, a.end), (b.start, b.end));
            assert_eq!(a.defs, b.defs);
        }
        assert_eq!(serial_index, par_index);
        for positions in par_index.values() {
            assert!(positions.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn extend_matches_batch_build_at_every_prefix() {
        let collected: Vec<TraceRecord> = (0..300usize)
            .map(|i| {
                let def = match i % 3 {
                    0 => (Loc::Reg(Reg((i % 7) as u8 + 1)), i as i64),
                    1 => (Loc::Mem(0x1000 + (i % 11) as u64 * 8), i as i64),
                    _ => (Loc::Reg(Reg(9)), i as i64),
                };
                let uses = if i % 5 == 0 {
                    vec![(Loc::Mem(0x1000 + (i % 11) as u64 * 8), i as i64)]
                } else {
                    vec![]
                };
                let mut r = rec(i as RecordId, 0, &uses, &[def]);
                if i % 13 == 0 {
                    r.cd_parent = i.checked_sub(4).map(|p| p as RecordId);
                }
                r
            })
            .collect();
        // Awkward split points: straddle block boundaries (block size 32).
        for split in [0usize, 1, 31, 32, 33, 150, 299, 300] {
            let mut grown = GlobalTrace::build_with(collected[..split].to_vec(), 32, false, false);
            grown.extend(collected[split..].to_vec());
            let batch = GlobalTrace::build_with(collected.clone(), 32, false, false);
            assert_eq!(grown.records(), batch.records());
            assert_eq!(grown.blocks(), batch.blocks());
            for r in &collected {
                assert_eq!(grown.position(r.id), batch.position(r.id));
                for (k, _) in r.def_keys(false) {
                    assert_eq!(grown.def_positions(&k), batch.def_positions(&k));
                }
            }
        }
    }

    #[test]
    fn build_metrics_report_stage_walls() {
        let collected = vec![rec(0, 0, &[], &[(Loc::Reg(Reg(1)), 1)])];
        let (gt, metrics) = GlobalTrace::build_instrumented(collected, 16, false, true);
        assert_eq!(gt.records().len(), 1);
        assert_eq!(metrics.summary_workers, 1, "tiny trace summarized serially");
    }
}
