//! The slicing session: replay-integrated trace collection (Fig. 4(a)/10).
//!
//! "When the execution of a program is replayed using the region pinball,
//! our slicing pintool collects dynamic information that enables the
//! computation of dynamic slices." A [`SliceSession`] owns that dynamic
//! information — the global trace, the refined CFG, and the verified
//! save/restore pairs — and serves any number of slice requests against it
//! ("once collected, the dynamic information can be used for multiple
//! slicing sessions as PinPlay guarantees repeatability", §7).

use std::collections::HashMap;
use std::sync::Arc;

use minivm::{Program, ToolControl};
use pinplay::{relog, ExclusionRegion, Pinball, RelogStats, Replayer};
use repro_cfg::Cfg;

use crate::control::ControlTracker;
use crate::global::{GlobalTrace, DEFAULT_BLOCK_SIZE};
use crate::pairs::{PairCandidates, PairDetector};
use crate::regions::{exclusion_regions, ExclusionStats};
use crate::slice::{compute_slice, Criterion, Slice, SliceOptions};
use crate::trace::{LocKey, RecordId, TraceRecord};

/// Configuration for trace collection and slicing.
#[derive(Debug, Clone, Copy)]
pub struct SlicerOptions {
    /// Refine the CFG with observed indirect-jump targets (§5.1). Turning
    /// this off reproduces the paper's imprecise baseline.
    pub refine_indirect: bool,
    /// Run a target-discovery replay pass before the collection pass so
    /// post-dominators reflect every target the region exercises.
    pub two_pass_discovery: bool,
    /// The `MaxSave` parameter of save/restore detection (§5.2; paper uses
    /// 10 in Fig. 13).
    pub max_save: usize,
    /// Track stack-pointer dataflow (off by default; sp chains carry no
    /// program-value information and bloat every slice).
    pub track_sp: bool,
    /// LP block size (records per block).
    pub block_size: usize,
    /// Cluster per-thread runs in the global trace for LP locality (§3);
    /// off = keep the raw replay interleaving (an ablation knob).
    pub cluster: bool,
    /// Apply save/restore bypass pruning when slicing (§5.2).
    pub prune_save_restore: bool,
}

impl Default for SlicerOptions {
    fn default() -> SlicerOptions {
        SlicerOptions {
            refine_indirect: true,
            two_pass_discovery: true,
            max_save: 10,
            track_sp: false,
            block_size: DEFAULT_BLOCK_SIZE,
            cluster: true,
            prune_save_restore: true,
        }
    }
}

/// Collected dynamic information for one region pinball, ready to serve
/// slice requests.
#[derive(Debug)]
pub struct SliceSession {
    program: Arc<Program>,
    trace: GlobalTrace,
    pairs: HashMap<RecordId, RecordId>,
    cfg: Cfg,
    options: SlicerOptions,
}

impl SliceSession {
    /// Replays `pinball` and collects everything slicing needs: per-thread
    /// def/use traces merged into the global trace, dynamic control
    /// dependences over the (refined) CFG, and verified save/restore pairs.
    pub fn collect(
        program: Arc<Program>,
        pinball: &Pinball,
        options: SlicerOptions,
    ) -> SliceSession {
        let mut cfg = Cfg::build(&program);

        // Pass 1 (optional): discover indirect-jump targets so the refined
        // CFG — and therefore the post-dominators the control-dependence
        // detection uses — reflects the whole region.
        if options.refine_indirect && options.two_pass_discovery {
            let mut replayer = Replayer::new(Arc::clone(&program), pinball);
            let mut observe = |ev: &minivm::InsEvent| {
                if ev.instr.is_indirect_jump() {
                    cfg.observe_indirect(ev.pc, ev.next_pc);
                }
                ToolControl::Continue
            };
            replayer.run(&mut observe);
        }

        // Pass 2: full collection.
        let mut tracker = ControlTracker::new(cfg, options.refine_indirect);
        let mut detector = PairDetector::new(PairCandidates::find(&program, options.max_save));
        let mut records: Vec<TraceRecord> = Vec::new();
        {
            let program2 = Arc::clone(&program);
            let mut collect = |ev: &minivm::InsEvent| {
                let id: RecordId = ev.seq;
                let cd = tracker.on_event(ev, id);
                detector.on_event(ev, id);
                records.push(TraceRecord {
                    id,
                    tid: ev.tid,
                    pc: ev.pc,
                    instance: ev.instance,
                    instr: ev.instr,
                    next_pc: ev.next_pc,
                    uses: ev.uses,
                    defs: ev.defs,
                    spawned: ev.spawned,
                    cd_parent: cd,
                    line: program2.line_of(ev.pc),
                });
                ToolControl::Continue
            };
            let mut replayer = Replayer::new(Arc::clone(&program), pinball);
            replayer.run(&mut collect);
        }

        let trace = GlobalTrace::build_with(
            records,
            options.block_size,
            options.track_sp,
            options.cluster,
        );
        SliceSession {
            program,
            trace,
            pairs: detector.finish(),
            cfg: tracker.into_cfg(),
            options,
        }
    }

    /// The program under analysis.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The collected global trace.
    pub fn trace(&self) -> &GlobalTrace {
        &self.trace
    }

    /// The refined CFG (after target discovery).
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Verified save/restore pairs (restore record → save record).
    pub fn pairs(&self) -> &HashMap<RecordId, RecordId> {
        &self.pairs
    }

    /// Computes a backward dynamic slice.
    pub fn slice(&self, criterion: Criterion) -> Slice {
        let opts = SliceOptions {
            prune_save_restore: self.options.prune_save_restore,
            ..SliceOptions::new()
        };
        compute_slice(&self.trace, criterion, &self.pairs, opts)
    }

    /// Computes a slice with explicit per-call options (for the pruning
    /// ablation of Fig. 13).
    pub fn slice_with(&self, criterion: Criterion, opts: SliceOptions) -> Slice {
        compute_slice(&self.trace, criterion, &self.pairs, opts)
    }

    /// The last *retired* record of the trace — for buggy pinballs this is
    /// the trapping instruction, i.e. the failure point. (Record ids are
    /// the retire order; the clustered global order may legally place other
    /// threads' independent records after the trap, so position is the
    /// wrong key here.)
    pub fn failure_record(&self) -> Option<&TraceRecord> {
        self.trace.records().iter().max_by_key(|r| r.id)
    }

    /// The last execution of `pc` (any thread), the common interactive
    /// criterion "slice at this statement".
    pub fn last_at_pc(&self, pc: minivm::Pc) -> Option<&TraceRecord> {
        self.trace.rfind(|r| r.pc == pc)
    }

    /// Convenience: slice for the value of `key` at the last execution of
    /// `pc`.
    pub fn slice_value_at(&self, pc: minivm::Pc, key: LocKey) -> Option<Slice> {
        let id = self.last_at_pc(pc)?.id;
        Some(self.slice(Criterion::Value { id, key }))
    }

    /// Computes the exclusion regions for everything outside `slice`
    /// (paper Fig. 6(a)).
    pub fn exclusion_regions(&self, slice: &Slice) -> (Vec<ExclusionRegion>, ExclusionStats) {
        exclusion_regions(&self.trace, slice)
    }

    /// Full Fig. 4(b) pipeline: build exclusion regions from `slice` and
    /// relog `region_pinball` into the slice pinball.
    pub fn make_slice_pinball(
        &self,
        region_pinball: &Pinball,
        slice: &Slice,
    ) -> (Pinball, RelogStats, ExclusionStats) {
        let (regions, estats) = self.exclusion_regions(slice);
        let (pb, rstats) = relog(Arc::clone(&self.program), region_pinball, &regions);
        (pb, rstats, estats)
    }
}

#[cfg(test)]
mod failure_record_tests {
    use super::*;
    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    /// The failure record must be the trapping instruction even when the
    /// clustered global order places another thread's independent records
    /// after it.
    #[test]
    fn failure_record_is_last_retired_not_last_clustered() {
        let program = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r1, 0
                    spawn r2, busy, r1
                    movi r3, 0
                    assert r3        ; traps while `busy` is still running
                .endfunc
                .func busy
                    movi r4, 50
                spin:
                    subi r4, r4, 1   ; independent of main: clusterable
                    bgti r4, 0, spin
                    halt
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(2),
            &mut LiveEnv::new(0),
            10_000,
            "failure-order",
        )
        .unwrap();
        let session =
            SliceSession::collect(Arc::clone(&program), &rec.pinball, SlicerOptions::default());
        let failure = session.failure_record().expect("trace non-empty");
        assert!(
            matches!(failure.instr, minivm::Instr::Assert { .. }),
            "failure record must be the assert, got {}",
            failure.describe()
        );
        // And the busy thread genuinely has records after the trap in
        // clustered order (otherwise this test proves nothing).
        let trap_pos = session.trace().position(failure.id).unwrap();
        let after = session.trace().records().len() - 1 - trap_pos;
        assert!(after > 0, "clustering placed {after} records after the trap");
    }
}
