//! The slicing session: replay-integrated trace collection (Fig. 4(a)/10).
//!
//! "When the execution of a program is replayed using the region pinball,
//! our slicing pintool collects dynamic information that enables the
//! computation of dynamic slices." A [`SliceSession`] owns that dynamic
//! information — the global trace, the refined CFG, and the verified
//! save/restore pairs — and serves any number of slice requests against it
//! ("once collected, the dynamic information can be used for multiple
//! slicing sessions as PinPlay guarantees repeatability", §7).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use minivm::{Program, Snapshot, ToolControl};
use pinplay::{
    relog, ContainerView, EventLog, ExclusionRegion, Pinball, RecordedExit, RelogStats, Replayer,
};
use repro_cfg::Cfg;

use crate::control::ControlTracker;
use crate::global::{GlobalTrace, DEFAULT_BLOCK_SIZE};
use crate::metrics::{SliceMetrics, StageMetrics};
use crate::pairs::{PairCandidates, PairDetector};
use crate::regions::{exclusion_regions, ExclusionStats};
use crate::slice::{compute_slice, Criterion, Slice, SliceOptions, DEFAULT_PARALLEL_THRESHOLD};
use crate::trace::{LocKey, RecordId, TraceRecord};

/// Upper bound on concurrent collector threads (one per thread shard).
const MAX_COLLECTORS: usize = 8;

/// Bounded per-collector channel depth: enough to absorb scheduling jitter
/// without letting the replay run arbitrarily far ahead of the collectors.
const COLLECTOR_CHANNEL_CAP: usize = 1024;

/// Configuration for trace collection and slicing.
#[derive(Debug, Clone, Copy)]
pub struct SlicerOptions {
    /// Refine the CFG with observed indirect-jump targets (§5.1). Turning
    /// this off reproduces the paper's imprecise baseline.
    pub refine_indirect: bool,
    /// Run a target-discovery replay pass before the collection pass so
    /// post-dominators reflect every target the region exercises.
    pub two_pass_discovery: bool,
    /// The `MaxSave` parameter of save/restore detection (§5.2; paper uses
    /// 10 in Fig. 13).
    pub max_save: usize,
    /// Track stack-pointer dataflow (off by default; sp chains carry no
    /// program-value information and bloat every slice).
    pub track_sp: bool,
    /// LP block size (records per block).
    pub block_size: usize,
    /// Cluster per-thread runs in the global trace for LP locality (§3);
    /// off = keep the raw replay interleaving (an ablation knob).
    pub cluster: bool,
    /// Apply save/restore bypass pruning when slicing (§5.2).
    pub prune_save_restore: bool,
    /// Use the parallel pipeline (concurrent per-thread collectors fed by a
    /// streaming replay, parallel block summaries, sparse traversal) for
    /// workloads at least `parallel_threshold` instructions long. The
    /// parallel and serial pipelines produce identical slices.
    pub parallel: bool,
    /// Minimum logged-instruction count before `parallel` engages, and the
    /// minimum trace length before slice queries take the sparse path.
    pub parallel_threshold: usize,
}

impl Default for SlicerOptions {
    fn default() -> SlicerOptions {
        SlicerOptions {
            refine_indirect: true,
            two_pass_discovery: true,
            max_save: 10,
            track_sp: false,
            block_size: DEFAULT_BLOCK_SIZE,
            cluster: true,
            prune_save_restore: true,
            parallel: true,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }
}

/// Collected dynamic information for one region pinball, ready to serve
/// slice requests.
#[derive(Debug)]
pub struct SliceSession {
    program: Arc<Program>,
    trace: GlobalTrace,
    pairs: HashMap<RecordId, RecordId>,
    cfg: Cfg,
    options: SlicerOptions,
    metrics: SliceMetrics,
}

/// Where a collection pass reads its replay from: the event log (shared,
/// never copied per pass — every replayer built from one source clones an
/// `Arc`, not the events) plus the small entry state.
struct ReplaySource<'a> {
    snapshot: &'a Snapshot,
    syscalls: &'a [Vec<i64>],
    exit: RecordedExit,
    log: EventLog,
    threads: usize,
    instructions: u64,
}

impl ReplaySource<'_> {
    fn replayer(&self, program: &Arc<Program>) -> Replayer {
        Replayer::from_parts(
            Arc::clone(program),
            self.snapshot,
            self.syscalls,
            self.exit,
            self.log.clone(),
        )
    }
}

/// Builds one trace record from a replay event (shared by the serial and
/// parallel collectors).
fn make_record(
    program: &Program,
    tracker: &mut ControlTracker,
    detector: &mut PairDetector,
    ev: &minivm::InsEvent,
) -> TraceRecord {
    let id: RecordId = ev.seq;
    let cd = tracker.on_event(ev, id);
    detector.on_event(ev, id);
    TraceRecord {
        id,
        tid: ev.tid,
        pc: ev.pc,
        instance: ev.instance,
        instr: ev.instr,
        next_pc: ev.next_pc,
        uses: ev.uses,
        defs: ev.defs,
        spawned: ev.spawned,
        cd_parent: cd,
        line: program.line_of(ev.pc),
    }
}

impl SliceSession {
    /// Replays `pinball` and collects everything slicing needs: per-thread
    /// def/use traces merged into the global trace, dynamic control
    /// dependences over the (refined) CFG, and verified save/restore pairs.
    ///
    /// For multi-threaded workloads at least
    /// [`SlicerOptions::parallel_threshold`] instructions long (with
    /// `parallel` on), collection runs concurrently: the replay streams
    /// events into per-thread-shard channels drained by collector threads,
    /// each tracking control dependences and save/restore pairs for its
    /// threads independently. The shard results are merged back into
    /// global retire order, which reproduces the serial collection
    /// byte for byte — control dependence and pair state is per-thread, and
    /// after two-pass discovery the shared CFG is read-only, so sharding by
    /// thread cannot change any result. (With online-only refinement —
    /// `refine_indirect` without `two_pass_discovery` — indirect-target
    /// observations *do* cross threads, so collection stays serial.)
    pub fn collect(
        program: Arc<Program>,
        pinball: &Pinball,
        options: SlicerOptions,
    ) -> SliceSession {
        // One Arc over the events, shared by every replay pass and every
        // parallel shard — the single copy here is the only one made.
        let source = ReplaySource {
            snapshot: &pinball.snapshot,
            syscalls: &pinball.syscalls,
            exit: pinball.exit,
            log: EventLog::Owned(Arc::new(pinball.events.clone())),
            threads: pinball_thread_count(pinball),
            instructions: pinball.logged_instructions(),
        };
        SliceSession::collect_source(program, source, options)
    }

    /// As [`SliceSession::collect`], but reading the replay log straight
    /// out of a zero-copy [`ContainerView`] — no owned event vector is
    /// ever materialized; every pass and shard borrows the one columnar
    /// log the v4 load produced.
    pub fn collect_view(
        program: Arc<Program>,
        view: &ContainerView,
        options: SlicerOptions,
    ) -> SliceSession {
        let source = ReplaySource {
            snapshot: &view.snapshot,
            syscalls: &view.syscalls,
            exit: view.exit,
            log: EventLog::Columns(Arc::clone(&view.events)),
            threads: view.events.thread_count(),
            instructions: view.instructions(),
        };
        SliceSession::collect_source(program, source, options)
    }

    fn collect_source(
        program: Arc<Program>,
        source: ReplaySource<'_>,
        options: SlicerOptions,
    ) -> SliceSession {
        let collect_start = Instant::now();
        let mut cfg = Cfg::build(&program);

        // Pass 1 (optional): discover indirect-jump targets so the refined
        // CFG — and therefore the post-dominators the control-dependence
        // detection uses — reflects the whole region.
        if options.refine_indirect && options.two_pass_discovery {
            let mut replayer = source.replayer(&program);
            let mut observe = |ev: &minivm::InsEvent| {
                if ev.instr.is_indirect_jump() {
                    cfg.observe_indirect(ev.pc, ev.next_pc);
                }
                ToolControl::Continue
            };
            replayer.run(&mut observe);
        }

        // Pass 2: full collection, sharded by thread when safe and worth it.
        let shards = source.threads.min(MAX_COLLECTORS);
        let parallel_safe = !options.refine_indirect || options.two_pass_discovery;
        let use_parallel = options.parallel
            && parallel_safe
            && shards > 1
            && source.instructions >= options.parallel_threshold as u64;

        let (records, pairs, cfg) = if use_parallel {
            let (records, pairs) = collect_parallel(&program, &source, &cfg, &options, shards);
            (records, pairs, cfg)
        } else {
            let mut tracker = ControlTracker::new(cfg, options.refine_indirect);
            let mut detector = PairDetector::new(PairCandidates::find(&program, options.max_save));
            let mut records: Vec<TraceRecord> = Vec::new();
            {
                let program2 = Arc::clone(&program);
                let mut collect = |ev: &minivm::InsEvent| {
                    records.push(make_record(&program2, &mut tracker, &mut detector, ev));
                    ToolControl::Continue
                };
                let mut replayer = source.replayer(&program);
                replayer.run(&mut collect);
            }
            (records, detector.finish(), tracker.into_cfg())
        };
        let collect_wall = collect_start.elapsed();
        let n_records = records.len() as u64;

        let (trace, build) = GlobalTrace::build_instrumented(
            records,
            options.block_size,
            options.track_sp,
            options.cluster,
        );
        let metrics = SliceMetrics {
            collect: StageMetrics::new(collect_wall, n_records),
            merge: StageMetrics::new(build.merge_wall, n_records),
            summarize: StageMetrics::new(build.summarize_wall, n_records),
            collector_threads: if use_parallel { shards } else { 1 },
            summary_workers: build.summary_workers,
            ..SliceMetrics::default()
        };
        SliceSession {
            program,
            trace,
            pairs,
            cfg,
            options,
            metrics,
        }
    }

    /// The program under analysis.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Pipeline metrics for this session's collect/merge/summarize stages
    /// (the traverse stage is per-query; fold a query's
    /// [`SliceStats`](crate::SliceStats) in with
    /// [`SliceMetrics::with_traversal`]).
    pub fn metrics(&self) -> &SliceMetrics {
        &self.metrics
    }

    /// The collected global trace.
    pub fn trace(&self) -> &GlobalTrace {
        &self.trace
    }

    /// The refined CFG (after target discovery).
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Verified save/restore pairs (restore record → save record).
    pub fn pairs(&self) -> &HashMap<RecordId, RecordId> {
        &self.pairs
    }

    /// Computes a backward dynamic slice.
    pub fn slice(&self, criterion: Criterion) -> Slice {
        let opts = SliceOptions {
            prune_save_restore: self.options.prune_save_restore,
            parallel_threshold: if self.options.parallel {
                self.options.parallel_threshold
            } else {
                usize::MAX
            },
            ..SliceOptions::new()
        };
        compute_slice(&self.trace, criterion, &self.pairs, opts)
    }

    /// Computes a slice with explicit per-call options (for the pruning
    /// ablation of Fig. 13).
    pub fn slice_with(&self, criterion: Criterion, opts: SliceOptions) -> Slice {
        compute_slice(&self.trace, criterion, &self.pairs, opts)
    }

    /// The last *retired* record of the trace — for buggy pinballs this is
    /// the trapping instruction, i.e. the failure point. (Record ids are
    /// the retire order; the clustered global order may legally place other
    /// threads' independent records after the trap, so position is the
    /// wrong key here.)
    pub fn failure_record(&self) -> Option<&TraceRecord> {
        self.trace.records().iter().max_by_key(|r| r.id)
    }

    /// The last execution of `pc` (any thread), the common interactive
    /// criterion "slice at this statement".
    pub fn last_at_pc(&self, pc: minivm::Pc) -> Option<&TraceRecord> {
        self.trace.rfind(|r| r.pc == pc)
    }

    /// Convenience: slice for the value of `key` at the last execution of
    /// `pc`.
    pub fn slice_value_at(&self, pc: minivm::Pc, key: LocKey) -> Option<Slice> {
        let id = self.last_at_pc(pc)?.id;
        Some(self.slice(Criterion::Value { id, key }))
    }

    /// Computes the exclusion regions for everything outside `slice`
    /// (paper Fig. 6(a)).
    pub fn exclusion_regions(&self, slice: &Slice) -> (Vec<ExclusionRegion>, ExclusionStats) {
        exclusion_regions(&self.trace, slice)
    }

    /// Full Fig. 4(b) pipeline: build exclusion regions from `slice` and
    /// relog `region_pinball` into the slice pinball.
    pub fn make_slice_pinball(
        &self,
        region_pinball: &Pinball,
        slice: &Slice,
    ) -> (Pinball, RelogStats, ExclusionStats) {
        let (regions, estats) = self.exclusion_regions(slice);
        let (pb, rstats) = relog(Arc::clone(&self.program), region_pinball, &regions);
        (pb, rstats, estats)
    }
}

/// Number of threads the pinball's schedule log mentions.
fn pinball_thread_count(pinball: &Pinball) -> usize {
    pinball
        .events
        .iter()
        .filter_map(|e| match e {
            pinplay::ReplayEvent::Run { tid, .. } | pinplay::ReplayEvent::Skip { tid, .. } => {
                Some(*tid as usize)
            }
            pinplay::ReplayEvent::Inject { .. } => None,
        })
        .max()
        .map_or(1, |t| t + 1)
}

/// The concurrent collection pass: the replay (on the calling thread)
/// streams events into `shards` bounded channels, sharded by thread id;
/// each collector thread drains one channel, running its own
/// [`ControlTracker`] and [`PairDetector`] over the threads it owns.
///
/// Determinism: record ids are the global retire sequence, so sorting the
/// concatenated shard outputs by id restores exactly the order the serial
/// collector would have produced. Pair maps are disjoint across shards
/// (pair state is per-thread), so their union is order-independent.
fn collect_parallel(
    program: &Arc<Program>,
    source: &ReplaySource<'_>,
    cfg: &Cfg,
    options: &SlicerOptions,
    shards: usize,
) -> (Vec<TraceRecord>, HashMap<RecordId, RecordId>) {
    let candidates = PairCandidates::find(program, options.max_save);
    let (mut records, pairs) = std::thread::scope(|s| {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = crossbeam::channel::bounded::<minivm::InsEvent>(COLLECTOR_CHANNEL_CAP);
            senders.push(tx);
            let cfg = cfg.clone();
            let candidates = candidates.clone();
            let program = Arc::clone(program);
            let refine = options.refine_indirect;
            handles.push(s.spawn(move || {
                let mut tracker = ControlTracker::new(cfg, refine);
                let mut detector = PairDetector::new(candidates);
                let mut records: Vec<TraceRecord> = Vec::new();
                for ev in rx.iter() {
                    records.push(make_record(&program, &mut tracker, &mut detector, &ev));
                }
                (records, detector.finish())
            }));
        }
        let mut replayer = source.replayer(program);
        replayer.run_streaming(&senders);
        drop(senders); // disconnect: collectors drain and finish

        let mut records: Vec<TraceRecord> = Vec::new();
        let mut pairs: HashMap<RecordId, RecordId> = HashMap::new();
        for h in handles {
            let (shard_records, shard_pairs) = h.join().expect("collector thread panicked");
            records.extend(shard_records);
            pairs.extend(shard_pairs);
        }
        (records, pairs)
    });
    // Restore global retire order (= the serial collection order).
    records.sort_unstable_by_key(|r| r.id);
    (records, pairs)
}

#[cfg(test)]
mod parallel_collection_tests {
    use super::*;
    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    const MT_PROG: &str = r"
        .data
        acc: .word 0
        .text
        .func main
            movi r1, 1
            spawn r2, worker, r1
            movi r1, 2
            spawn r3, worker, r1
            movi r1, 3
            spawn r4, worker, r1
            join r2
            join r3
            join r4
            la r5, acc
            load r6, r5, 0
            print r6
            halt
        .endfunc
        .func worker
            la r1, acc
            movi r3, 20
        spin:
            xadd r2, r1, r0
            subi r3, r3, 1
            bgti r3, 0, spin
            halt
        .endfunc
        ";

    fn record_mt() -> (Arc<Program>, Pinball) {
        let program = Arc::new(assemble(MT_PROG).unwrap());
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(5),
            &mut LiveEnv::new(7),
            100_000,
            "mt-collect",
        )
        .unwrap();
        (program, rec.pinball)
    }

    /// The parallel collection pipeline must reproduce the serial
    /// collection byte for byte: records (including control parents),
    /// pairs, and therefore every slice.
    #[test]
    fn parallel_collection_matches_serial() {
        let (program, pinball) = record_mt();
        let serial = SliceSession::collect(
            Arc::clone(&program),
            &pinball,
            SlicerOptions {
                parallel: false,
                ..SlicerOptions::default()
            },
        );
        let parallel = SliceSession::collect(
            Arc::clone(&program),
            &pinball,
            SlicerOptions {
                parallel: true,
                parallel_threshold: 0,
                ..SlicerOptions::default()
            },
        );
        assert!(
            parallel.metrics().collector_threads > 1,
            "parallel pipeline engaged: {} collectors",
            parallel.metrics().collector_threads
        );
        assert_eq!(serial.metrics().collector_threads, 1);

        let sr = serial.trace().records();
        let pr = parallel.trace().records();
        assert_eq!(sr.len(), pr.len());
        for (a, b) in sr.iter().zip(pr) {
            assert_eq!(a, b, "record {} differs between pipelines", a.id);
        }
        assert_eq!(serial.pairs(), parallel.pairs());

        let fail = serial.failure_record().unwrap().id;
        let s_slice = serial.slice(Criterion::Record { id: fail });
        let p_slice = parallel.slice(Criterion::Record { id: fail });
        assert_eq!(s_slice.records, p_slice.records);
        assert_eq!(s_slice.data_edges, p_slice.data_edges);
        assert_eq!(s_slice.control_edges, p_slice.control_edges);
    }

    /// Collecting straight from a zero-copy v4 [`ContainerView`] must
    /// reproduce the owned-pinball collection exactly — every trace
    /// record, every pair, and every slice — in both the serial and the
    /// parallel pipelines.
    #[test]
    fn view_collection_matches_pinball_collection() {
        let (program, pinball) = record_mt();
        let container = pinplay::PinballContainer::new(pinball.clone());
        let bytes = container.to_bytes().unwrap();
        let view = ContainerView::from_bytes(&bytes).unwrap();

        for parallel in [false, true] {
            let opts = SlicerOptions {
                parallel,
                parallel_threshold: 0,
                ..SlicerOptions::default()
            };
            let owned = SliceSession::collect(Arc::clone(&program), &pinball, opts);
            let viewed = SliceSession::collect_view(Arc::clone(&program), &view, opts);
            assert_eq!(
                owned.metrics().collector_threads,
                viewed.metrics().collector_threads,
                "both pipelines shard the same way (parallel={parallel})"
            );
            assert_eq!(owned.trace().records(), viewed.trace().records());
            assert_eq!(owned.pairs(), viewed.pairs());

            let fail = owned.failure_record().unwrap().id;
            let a = owned.slice(Criterion::Record { id: fail });
            let b = viewed.slice(Criterion::Record { id: fail });
            assert_eq!(a.records, b.records);
            assert_eq!(a.data_edges, b.data_edges);
            assert_eq!(a.control_edges, b.control_edges);
        }
    }

    /// Online-only CFG refinement (no discovery pass) is the one
    /// configuration where sharding would diverge; collection must stay
    /// serial there.
    #[test]
    fn online_refinement_forces_serial_collection() {
        let (program, pinball) = record_mt();
        let session = SliceSession::collect(
            Arc::clone(&program),
            &pinball,
            SlicerOptions {
                parallel: true,
                parallel_threshold: 0,
                two_pass_discovery: false,
                ..SlicerOptions::default()
            },
        );
        assert_eq!(session.metrics().collector_threads, 1);
    }

    /// Pipeline metrics cover every stage after collection.
    #[test]
    fn session_metrics_are_populated() {
        let (program, pinball) = record_mt();
        let session = SliceSession::collect(
            Arc::clone(&program),
            &pinball,
            SlicerOptions {
                parallel: true,
                parallel_threshold: 0,
                ..SlicerOptions::default()
            },
        );
        let m = session.metrics();
        assert_eq!(m.collect.records, session.trace().records().len() as u64);
        assert_eq!(m.merge.records, m.collect.records);
        assert!(m.summary_workers >= 1);
        let fail = session.failure_record().unwrap().id;
        let slice = session.slice(Criterion::Record { id: fail });
        let folded = m.with_traversal(&slice.stats, std::time::Duration::from_micros(1));
        assert_eq!(folded.traverse.records, slice.stats.records_scanned);
    }
}

#[cfg(test)]
mod failure_record_tests {
    use super::*;
    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    /// The failure record must be the trapping instruction even when the
    /// clustered global order places another thread's independent records
    /// after it.
    #[test]
    fn failure_record_is_last_retired_not_last_clustered() {
        let program = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r1, 0
                    spawn r2, busy, r1
                    movi r3, 0
                    assert r3        ; traps while `busy` is still running
                .endfunc
                .func busy
                    movi r4, 50
                spin:
                    subi r4, r4, 1   ; independent of main: clusterable
                    bgti r4, 0, spin
                    halt
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(2),
            &mut LiveEnv::new(0),
            10_000,
            "failure-order",
        )
        .unwrap();
        let session =
            SliceSession::collect(Arc::clone(&program), &rec.pinball, SlicerOptions::default());
        let failure = session.failure_record().expect("trace non-empty");
        assert!(
            matches!(failure.instr, minivm::Instr::Assert { .. }),
            "failure record must be the assert, got {}",
            failure.describe()
        );
        // And the busy thread genuinely has records after the trap in
        // clustered order (otherwise this test proves nothing).
        let trap_pos = session.trace().position(failure.id).unwrap();
        let after = session.trace().records().len() - 1 - trap_pos;
        assert!(
            after > 0,
            "clustering placed {after} records after the trap"
        );
    }
}
