//! Backward dynamic slicing over the global trace (paper §3, step iii).
//!
//! "A backward traversal of the global trace is carried out to recover the
//! dynamic dependences that form the dynamic slice. We adopted the Limited
//! Preprocessing (LP) algorithm proposed by Zhang et al. to speed up the
//! traversal of the trace. This algorithm divides the trace into blocks and
//! by maintaining summar\[ies\] of downward exposed values, it allows skipping
//! of irrelevant blocks."
//!
//! The traversal keeps a *live set*: locations whose reaching definition is
//! still being sought, each with the records waiting on it (so the
//! dependence graph gets per-user edges). Scanning backward, a record that
//! defines a live location is added to the slice, its own uses become live,
//! and its dynamic control parent becomes *needed*. A block is skipped
//! outright when its definition summary intersects neither the live set nor
//! any needed/deferred position (the LP skip).
//!
//! Save/restore pruning (paper §5.2) hooks in here: when the reaching
//! definition of a live register turns out to be the *restore* half of a
//! verified save/restore pair, the traversal does not include it; instead
//! the query is *deferred* until the scan passes the matching save, where
//! the register's pre-save definition resolves it — bypassing the chain
//! `use → restore → save → def` to `use → def` and keeping the pair's
//! control context out of the slice.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use minivm::{Pc, Tid};

use crate::global::GlobalTrace;
use crate::trace::{LocKey, RecordId};

/// What to slice on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Criterion {
    /// Slice for everything the given record used — "the computation of the
    /// value at this statement instance" (the usual choice: the failure
    /// point).
    Record {
        /// The statement instance to slice at.
        id: RecordId,
    },
    /// Slice for one specific location's value as observed at the record
    /// (the GUI's "slice for variable v at statement s").
    Value {
        /// The statement instance to slice at.
        id: RecordId,
        /// The location whose value is being explained.
        key: LocKey,
    },
}

impl Criterion {
    /// The anchoring record id.
    pub fn record_id(&self) -> RecordId {
        match *self {
            Criterion::Record { id } | Criterion::Value { id, .. } => id,
        }
    }
}

/// A data-dependence edge in the slice: `user` read `key`, whose reaching
/// definition is `def`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataEdge {
    /// The reading record.
    pub user: RecordId,
    /// The defining record.
    pub def: RecordId,
    /// The location the value flowed through.
    pub key: LocKey,
}

/// Statistics from one slicing traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceStats {
    /// Blocks visited (scanned record by record).
    pub blocks_visited: usize,
    /// Blocks skipped by the LP summary check.
    pub blocks_skipped: usize,
    /// Records examined.
    pub records_scanned: u64,
    /// Save/restore bypasses applied.
    pub bypasses: u64,
}

/// A computed dynamic slice: the included statement instances plus the
/// dynamic dependence graph connecting them.
#[derive(Debug, Clone)]
pub struct Slice {
    /// The criterion the slice was computed for.
    pub criterion: Criterion,
    /// Included record ids.
    pub records: HashSet<RecordId>,
    /// Data-dependence edges (user → def).
    pub data_edges: Vec<DataEdge>,
    /// Control-dependence edges (dependent → branch).
    pub control_edges: Vec<(RecordId, RecordId)>,
    /// Traversal statistics.
    pub stats: SliceStats,
}

impl Slice {
    /// Number of statement instances in the slice.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the slice is empty (it never is: the criterion is included).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether the slice contains the dynamic instance `(tid, pc, instance)`.
    pub fn contains_instance(&self, trace: &GlobalTrace, tid: Tid, pc: Pc, instance: u64) -> bool {
        self.records.iter().any(|&id| {
            trace
                .record(id)
                .is_some_and(|r| r.tid == tid && r.pc == pc && r.instance == instance)
        })
    }

    /// The distinct program points (pcs) in the slice, sorted ascending —
    /// what the GUI highlights in yellow. Returned as a deduplicated `Vec`
    /// so the CLI render path can binary-search or iterate without
    /// rebuilding a hash set per frame.
    pub fn pcs(&self, trace: &GlobalTrace) -> Vec<Pc> {
        let mut pcs: Vec<Pc> = self
            .records
            .iter()
            .filter_map(|&id| trace.record(id).map(|r| r.pc))
            .collect();
        pcs.sort_unstable();
        pcs.dedup();
        pcs
    }

    /// The distinct source lines in the slice, sorted ascending.
    pub fn lines(&self, trace: &GlobalTrace) -> Vec<u32> {
        let mut lines: Vec<u32> = self
            .records
            .iter()
            .filter_map(|&id| trace.record(id).map(|r| r.line))
            .filter(|&l| l != 0)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }
}

/// Traces at least this long use the sparse (index-guided) traversal by
/// default; shorter traces stay on the LP block scan, whose sequential
/// sweep is cheaper than heap bookkeeping at small scale.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4096;

/// Options controlling a slicing traversal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceOptions {
    /// Apply save/restore bypass pruning (§5.2). On by default.
    pub prune_save_restore: bool,
    /// Locations whose dependences are *not* chased — the KDbg dialog's
    /// "Prune Vars" field (paper Fig. 9). A use of a pruned location never
    /// enters the live set, cutting that variable's entire backward cone
    /// out of the slice. Useful for suppressing well-understood inputs
    /// (configuration reads, loop counters) while investigating.
    pub prune_keys: std::collections::HashSet<LocKey>,
    /// Minimum trace length for [`compute_slice`] to take the sparse
    /// index-guided path (built by the parallel pipeline's summarize
    /// stage); below it the serial LP block scan runs. `usize::MAX` forces
    /// LP, `0` forces sparse. Both paths produce identical slices.
    pub parallel_threshold: usize,
}

impl Default for SliceOptions {
    fn default() -> SliceOptions {
        SliceOptions::new()
    }
}

impl SliceOptions {
    /// The default traversal: §5.2 pruning on, no user-pruned variables.
    pub fn new() -> SliceOptions {
        SliceOptions {
            prune_save_restore: true,
            prune_keys: std::collections::HashSet::new(),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// Adds a user-pruned location (builder-style).
    pub fn prune_key(mut self, key: LocKey) -> SliceOptions {
        self.prune_keys.insert(key);
        self
    }

    /// A stable fingerprint of the options, for content-addressed caching
    /// of slice results: two option sets fingerprint equally exactly when
    /// they request the same traversal *output*.
    ///
    /// The prune set is hashed in sorted order (its in-memory iteration
    /// order is not deterministic), and `parallel_threshold` is folded to a
    /// single bit — the sparse and LP paths produce identical slices, so
    /// only "pruning on/off and which keys" can change the result. The
    /// exception is the stats the traversal reports, which do depend on the
    /// path taken; callers caching stats alongside the slice should treat
    /// them as advisory.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(&[self.prune_save_restore as u8]);
        let mut keys: Vec<LocKey> = self.prune_keys.iter().copied().collect();
        keys.sort_unstable();
        for key in keys {
            match key {
                LocKey::Reg(tid, reg) => {
                    mix(b"r");
                    mix(&tid.to_le_bytes());
                    mix(&reg.0.to_le_bytes());
                }
                LocKey::Mem(addr) => {
                    mix(b"m");
                    mix(&addr.to_le_bytes());
                }
            }
        }
        h
    }
}

/// One entry of the live set: records waiting for the reaching definition
/// of a key.
type LiveSet = HashMap<LocKey, Vec<RecordId>>;

/// Computes the backward dynamic slice of `criterion` over `trace`.
///
/// `pairs` maps verified restore record ids to their save record ids (from
/// [`PairDetector`](crate::pairs::PairDetector)); pass an empty map to
/// disable pruning regardless of `options`.
///
/// Dispatches between two traversals producing identical slices: the
/// sparse index-guided scan ([`compute_slice_sparse`]) for traces of at
/// least `options.parallel_threshold` records, and the serial LP block
/// scan ([`compute_slice_lp`]) below it.
///
/// # Panics
///
/// Panics if the criterion's record id is not present in the trace.
pub fn compute_slice(
    trace: &GlobalTrace,
    criterion: Criterion,
    pairs: &HashMap<RecordId, RecordId>,
    options: SliceOptions,
) -> Slice {
    if trace.records().len() >= options.parallel_threshold {
        compute_slice_sparse(trace, criterion, pairs, options)
    } else {
        compute_slice_lp(trace, criterion, pairs, options)
    }
}

/// The serial Limited Preprocessing traversal: a backward block-by-block
/// scan skipping blocks whose definition summary intersects neither the
/// live set nor any needed/deferred position.
///
/// # Panics
///
/// Panics if the criterion's record id is not present in the trace.
pub fn compute_slice_lp(
    trace: &GlobalTrace,
    criterion: Criterion,
    pairs: &HashMap<RecordId, RecordId>,
    options: SliceOptions,
) -> Slice {
    let crit_pos = trace
        .position(criterion.record_id())
        .expect("criterion record not in trace");
    let records = trace.records();
    let track_sp = trace.track_sp();

    let mut slice = Slice {
        criterion,
        records: HashSet::new(),
        data_edges: Vec::new(),
        control_edges: Vec::new(),
        stats: SliceStats::default(),
    };

    let mut live: LiveSet = HashMap::new();
    // Record ids needed for control dependences, keyed by their position.
    let mut needed: HashMap<usize, RecordId> = HashMap::new();
    // Deferred queries from save/restore bypasses: activate once the scan
    // position is <= the key position (the save's position).
    let mut deferred: Vec<(usize, LocKey, Vec<RecordId>)> = Vec::new();

    // Seed with the criterion record.
    {
        let crit = &records[crit_pos];
        slice.records.insert(crit.id);
        match criterion {
            Criterion::Record { .. } => {
                for (k, _) in crit.use_keys(track_sp) {
                    if !options.prune_keys.contains(&k) {
                        live.entry(k).or_default().push(crit.id);
                    }
                }
            }
            Criterion::Value { key, .. } => {
                // An explicit criterion key overrides user pruning.
                live.entry(key).or_default().push(crit.id);
            }
        }
        if let Some(cd) = crit.cd_parent {
            if let Some(p) = trace.position(cd) {
                if p <= crit_pos {
                    needed.insert(p, cd);
                }
            }
        }
    }

    // Helper: when a record enters the slice, its (non-pruned) uses go live
    // and its control parent becomes needed. (The argument count mirrors
    // the traversal state; bundling it into a struct would only rename the
    // problem.)
    #[allow(clippy::too_many_arguments)]
    fn admit(
        r: &crate::trace::TraceRecord,
        pos: usize,
        track_sp: bool,
        options: &SliceOptions,
        trace: &GlobalTrace,
        slice: &mut Slice,
        live: &mut LiveSet,
        needed: &mut HashMap<usize, RecordId>,
    ) {
        if !slice.records.insert(r.id) {
            return; // already admitted: uses/cd already propagated
        }
        for (k, _) in r.use_keys(track_sp) {
            if !options.prune_keys.contains(&k) {
                live.entry(k).or_default().push(r.id);
            }
        }
        if let Some(cd) = r.cd_parent {
            if let Some(p) = trace.position(cd) {
                if p < pos && !slice.records.contains(&cd) {
                    needed.insert(p, cd);
                }
            }
        }
    }

    // Blocks from the criterion's block downward.
    let blocks = trace.blocks();
    let mut bi = blocks.partition_point(|b| b.start <= crit_pos);
    while bi > 0 {
        bi -= 1;
        let block = &blocks[bi];
        let lo = block.start;
        let hi = block.end.min(crit_pos + 1);

        // LP skip check: nothing live defined here, nothing needed here,
        // nothing deferred activates here.
        let has_live = live.keys().any(|k| block.defs.contains(k));
        let has_needed = needed.keys().any(|&p| p >= lo && p < hi);
        let has_deferred = deferred.iter().any(|&(p, _, _)| p >= lo);
        if !has_live && !has_needed && !has_deferred {
            slice.stats.blocks_skipped += 1;
            continue;
        }
        slice.stats.blocks_visited += 1;

        let mut pos = hi;
        while pos > lo {
            pos -= 1;
            // Activate deferred queries whose save position we have reached.
            if !deferred.is_empty() {
                let mut i = 0;
                while i < deferred.len() {
                    if deferred[i].0 >= pos {
                        let (_, key, users) = deferred.swap_remove(i);
                        live.entry(key).or_default().extend(users);
                    } else {
                        i += 1;
                    }
                }
            }
            let r = &records[pos];
            if pos == crit_pos {
                continue; // seeded above
            }
            slice.stats.records_scanned += 1;

            let mut admit_r = false;

            // Control dependence resolution.
            if let Some(&id) = needed.get(&pos) {
                debug_assert_eq!(id, r.id);
                needed.remove(&pos);
                admit_r = true;
            }

            // Data dependence resolution.
            for (k, _) in r.def_keys(track_sp) {
                let Some(users) = live.remove(&k) else {
                    continue;
                };
                let is_bypassable = options.prune_save_restore
                    && matches!(k, LocKey::Reg(..))
                    && pairs.contains_key(&r.id);
                if is_bypassable {
                    // `r` is the restore of a verified pair: bypass it. The
                    // query resumes below the matching save.
                    let save_id = pairs[&r.id];
                    if let Some(save_pos) = trace.position(save_id) {
                        if save_pos < pos {
                            slice.stats.bypasses += 1;
                            // Re-activate strictly below the save: the save
                            // itself defines only the stack slot.
                            deferred.push((save_pos.saturating_sub(1), k, users));
                            continue;
                        }
                    }
                    // Malformed pair (save not found/after restore): fall
                    // through to normal resolution.
                    for &u in &users {
                        slice.data_edges.push(DataEdge {
                            user: u,
                            def: r.id,
                            key: k,
                        });
                    }
                    admit_r = true;
                } else {
                    for &u in &users {
                        slice.data_edges.push(DataEdge {
                            user: u,
                            def: r.id,
                            key: k,
                        });
                    }
                    admit_r = true;
                }
            }

            if admit_r {
                admit(
                    r,
                    pos,
                    track_sp,
                    &options,
                    trace,
                    &mut slice,
                    &mut live,
                    &mut needed,
                );
                // Control edges are emitted when the parent is admitted via
                // `needed`; emit them from the dependent side instead so
                // duplicates are natural to avoid.
            }
        }
    }

    // Emit control edges for every included record whose parent is included.
    for &id in &slice.records {
        if let Some(r) = trace.record(id) {
            if let Some(cd) = r.cd_parent {
                if slice.records.contains(&cd) {
                    slice.control_edges.push((id, cd));
                }
            }
        }
    }
    slice.control_edges.sort_unstable();
    slice
        .data_edges
        .sort_unstable_by_key(|e| (e.user, e.def, e.key));

    slice
}

/// The sparse index-guided traversal: instead of scanning blocks, jump
/// directly between the positions that can matter, using the per-key
/// definition index precomputed by the parallel summarize stage
/// ([`GlobalTrace::def_positions`]).
///
/// A max-heap holds candidate positions — for every live key, the greatest
/// definition position below the scan front (its reaching definition);
/// every needed control parent; every deferred save/restore resumption.
/// Popping the heap walks the same positions the LP scan would *resolve
/// at*, in the same descending order, so the live/needed/deferred state
/// evolves identically and the slice is identical — but the work is
/// O(slice-related positions · log), independent of the trace length the
/// LP scan must sweep block summaries over. This is what makes repeated
/// slice queries cheap after one parallel pipeline build, and it is the
/// "parallel path" the differential tests pin against the serial LP
/// result.
///
/// Stale heap candidates (a key resolved earlier than a queued candidate)
/// pop as no-ops, exactly like the LP scan passing an irrelevant record.
///
/// # Panics
///
/// Panics if the criterion's record id is not present in the trace.
pub fn compute_slice_sparse(
    trace: &GlobalTrace,
    criterion: Criterion,
    pairs: &HashMap<RecordId, RecordId>,
    options: SliceOptions,
) -> Slice {
    let crit_pos = trace
        .position(criterion.record_id())
        .expect("criterion record not in trace");
    let records = trace.records();
    let track_sp = trace.track_sp();
    let block_size = trace.block_size();

    let mut slice = Slice {
        criterion,
        records: HashSet::new(),
        data_edges: Vec::new(),
        control_edges: Vec::new(),
        stats: SliceStats::default(),
    };

    let mut live: LiveSet = HashMap::new();
    let mut needed: HashMap<usize, RecordId> = HashMap::new();
    let mut deferred: Vec<(usize, LocKey, Vec<RecordId>)> = Vec::new();
    let mut heap: std::collections::BinaryHeap<usize> = std::collections::BinaryHeap::new();
    let mut visited_blocks: HashSet<usize> = HashSet::new();

    // Queue the reaching-definition candidate for `key`: its greatest
    // definition position strictly below `limit`.
    let push_def_candidate =
        |heap: &mut std::collections::BinaryHeap<usize>, key: &LocKey, limit: usize| {
            let defs = trace.def_positions(key);
            let i = defs.partition_point(|&p| p < limit);
            if i > 0 {
                heap.push(defs[i - 1]);
            }
        };

    // Seed with the criterion record.
    {
        let crit = &records[crit_pos];
        slice.records.insert(crit.id);
        match criterion {
            Criterion::Record { .. } => {
                for (k, _) in crit.use_keys(track_sp) {
                    if !options.prune_keys.contains(&k) {
                        live.entry(k).or_default().push(crit.id);
                        push_def_candidate(&mut heap, &k, crit_pos);
                    }
                }
            }
            Criterion::Value { key, .. } => {
                // An explicit criterion key overrides user pruning.
                live.entry(key).or_default().push(crit.id);
                push_def_candidate(&mut heap, &key, crit_pos);
            }
        }
        if let Some(cd) = crit.cd_parent {
            if let Some(p) = trace.position(cd) {
                if p <= crit_pos {
                    needed.insert(p, cd);
                    if p < crit_pos {
                        heap.push(p);
                    }
                }
            }
        }
    }

    // The scan front: every processed position is strictly below the
    // previous one, mirroring the LP scan's descending sweep.
    let mut front = crit_pos;
    while let Some(pos) = heap.pop() {
        if pos >= front {
            continue; // duplicate or stale candidate
        }
        front = pos;

        // Activate deferred queries whose save position we have reached
        // (before examining the record, exactly as the LP scan does).
        if !deferred.is_empty() {
            let mut i = 0;
            while i < deferred.len() {
                if deferred[i].0 >= pos {
                    let (_, key, users) = deferred.swap_remove(i);
                    live.entry(key).or_default().extend(users);
                } else {
                    i += 1;
                }
            }
        }

        let r = &records[pos];
        slice.stats.records_scanned += 1;
        visited_blocks.insert(pos / block_size);

        let mut admit_r = false;

        // Control dependence resolution.
        if let Some(&id) = needed.get(&pos) {
            debug_assert_eq!(id, r.id);
            needed.remove(&pos);
            admit_r = true;
        }

        // Data dependence resolution.
        for (k, _) in r.def_keys(track_sp) {
            let Some(users) = live.remove(&k) else {
                continue;
            };
            let is_bypassable = options.prune_save_restore
                && matches!(k, LocKey::Reg(..))
                && pairs.contains_key(&r.id);
            if is_bypassable {
                let save_id = pairs[&r.id];
                if let Some(save_pos) = trace.position(save_id) {
                    if save_pos < pos {
                        slice.stats.bypasses += 1;
                        let resume = save_pos.saturating_sub(1);
                        deferred.push((resume, k, users));
                        // The resumed query's reaching definition doubles as
                        // the activation point for the deferred entry.
                        push_def_candidate(&mut heap, &k, resume + 1);
                        continue;
                    }
                }
                // Malformed pair: fall through to normal resolution.
            }
            for &u in &users {
                slice.data_edges.push(DataEdge {
                    user: u,
                    def: r.id,
                    key: k,
                });
            }
            admit_r = true;
        }

        if admit_r && slice.records.insert(r.id) {
            for (k, _) in r.use_keys(track_sp) {
                if options.prune_keys.contains(&k) {
                    continue;
                }
                live.entry(k).or_default().push(r.id);
                push_def_candidate(&mut heap, &k, pos);
            }
            if let Some(cd) = r.cd_parent {
                if let Some(p) = trace.position(cd) {
                    if p < pos && !slice.records.contains(&cd) {
                        needed.insert(p, cd);
                        heap.push(p);
                    }
                }
            }
        }
    }

    // Block accounting mirrors the LP stats: every block at or below the
    // criterion's block that was never touched counts as skipped.
    slice.stats.blocks_visited = visited_blocks.len();
    slice.stats.blocks_skipped = (crit_pos / block_size + 1) - visited_blocks.len();

    for &id in &slice.records {
        if let Some(r) = trace.record(id) {
            if let Some(cd) = r.cd_parent {
                if slice.records.contains(&cd) {
                    slice.control_edges.push((id, cd));
                }
            }
        }
    }
    slice.control_edges.sort_unstable();
    slice
        .data_edges
        .sort_unstable_by_key(|e| (e.user, e.def, e.key));
    slice
}

/// Computes the slice with a naive full backward scan — an independent
/// implementation with no block skipping, used as the oracle in property
/// tests (LP ≡ naive) and by the ablation benchmark.
pub fn compute_slice_naive(
    trace: &GlobalTrace,
    criterion: Criterion,
    pairs: &HashMap<RecordId, RecordId>,
    options: SliceOptions,
) -> Slice {
    let crit_pos = trace
        .position(criterion.record_id())
        .expect("criterion record not in trace");
    let records = trace.records();
    let track_sp = trace.track_sp();

    let mut slice = Slice {
        criterion,
        records: HashSet::new(),
        data_edges: Vec::new(),
        control_edges: Vec::new(),
        stats: SliceStats::default(),
    };
    let mut live: LiveSet = HashMap::new();
    let mut needed: HashMap<usize, RecordId> = HashMap::new();
    // (activation position, key, users)
    let mut deferred: Vec<(usize, LocKey, Vec<RecordId>)> = Vec::new();

    let crit = &records[crit_pos];
    slice.records.insert(crit.id);
    match criterion {
        Criterion::Record { .. } => {
            for (k, _) in crit.use_keys(track_sp) {
                if !options.prune_keys.contains(&k) {
                    live.entry(k).or_default().push(crit.id);
                }
            }
        }
        Criterion::Value { key, .. } => {
            live.entry(key).or_default().push(crit.id);
        }
    }
    if let Some(cd) = crit.cd_parent {
        if let Some(p) = trace.position(cd) {
            if p <= crit_pos {
                needed.insert(p, cd);
            }
        }
    }

    let mut pos = crit_pos;
    while pos > 0 {
        pos -= 1;
        let mut i = 0;
        while i < deferred.len() {
            if deferred[i].0 >= pos {
                let (_, key, users) = deferred.swap_remove(i);
                live.entry(key).or_default().extend(users);
            } else {
                i += 1;
            }
        }
        let r = &records[pos];
        slice.stats.records_scanned += 1;
        let mut admit_r = false;
        if needed.remove(&pos).is_some() {
            admit_r = true;
        }
        for (k, _) in r.def_keys(track_sp) {
            let Some(users) = live.remove(&k) else {
                continue;
            };
            let bypass = options.prune_save_restore
                && matches!(k, LocKey::Reg(..))
                && pairs.contains_key(&r.id)
                && trace.position(pairs[&r.id]).is_some_and(|sp| sp < pos);
            if bypass {
                slice.stats.bypasses += 1;
                let save_pos = trace.position(pairs[&r.id]).expect("checked above");
                deferred.push((save_pos.saturating_sub(1), k, users));
            } else {
                for &u in &users {
                    slice.data_edges.push(DataEdge {
                        user: u,
                        def: r.id,
                        key: k,
                    });
                }
                admit_r = true;
            }
        }
        if admit_r && slice.records.insert(r.id) {
            for (k, _) in r.use_keys(track_sp) {
                if options.prune_keys.contains(&k) {
                    continue;
                }
                live.entry(k).or_default().push(r.id);
            }
            if let Some(cd) = r.cd_parent {
                if let Some(p) = trace.position(cd) {
                    if p < pos && !slice.records.contains(&cd) {
                        needed.insert(p, cd);
                    }
                }
            }
        }
    }

    for &id in &slice.records {
        if let Some(r) = trace.record(id) {
            if let Some(cd) = r.cd_parent {
                if slice.records.contains(&cd) {
                    slice.control_edges.push((id, cd));
                }
            }
        }
    }
    slice.control_edges.sort_unstable();
    slice
        .data_edges
        .sort_unstable_by_key(|e| (e.user, e.def, e.key));
    slice
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, Executor, LiveEnv, Reg};
    use repro_cfg::Cfg;

    use crate::control::ControlTracker;
    use crate::global::GlobalTrace;
    use crate::pairs::{PairCandidates, PairDetector};
    use crate::trace::TraceRecord;

    /// Collects a single-threaded trace with control deps and pairs.
    fn collect(src: &str) -> (GlobalTrace, HashMap<RecordId, RecordId>) {
        let p = Arc::new(assemble(src).unwrap());
        // Discovery pass.
        let mut cfg = Cfg::build(&p);
        {
            let mut exec = Executor::new(Arc::clone(&p));
            let mut env = LiveEnv::new(0);
            while !exec.all_halted() {
                let (ev, trapped) = match exec.step(0, &mut env) {
                    Ok((ev, _)) => (ev, false),
                    Err((ev, _)) => (ev, true),
                };
                if ev.instr.is_indirect_jump() {
                    cfg.observe_indirect(ev.pc, ev.next_pc);
                }
                if trapped {
                    break;
                }
            }
        }
        let mut tracker = ControlTracker::new(cfg, true);
        let mut det = PairDetector::new(PairCandidates::find(&p, 10));
        let mut exec = Executor::new(Arc::clone(&p));
        let mut env = LiveEnv::new(0);
        let mut recs: Vec<TraceRecord> = Vec::new();
        loop {
            if exec.all_halted() {
                break;
            }
            let step = exec.step(0, &mut env);
            let ev = match &step {
                Ok((ev, _)) => *ev,
                Err((ev, _)) => *ev,
            };
            let id = recs.len() as RecordId;
            let cd = tracker.on_event(&ev, id);
            det.on_event(&ev, id);
            recs.push(TraceRecord {
                id,
                tid: ev.tid,
                pc: ev.pc,
                instance: ev.instance,
                instr: ev.instr,
                next_pc: ev.next_pc,
                uses: ev.uses,
                defs: ev.defs,
                spawned: ev.spawned,
                cd_parent: cd,
                line: p.line_of(ev.pc),
            });
            if step.is_err() {
                break;
            }
        }
        (GlobalTrace::build(recs, 8, false), det.finish())
    }

    fn slice_at_last(
        trace: &GlobalTrace,
        pairs: &HashMap<RecordId, RecordId>,
        pc: Pc,
        options: SliceOptions,
    ) -> Slice {
        let crit = trace
            .rfind(|r| r.pc == pc)
            .expect("criterion pc executed")
            .id;
        compute_slice(trace, Criterion::Record { id: crit }, pairs, options)
    }

    #[test]
    fn straight_line_data_chain() {
        let (trace, pairs) = collect(
            r"
            .text
            .func main
                movi r1, 2      ; 0
                movi r9, 77     ; 1 (irrelevant)
                addi r2, r1, 3  ; 2
                add  r3, r2, r2 ; 3
                halt            ; 4
            .endfunc
            ",
        );
        let s = slice_at_last(&trace, &pairs, 3, SliceOptions::default());
        let pcs = s.pcs(&trace);
        assert!(pcs.contains(&0) && pcs.contains(&2) && pcs.contains(&3));
        assert!(!pcs.contains(&1), "irrelevant def excluded");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn control_dependence_pulls_in_branch_and_its_operands() {
        let (trace, pairs) = collect(
            r"
            .text
            .func main
                movi r0, 1       ; 0 (feeds branch)
                movi r9, 5       ; 1 (irrelevant)
                beqi r0, 0, els  ; 2
                movi r1, 10      ; 3 (CD on 2)
                jmp join         ; 4
            els:
                movi r1, 20      ; 5
            join:
                add r2, r1, r1   ; 6
                halt             ; 7
            .endfunc
            ",
        );
        let s = slice_at_last(&trace, &pairs, 6, SliceOptions::default());
        let pcs = s.pcs(&trace);
        assert!(pcs.contains(&3), "taken arm included via data dep");
        assert!(pcs.contains(&2), "branch included via control dep");
        assert!(pcs.contains(&0), "branch operand included transitively");
        assert!(!pcs.contains(&1));
        assert!(
            !pcs.contains(&5),
            "untaken arm never executed... or unrelated"
        );
    }

    #[test]
    fn loop_carried_dependences() {
        let (trace, pairs) = collect(
            r"
            .text
            .func main
                movi r0, 3      ; 0
                movi r1, 0      ; 1
            top:
                add  r1, r1, r0 ; 2
                subi r0, r0, 1  ; 3
                bgti r0, 0, top ; 4
                halt            ; 5
            .endfunc
            ",
        );
        let s = slice_at_last(&trace, &pairs, 2, SliceOptions::default());
        // The last accumulation depends on every earlier iteration.
        let instances: Vec<u64> = s
            .records
            .iter()
            .filter_map(|&id| trace.record(id))
            .filter(|r| r.pc == 2)
            .map(|r| r.instance)
            .collect();
        assert_eq!(instances.len(), 3, "all three accumulations in slice");
    }

    /// The paper's Fig. 8/§5.2 scenario, in miniature: a slice through a
    /// callee's save/restore drags in the call's guard unless pruned.
    #[test]
    fn save_restore_bypass_shrinks_slice() {
        let src = r"
            .text
            .func q
                push r1        ; 0: save r1
                movi r1, 5     ; 1: clobber (the callee's real work)
                addi r5, r1, 1 ; 2
                pop r1         ; 3: restore r1
                ret            ; 4
            .endfunc
            .func main
                read r0          ; 5: c = input  (like fgetc)
                movi r1, 7       ; 6: e = 7 (lives in r1 across the call)
                beqi r0, 0, skip ; 7: if (c) ...
                call q           ; 8:   q()   (CD on 7)
            skip:
                add r2, r1, r1   ; 9: w = e + e   <- slice criterion
                halt             ; 10
            .endfunc
            ";
        let (trace, pairs) = collect(src);
        assert_eq!(pairs.len(), 1, "the q() save/restore pair verifies");

        let pruned = slice_at_last(&trace, &pairs, 9, SliceOptions::default());
        let unpruned = slice_at_last(
            &trace,
            &pairs,
            9,
            SliceOptions {
                prune_save_restore: false,
                ..SliceOptions::new()
            },
        );

        let ppcs = pruned.pcs(&trace);
        let upcs = unpruned.pcs(&trace);
        // Unpruned: r1's reaching def at pc 9 is the restore (pop) at 3,
        // whose stack-slot chain reaches the save at 0, which is control
        // dependent (via the callee frame) on the branch at 7, dragging in
        // the input read at 5.
        assert!(upcs.contains(&3), "unpruned slice includes the restore");
        assert!(upcs.contains(&7), "unpruned slice includes the guard");
        assert!(upcs.contains(&5), "unpruned slice includes the input read");
        // Pruned: bypass restores the direct dependence on movi r1, 7.
        assert!(ppcs.contains(&6), "true def included");
        assert!(!ppcs.contains(&3), "restore bypassed");
        assert!(!ppcs.contains(&0), "save not included");
        assert!(!ppcs.contains(&7), "spurious control context pruned");
        assert!(!ppcs.contains(&5));
        assert!(pruned.len() < unpruned.len());
        assert_eq!(pruned.stats.bypasses, 1);
    }

    #[test]
    fn value_criterion_narrows_to_one_operand() {
        let (trace, pairs) = collect(
            r"
            .text
            .func main
                movi r1, 2      ; 0
                movi r2, 3      ; 1
                add  r3, r1, r2 ; 2
                halt            ; 3
            .endfunc
            ",
        );
        let crit = trace.rfind(|r| r.pc == 2).unwrap().id;
        let s = compute_slice(
            &trace,
            Criterion::Value {
                id: crit,
                key: LocKey::Reg(0, Reg(1)),
            },
            &pairs,
            SliceOptions::default(),
        );
        let pcs = s.pcs(&trace);
        assert!(pcs.contains(&0), "r1's def included");
        assert!(!pcs.contains(&1), "r2's def excluded for a value slice");
    }

    #[test]
    fn lp_skipping_matches_full_scan() {
        // A long irrelevant prefix: LP should skip its blocks, and the
        // slice must equal the naive result.
        let mut src = String::from("\n.text\n.func main\n");
        for _ in 0..200 {
            src.push_str("    movi r9, 1\n");
        }
        src.push_str("    movi r1, 2\n    addi r2, r1, 1\n    halt\n.endfunc\n");
        let (trace, pairs) = collect(&src);
        let crit = trace
            .rfind(|r| matches!(r.instr, minivm::Instr::BinI { .. }))
            .unwrap()
            .id;
        let s = compute_slice(
            &trace,
            Criterion::Record { id: crit },
            &pairs,
            SliceOptions::default(),
        );
        assert!(
            s.stats.blocks_skipped > 10,
            "long irrelevant prefix skipped: {:?}",
            s.stats
        );
        assert_eq!(s.len(), 2, "movi + addi only");
    }

    /// The sparse index-guided path must reproduce the LP result exactly —
    /// records, edges, and edge order — on every scenario above, including
    /// the save/restore bypass (whose deferral logic is the trickiest part
    /// to keep aligned).
    #[test]
    fn sparse_traversal_matches_lp_on_all_scenarios() {
        let scenarios: &[&str] = &[
            r"
            .text
            .func main
                movi r1, 2
                movi r9, 77
                addi r2, r1, 3
                add  r3, r2, r2
                halt
            .endfunc
            ",
            r"
            .text
            .func main
                movi r0, 1
                movi r9, 5
                beqi r0, 0, els
                movi r1, 10
                jmp join
            els:
                movi r1, 20
            join:
                add r2, r1, r1
                halt
            .endfunc
            ",
            r"
            .text
            .func main
                movi r0, 3
                movi r1, 0
            top:
                add  r1, r1, r0
                subi r0, r0, 1
                bgti r0, 0, top
                halt
            .endfunc
            ",
            r"
            .text
            .func q
                push r1
                movi r1, 5
                addi r5, r1, 1
                pop r1
                ret
            .endfunc
            .func main
                read r0
                movi r1, 7
                beqi r0, 0, skip
                call q
            skip:
                add r2, r1, r1
                halt
            .endfunc
            ",
        ];
        for (i, src) in scenarios.iter().enumerate() {
            let (trace, pairs) = collect(src);
            // Slice at every executed record, both criteria kinds where
            // applicable, with pruning on and off.
            for prune in [true, false] {
                let opts = SliceOptions {
                    prune_save_restore: prune,
                    ..SliceOptions::new()
                };
                let index = crate::index::DepIndex::build(&trace, &pairs, &opts);
                for r in trace.records() {
                    let crit = Criterion::Record { id: r.id };
                    let lp = compute_slice_lp(&trace, crit, &pairs, opts.clone());
                    let sparse = compute_slice_sparse(&trace, crit, &pairs, opts.clone());
                    let indexed = crate::index::compute_slice_indexed(&index, crit);
                    assert_eq!(lp.records, sparse.records, "scenario {i} records");
                    assert_eq!(lp.data_edges, sparse.data_edges, "scenario {i} data edges");
                    assert_eq!(
                        lp.control_edges, sparse.control_edges,
                        "scenario {i} control edges"
                    );
                    assert_eq!(
                        sparse.records, indexed.records,
                        "scenario {i} indexed records"
                    );
                    assert_eq!(
                        sparse.data_edges, indexed.data_edges,
                        "scenario {i} indexed data edges"
                    );
                    assert_eq!(
                        sparse.control_edges, indexed.control_edges,
                        "scenario {i} indexed control edges"
                    );
                }
            }
        }
    }

    /// The indexed path agrees with sparse on `Value` criteria and pruned
    /// keys too, and repeated queries against one index are deterministic
    /// (stats included).
    #[test]
    fn indexed_value_criteria_and_prune_keys_match_sparse() {
        let (trace, pairs) = collect(
            r"
            .text
            .func q
                push r1
                movi r1, 5
                addi r5, r1, 1
                pop r1
                ret
            .endfunc
            .func main
                read r0
                movi r1, 7
                beqi r0, 0, skip
                call q
            skip:
                add r2, r1, r1
                halt
            .endfunc
            ",
        );
        let prune_sets: Vec<SliceOptions> = vec![
            SliceOptions::new(),
            SliceOptions::new().prune_key(LocKey::Reg(0, minivm::Reg(1))),
            SliceOptions {
                prune_save_restore: false,
                ..SliceOptions::new()
            },
        ];
        for opts in prune_sets {
            let index = crate::index::DepIndex::build(&trace, &pairs, &opts);
            assert_eq!(index.options_fingerprint(), opts.fingerprint());
            for r in trace.records() {
                let mut criteria = vec![Criterion::Record { id: r.id }];
                for (k, _) in r.use_keys(false) {
                    criteria.push(Criterion::Value { id: r.id, key: k });
                }
                for crit in criteria {
                    let sparse = compute_slice_sparse(&trace, crit, &pairs, opts.clone());
                    let indexed = crate::index::compute_slice_indexed(&index, crit);
                    assert_eq!(sparse.records, indexed.records, "{crit:?} records");
                    assert_eq!(sparse.data_edges, indexed.data_edges, "{crit:?} data edges");
                    assert_eq!(
                        sparse.control_edges, indexed.control_edges,
                        "{crit:?} control edges"
                    );
                    let again = crate::index::compute_slice_indexed(&index, crit);
                    assert_eq!(indexed.records, again.records);
                    assert_eq!(indexed.stats, again.stats, "indexed stats deterministic");
                }
            }
        }
    }

    /// The sparse path skips the same irrelevant prefix LP does — and
    /// scans far fewer records, since it jumps between definitions instead
    /// of sweeping blocks.
    #[test]
    fn sparse_traversal_scans_only_relevant_records() {
        // The def and the criterion are separated by irrelevant padding and
        // each sits mid-block, so LP must scan whole blocks around them
        // while the sparse path jumps straight to the def.
        let mut src = String::from("\n.text\n.func main\n");
        for _ in 0..100 {
            src.push_str("    movi r9, 1\n");
        }
        src.push_str("    movi r1, 2\n");
        for _ in 0..100 {
            src.push_str("    movi r8, 1\n");
        }
        src.push_str("    addi r2, r1, 1\n    halt\n.endfunc\n");
        let (trace, pairs) = collect(&src);
        let crit = trace
            .rfind(|r| matches!(r.instr, minivm::Instr::BinI { .. }))
            .unwrap()
            .id;
        let lp = compute_slice_lp(
            &trace,
            Criterion::Record { id: crit },
            &pairs,
            SliceOptions::default(),
        );
        let sparse = compute_slice_sparse(
            &trace,
            Criterion::Record { id: crit },
            &pairs,
            SliceOptions::default(),
        );
        assert_eq!(lp.records, sparse.records);
        assert_eq!(lp.data_edges, sparse.data_edges);
        assert!(
            sparse.stats.records_scanned < lp.stats.records_scanned,
            "sparse {} vs lp {}",
            sparse.stats.records_scanned,
            lp.stats.records_scanned
        );
        assert!(sparse.stats.blocks_skipped > 10);
    }

    /// `compute_slice` dispatches on the threshold: forcing each side must
    /// give the same slice.
    #[test]
    fn dispatch_threshold_selects_equivalent_paths() {
        let (trace, pairs) = collect(
            r"
            .text
            .func main
                movi r1, 2
                addi r2, r1, 3
                add  r3, r2, r2
                halt
            .endfunc
            ",
        );
        let crit = trace.rfind(|r| r.pc == 2).unwrap().id;
        let forced_lp = compute_slice(
            &trace,
            Criterion::Record { id: crit },
            &pairs,
            SliceOptions {
                parallel_threshold: usize::MAX,
                ..SliceOptions::new()
            },
        );
        let forced_sparse = compute_slice(
            &trace,
            Criterion::Record { id: crit },
            &pairs,
            SliceOptions {
                parallel_threshold: 0,
                ..SliceOptions::new()
            },
        );
        assert_eq!(forced_lp.records, forced_sparse.records);
        assert_eq!(forced_lp.data_edges, forced_sparse.data_edges);
        assert_eq!(forced_lp.control_edges, forced_sparse.control_edges);
    }

    #[test]
    fn slice_includes_failure_point_of_trap() {
        let (trace, pairs) = collect(
            r"
            .text
            .func main
                movi r1, 1      ; 0
                subi r1, r1, 1  ; 1
                assert r1       ; 2 -> fails
                halt            ; 3
            .endfunc
            ",
        );
        let s = slice_at_last(&trace, &pairs, 2, SliceOptions::default());
        let pcs = s.pcs(&trace);
        assert_eq!(pcs, vec![0u32, 1, 2]);
    }
}

#[cfg(test)]
mod prune_vars_tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, LiveEnv, Reg, RoundRobin};
    use pinplay::record_whole_program;

    use crate::collect::{SliceSession, SlicerOptions};

    /// The Fig. 9 "Prune Vars" workflow: suppressing a well-understood
    /// input cuts its whole backward cone from the slice.
    #[test]
    fn pruned_variable_cone_is_cut() {
        let program = Arc::new(
            assemble(
                r"
                .data
                config: .word 0
                .text
                .func main
                    ; long, well-understood configuration chain
                    movi r1, 3      ; 0
                    addi r1, r1, 4  ; 1
                    mul  r1, r1, r1 ; 2
                    la r2, config   ; 3
                    store r1, r2, 0 ; 4
                    ; the computation under investigation
                    movi r3, 10     ; 5
                    load r4, r2, 0  ; 6  reads config
                    add r5, r3, r4  ; 7  <- criterion
                    halt            ; 8
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "prune-vars",
        )
        .unwrap();
        let session =
            SliceSession::collect(Arc::clone(&program), &rec.pinball, SlicerOptions::default());
        let crit = session.last_at_pc(7).unwrap().id;
        let config = program.symbol("config").unwrap();

        let full = session.slice(Criterion::Record { id: crit });
        let pruned = compute_slice(
            session.trace(),
            Criterion::Record { id: crit },
            session.pairs(),
            SliceOptions::new().prune_key(LocKey::Mem(config)),
        );
        let fp = full.pcs(session.trace());
        let pp = pruned.pcs(session.trace());
        assert!(fp.contains(&4), "full slice chases config's store");
        assert!(fp.contains(&0), "...and its whole chain");
        assert!(!pp.contains(&4), "pruned slice stops at the config read");
        assert!(!pp.contains(&0));
        assert!(pp.contains(&6), "the reading statement itself stays");
        assert!(pp.contains(&5), "the other operand's chain stays");
        assert!(pruned.len() < full.len());
    }

    /// Pruning a register key works the same way, and naive agrees with LP.
    #[test]
    fn pruned_register_and_lp_naive_agreement() {
        let program = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r1, 2      ; 0
                    movi r2, 3      ; 1
                    add  r3, r1, r2 ; 2
                    halt            ; 3
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "prune-reg",
        )
        .unwrap();
        let session =
            SliceSession::collect(Arc::clone(&program), &rec.pinball, SlicerOptions::default());
        let crit = session.last_at_pc(2).unwrap().id;
        let opts = SliceOptions::new().prune_key(LocKey::Reg(0, Reg(1)));
        let lp = compute_slice(
            session.trace(),
            Criterion::Record { id: crit },
            session.pairs(),
            opts.clone(),
        );
        let naive = compute_slice_naive(
            session.trace(),
            Criterion::Record { id: crit },
            session.pairs(),
            opts,
        );
        assert_eq!(lp.records, naive.records);
        let pcs = lp.pcs(session.trace());
        assert!(!pcs.contains(&0), "r1's def pruned");
        assert!(pcs.contains(&1), "r2's def kept");
    }

    #[test]
    fn options_fingerprint_is_stable_and_output_sensitive() {
        use minivm::Reg;

        let base = SliceOptions::new();
        assert_eq!(base.fingerprint(), SliceOptions::new().fingerprint());

        // Insertion order of prune keys must not matter.
        let ab = SliceOptions::new()
            .prune_key(LocKey::Reg(0, Reg(1)))
            .prune_key(LocKey::Mem(0x40));
        let ba = SliceOptions::new()
            .prune_key(LocKey::Mem(0x40))
            .prune_key(LocKey::Reg(0, Reg(1)));
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        assert_ne!(base.fingerprint(), ab.fingerprint());

        // The traversal path (sparse vs LP) does not change the slice, so
        // it does not change the fingerprint either.
        let mut lp_forced = ab.clone();
        lp_forced.parallel_threshold = usize::MAX;
        assert_eq!(ab.fingerprint(), lp_forced.fingerprint());

        // But §5.2 pruning does change the output.
        let mut no_sr = ab.clone();
        no_sr.prune_save_restore = false;
        assert_ne!(ab.fingerprint(), no_sr.fingerprint());
    }
}
