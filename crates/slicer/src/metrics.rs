//! Pipeline stage metrics for the parallel slicing pipeline.
//!
//! The slicing pipeline has four stages — *collect* (replay the region
//! pinball, gathering per-thread def/use traces), *merge* (the topological
//! cluster merge into the global trace), *summarize* (LP block summaries
//! plus the per-key definition index), and *traverse* (one backward slice
//! query). [`SliceMetrics`] carries per-stage wall time and work counters
//! through `collect → global → slice` so the debugger's `metrics` command
//! and `drdebug_cli` can report where time went and how much work the LP
//! skipping and save/restore pruning avoided.

use std::fmt;
use std::time::Duration;

/// Wall time and work volume of one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Wall-clock time the stage took.
    pub wall: Duration,
    /// Records the stage processed (trace records for collect/merge/
    /// summarize; records examined for traverse).
    pub records: u64,
}

impl StageMetrics {
    /// A stage measurement.
    pub fn new(wall: Duration, records: u64) -> StageMetrics {
        StageMetrics { wall, records }
    }
}

/// End-to-end metrics for one slicing pipeline run.
///
/// The collect/merge/summarize stages are filled once per
/// [`SliceSession::collect`](crate::SliceSession::collect); the traverse
/// stage describes the most recent slice query combined in by the caller
/// (each query returns its own [`SliceStats`](crate::SliceStats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceMetrics {
    /// Replay + per-thread def/use trace collection.
    pub collect: StageMetrics,
    /// Topological merge into the global trace (plus the id-order restore
    /// after parallel collection).
    pub merge: StageMetrics,
    /// LP block summaries and the per-key definition index.
    pub summarize: StageMetrics,
    /// Dependence-index construction for the most recent slice (zero when
    /// the query was answered from a warm index — the build cost is paid at
    /// most once per option fingerprint).
    pub index_build: StageMetrics,
    /// Whether the most recent slice reused a cached dependence index
    /// instead of building one.
    pub warm_index: bool,
    /// The most recent backward traversal (zero until a slice is computed).
    pub traverse: StageMetrics,
    /// Collector threads used (1 = serial collection).
    pub collector_threads: usize,
    /// Workers used for block summaries (1 = serial summarization).
    pub summary_workers: usize,
    /// Blocks scanned record by record in the last traversal.
    pub blocks_visited: usize,
    /// Blocks skipped via summaries in the last traversal.
    pub blocks_skipped: usize,
    /// Save/restore dependences pruned (§5.2 bypasses) in the last
    /// traversal.
    pub bypasses: u64,
}

impl SliceMetrics {
    /// Returns a copy with the traverse-stage fields replaced by one
    /// query's statistics.
    pub fn with_traversal(
        mut self,
        stats: &crate::slice::SliceStats,
        wall: Duration,
    ) -> SliceMetrics {
        self.traverse = StageMetrics::new(wall, stats.records_scanned);
        self.blocks_visited = stats.blocks_visited;
        self.blocks_skipped = stats.blocks_skipped;
        self.bypasses = stats.bypasses;
        self
    }

    /// Returns a copy describing the most recent query's index usage:
    /// `wall`/`edges` are the build cost (both zero on a warm reuse), and
    /// `warm` records whether a cached index answered the query.
    pub fn with_index(mut self, wall: Duration, edges: u64, warm: bool) -> SliceMetrics {
        self.index_build = StageMetrics::new(wall, edges);
        self.warm_index = warm;
        self
    }
}

impl fmt::Display for SliceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "collect    {:>12?}  {:>10} records  {} collector thread(s)",
            self.collect.wall, self.collect.records, self.collector_threads
        )?;
        writeln!(
            f,
            "merge      {:>12?}  {:>10} records",
            self.merge.wall, self.merge.records
        )?;
        writeln!(
            f,
            "summarize  {:>12?}  {:>10} records  {} worker(s)",
            self.summarize.wall, self.summarize.records, self.summary_workers
        )?;
        writeln!(
            f,
            "index      {:>12?}  {:>10} edges  {}",
            self.index_build.wall,
            self.index_build.records,
            if self.warm_index {
                "warm (reused)"
            } else {
                "cold (built)"
            }
        )?;
        writeln!(
            f,
            "traverse   {:>12?}  {:>10} scanned",
            self.traverse.wall, self.traverse.records
        )?;
        write!(
            f,
            "           blocks visited {}, skipped {}, dependences pruned {}",
            self.blocks_visited, self.blocks_skipped, self.bypasses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::SliceStats;

    #[test]
    fn traversal_stats_fold_in() {
        let base = SliceMetrics {
            collect: StageMetrics::new(Duration::from_millis(5), 100),
            collector_threads: 2,
            summary_workers: 1,
            ..SliceMetrics::default()
        };
        let stats = SliceStats {
            blocks_visited: 3,
            blocks_skipped: 7,
            records_scanned: 42,
            bypasses: 1,
        };
        let m = base.with_traversal(&stats, Duration::from_micros(9));
        assert_eq!(m.traverse.records, 42);
        assert_eq!(m.traverse.wall, Duration::from_micros(9));
        assert_eq!(m.blocks_skipped, 7);
        assert_eq!(m.bypasses, 1);
        assert_eq!(m.collect.records, 100, "pipeline stages preserved");
        let text = m.to_string();
        assert!(text.contains("collect"));
        assert!(text.contains("dependences pruned 1"));
    }

    #[test]
    fn index_stage_folds_in_and_reports_warmth() {
        let cold = SliceMetrics::default().with_index(Duration::from_micros(120), 9000, false);
        assert_eq!(cold.index_build.records, 9000);
        assert!(!cold.warm_index);
        assert!(cold.to_string().contains("cold (built)"));

        let warm = cold.with_index(Duration::ZERO, 0, true);
        assert!(warm.warm_index);
        let text = warm.to_string();
        assert!(text.contains("warm (reused)"));
        assert!(text.contains("traverse"), "stage rows intact");
    }
}
