//! Per-instruction trace records — the "local execution traces" of paper §3.
//!
//! During replay of a region pinball, the slicer's collector stores one
//! [`TraceRecord`] per retired instruction: "the memory addresses and
//! registers defined (written) and used (read) by each instruction"
//! (paper §3 step i), plus the dynamic control parent (computed online,
//! §5.1) and bookkeeping for the save/restore analysis (§5.2).

use serde::{Deserialize, Serialize};

use minivm::{Addr, Instr, Loc, LocVals, Pc, Reg, Tid};

/// A record id: the collection sequence number (== replay retire order).
pub type RecordId = u64;

/// A thread-qualified storage location — the key dependences are tracked on.
///
/// Registers are private per thread, so the global trace distinguishes
/// `r3` of thread 0 from `r3` of thread 2; memory is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LocKey {
    /// Register `reg` of thread `tid`.
    Reg(Tid, Reg),
    /// Shared memory word.
    Mem(Addr),
}

impl std::fmt::Display for LocKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocKey::Reg(tid, r) => write!(f, "t{tid}:{r}"),
            LocKey::Mem(a) => write!(f, "[{a:#x}]"),
        }
    }
}

/// One executed instruction, as stored in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Collection order (== region-relative retire sequence).
    pub id: RecordId,
    /// Executing thread.
    pub tid: Tid,
    /// Program point.
    pub pc: Pc,
    /// Region-relative, 1-based execution count of `pc` by `tid`.
    pub instance: u64,
    /// The instruction.
    pub instr: Instr,
    /// The control successor actually taken (`next_pc == pc` marks a spin
    /// retry of `lock`/`join`).
    pub next_pc: Pc,
    /// Locations read, with values.
    pub uses: LocVals,
    /// Locations written, with values.
    pub defs: LocVals,
    /// For `spawn`: child tid and the argument value placed in its `r0`.
    pub spawned: Option<(Tid, i64)>,
    /// Record id of the branch this instruction is dynamically control
    /// dependent on (paper §5.1), if any within the region.
    pub cd_parent: Option<RecordId>,
    /// Source line (for listings and the slice browser).
    pub line: u32,
}

impl TraceRecord {
    /// Whether this record is a spin retry (contended `lock` / waiting
    /// `join`): it performed no state change and merely retried.
    pub fn is_spin(&self) -> bool {
        self.next_pc == self.pc && !matches!(self.instr, Instr::Halt)
    }

    /// Thread-qualified keys of the locations this record *uses*.
    ///
    /// When `track_sp` is false, stack-pointer registers are omitted: sp is
    /// control scaffolding whose dataflow chains every stack operation to
    /// every earlier one and carries no program-value information.
    pub fn use_keys(&self, track_sp: bool) -> impl Iterator<Item = (LocKey, i64)> + '_ {
        qualify(self.tid, self.uses, track_sp)
    }

    /// Thread-qualified keys of the locations this record *defines*,
    /// including the cross-thread definition of a spawned child's `r0`.
    pub fn def_keys(&self, track_sp: bool) -> impl Iterator<Item = (LocKey, i64)> + '_ {
        let spawn_def = self
            .spawned
            .map(|(child, v)| (LocKey::Reg(child, Reg(0)), v));
        qualify(self.tid, self.defs, track_sp).chain(spawn_def)
    }

    /// A compact human-readable rendering, used by the slice browser.
    pub fn describe(&self) -> String {
        format!(
            "[t{} {}#{} seq={}] {}",
            self.tid, self.pc, self.instance, self.id, self.instr
        )
    }
}

fn qualify(tid: Tid, locs: LocVals, track_sp: bool) -> impl Iterator<Item = (LocKey, i64)> {
    locs.into_iter().filter_map(move |(loc, v)| match loc {
        Loc::Reg(r) if r == Reg::SP && !track_sp => None,
        Loc::Reg(r) => Some((LocKey::Reg(tid, r), v)),
        Loc::Mem(a) => Some((LocKey::Mem(a), v)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_with(tid: Tid, uses: &[(Loc, i64)], defs: &[(Loc, i64)]) -> TraceRecord {
        TraceRecord {
            id: 1,
            tid,
            pc: 0,
            instance: 1,
            instr: Instr::Nop,
            next_pc: 1,
            uses: uses.iter().copied().collect(),
            defs: defs.iter().copied().collect(),
            spawned: None,
            cd_parent: None,
            line: 0,
        }
    }

    #[test]
    fn keys_are_thread_qualified() {
        let r = record_with(3, &[(Loc::Reg(Reg(1)), 5)], &[(Loc::Mem(0x1000), 7)]);
        let uses: Vec<_> = r.use_keys(false).collect();
        assert_eq!(uses, vec![(LocKey::Reg(3, Reg(1)), 5)]);
        let defs: Vec<_> = r.def_keys(false).collect();
        assert_eq!(defs, vec![(LocKey::Mem(0x1000), 7)]);
    }

    #[test]
    fn sp_is_filtered_unless_tracked() {
        let r = record_with(0, &[(Loc::Reg(Reg::SP), 100)], &[(Loc::Reg(Reg::SP), 99)]);
        assert_eq!(r.use_keys(false).count(), 0);
        assert_eq!(r.use_keys(true).count(), 1);
        assert_eq!(r.def_keys(true).count(), 1);
    }

    #[test]
    fn spawn_defines_child_r0() {
        let mut r = record_with(0, &[], &[(Loc::Reg(Reg(2)), 1)]);
        r.spawned = Some((4, 42));
        let defs: Vec<_> = r.def_keys(false).collect();
        assert!(defs.contains(&(LocKey::Reg(4, Reg(0)), 42)));
        assert!(defs.contains(&(LocKey::Reg(0, Reg(2)), 1)));
    }

    #[test]
    fn lockey_display() {
        assert_eq!(LocKey::Reg(2, Reg(3)).to_string(), "t2:r3");
        assert_eq!(LocKey::Mem(0x1000).to_string(), "[0x1000]");
    }
}
