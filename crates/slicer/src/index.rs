//! Reusable dependence index: the whole dynamic dependence graph, built
//! once per `(GlobalTrace, SliceOptions)`.
//!
//! DrDebug's premise is *cyclic* debugging (paper §2, §4): the user replays
//! the same pinball over and over, slicing at different criteria as their
//! hypothesis evolves. Every backward traversal over the same trace
//! re-derives the same reaching definitions, because resolution is a pure
//! function of the trace, the save/restore pairs, and the pruning options —
//! the criterion only chooses where the walk *starts*. [`DepIndex`]
//! precomputes that function for every record: interned [`LocKey`]s (u32
//! ids), struct-of-arrays record storage, and the immediate data/control
//! dependence edges in CSR form, with §5.2 save/restore bypass chains baked
//! into the edge targets. [`compute_slice_indexed`] is then a pure BFS over
//! the CSR arrays — no `HashMap` probes, no live-set bookkeeping, no block
//! rescan — and produces slices byte-identical (criterion, records, data
//! edges, control edges) to [`compute_slice_sparse`].
//!
//! The index is built in parallel over disjoint record ranges with the same
//! atomic-work-queue + deterministic in-order merge used by the LP block
//! summaries in [`crate::global`], so its contents are byte-for-byte
//! independent of the worker count.
//!
//! Traversal statistics on an indexed slice are a deterministic function of
//! the index and the criterion, but — like the sparse-vs-LP split — they
//! are *advisory* relative to the scanning traversals: the BFS touches only
//! slice members, so `records_scanned` equals the slice size minus the
//! criterion, and `bypasses` counts the bypass links baked into the edges
//! the query actually crossed.
//!
//! [`compute_slice_sparse`]: crate::slice::compute_slice_sparse

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::global::GlobalTrace;
use crate::slice::{Criterion, DataEdge, Slice, SliceOptions, SliceStats};
use crate::trace::{LocKey, RecordId};

/// Sentinel for "no position" in the u32-packed arrays.
const NONE: u32 = u32::MAX;

/// Traces below this many records are indexed serially — thread spawn
/// overhead dominates for small traces (mirrors the summarize stage).
const PAR_INDEX_THRESHOLD: usize = 16_384;

/// Upper bound on index-build workers.
const MAX_INDEX_WORKERS: usize = 16;

/// Records per work unit claimed from the shared queue during the parallel
/// edge fill.
const INDEX_SHARD: usize = 1024;

/// Timings and sizes from one [`DepIndex::build`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexBuildStats {
    /// Wall time of the whole build.
    pub wall: Duration,
    /// Distinct location keys interned.
    pub keys: usize,
    /// Immediate data-dependence edges stored.
    pub edges: usize,
    /// Save/restore bypass links folded into edge targets (each chased
    /// chain hop counts once).
    pub bypass_links: u64,
    /// Workers used for the parallel edge fill (1 = serial).
    pub workers: usize,
}

/// The precomputed dynamic dependence graph of one `(GlobalTrace,
/// SliceOptions)` pair.
///
/// Positions are u32 indices into the global trace order; keys are u32
/// indices into the interned key table. All per-record data lives in
/// struct-of-arrays CSR form so a slice query is pointer-chasing over flat
/// memory.
#[derive(Debug)]
pub struct DepIndex {
    /// Position -> record id, in global trace order.
    record_ids: Vec<RecordId>,
    /// Record id -> position (the query-time criterion lookup).
    pos_of: HashMap<RecordId, u32>,
    /// Position -> position of the record's dynamic control parent
    /// ([`NONE`] when absent or not in the trace).
    cd_parent_pos: Vec<u32>,
    /// Interned key table (key id -> key).
    keys: Vec<LocKey>,
    /// Reverse interning map, used by `Criterion::Value` resolution.
    key_ids: HashMap<LocKey, u32>,
    /// CSR row offsets into `edges`/`edge_keys`/`edge_hops`, one row per
    /// record position (length `records + 1`).
    edge_offsets: Vec<u32>,
    /// Resolved reaching-definition *position* of each (non-pruned) use,
    /// with §5.2 bypass chains already chased.
    edges: Vec<u32>,
    /// Interned key id each edge flowed through.
    edge_keys: Vec<u32>,
    /// Bypass links chased to resolve each edge (0 = direct definition).
    edge_hops: Vec<u32>,
    /// Per-key definition CSR: row offsets into `key_defs`.
    key_def_offsets: Vec<u32>,
    /// Ascending definition positions, grouped by key id.
    key_defs: Vec<u32>,
    /// Bypass-resolved target of each definition slot ([`NONE`] when the
    /// bypass chain falls off the start of the trace).
    key_resolved: Vec<u32>,
    /// Bypass links chased for each definition slot.
    key_hops: Vec<u32>,
    /// LP block size of the source trace (kept for stats parity).
    block_size: usize,
    /// [`SliceOptions::fingerprint`] of the options the index was built
    /// for — the cache-invalidation key.
    options_fingerprint: u64,
    /// Build statistics.
    stats: IndexBuildStats,
}

impl DepIndex {
    /// Builds the dependence index for `trace` under `options`.
    ///
    /// `pairs` maps verified restore record ids to their save record ids
    /// (as for [`crate::slice::compute_slice`]); with §5.2 pruning enabled
    /// the save/restore bypass chains are chased here, once, instead of on
    /// every traversal.
    ///
    /// # Panics
    ///
    /// Panics if the trace holds `u32::MAX` or more records.
    pub fn build(
        trace: &GlobalTrace,
        pairs: &HashMap<RecordId, RecordId>,
        options: &SliceOptions,
    ) -> DepIndex {
        let started = Instant::now();
        let records = trace.records();
        let n = records.len();
        assert!(
            (n as u64) < NONE as u64,
            "trace too large for a u32-packed index"
        );
        let track_sp = trace.track_sp();

        // Intern every key in deterministic (trace-order) encounter order.
        let mut keys: Vec<LocKey> = Vec::new();
        let mut key_ids: HashMap<LocKey, u32> = HashMap::new();
        let mut record_ids = Vec::with_capacity(n);
        let mut pos_of = HashMap::with_capacity(n);
        let mut cd_parent_pos = Vec::with_capacity(n);
        for (pos, r) in records.iter().enumerate() {
            record_ids.push(r.id);
            pos_of.insert(r.id, pos as u32);
            for (k, _) in r.def_keys(track_sp).chain(r.use_keys(track_sp)) {
                key_ids.entry(k).or_insert_with(|| {
                    keys.push(k);
                    (keys.len() - 1) as u32
                });
            }
        }
        for r in records {
            let cd = r
                .cd_parent
                .and_then(|cd| trace.position(cd))
                .map_or(NONE, |p| p as u32);
            cd_parent_pos.push(cd);
        }

        // Per-key definition CSR with bypass-resolved targets. Chains move
        // strictly downward, so resolving each key's slots in ascending
        // order sees every chain target already resolved.
        let mut key_def_offsets: Vec<u32> = Vec::with_capacity(keys.len() + 1);
        let mut key_defs: Vec<u32> = Vec::new();
        let mut key_resolved: Vec<u32> = Vec::new();
        let mut key_hops: Vec<u32> = Vec::new();
        let mut bypass_links: u64 = 0;
        key_def_offsets.push(0);
        for &key in &keys {
            let defs = trace.def_positions(&key);
            let base = key_defs.len();
            for (i, &p) in defs.iter().enumerate() {
                let r = &records[p];
                let bypass_to = if options.prune_save_restore && matches!(key, LocKey::Reg(..)) {
                    pairs
                        .get(&r.id)
                        .and_then(|&save| trace.position(save))
                        .filter(|&sp| sp < p)
                } else {
                    None
                };
                match bypass_to {
                    Some(save_pos) => {
                        // The query resumes strictly below the save, exactly
                        // as the scanning traversals defer it: the next
                        // candidate is the greatest definition below
                        // `save_pos.saturating_sub(1) + 1`.
                        let limit = save_pos.saturating_sub(1) + 1;
                        let j = defs[..i].partition_point(|&q| q < limit);
                        if j == 0 {
                            key_defs.push(p as u32);
                            key_resolved.push(NONE);
                            key_hops.push(1);
                        } else {
                            key_defs.push(p as u32);
                            key_resolved.push(key_resolved[base + j - 1]);
                            key_hops.push(1 + key_hops[base + j - 1]);
                        }
                        bypass_links += 1;
                    }
                    None => {
                        key_defs.push(p as u32);
                        key_resolved.push(p as u32);
                        key_hops.push(0);
                    }
                }
            }
            key_def_offsets.push(key_defs.len() as u32);
        }

        let mut index = DepIndex {
            record_ids,
            pos_of,
            cd_parent_pos,
            keys,
            key_ids,
            edge_offsets: Vec::new(),
            edges: Vec::new(),
            edge_keys: Vec::new(),
            edge_hops: Vec::new(),
            key_def_offsets,
            key_defs,
            key_resolved,
            key_hops,
            block_size: trace.block_size(),
            options_fingerprint: options.fingerprint(),
            stats: IndexBuildStats::default(),
        };

        // Parallel edge fill: workers claim record shards from a shared
        // atomic counter and resolve every non-pruned use against the
        // per-key CSR; shard results merge in shard order, so the arrays
        // are identical for every worker count.
        let workers = if n >= PAR_INDEX_THRESHOLD {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .clamp(1, MAX_INDEX_WORKERS)
        } else {
            1
        };
        let n_shards = n.div_ceil(INDEX_SHARD).max(1);
        // One shard's result: per-record row lengths + flat (def, key, hops).
        type ShardEdges = (Vec<u32>, Vec<(u32, u32, u32)>);
        let fill_shard = |shard: usize| -> ShardEdges {
            let start = shard * INDEX_SHARD;
            let end = (start + INDEX_SHARD).min(n);
            // (row lengths, flat edge triples) for this shard.
            let mut rows: Vec<u32> = Vec::with_capacity(end - start);
            let mut flat: Vec<(u32, u32, u32)> = Vec::new();
            for (pos, r) in records[start..end].iter().enumerate() {
                let pos = start + pos;
                let before = flat.len();
                for (k, _) in r.use_keys(track_sp) {
                    if options.prune_keys.contains(&k) {
                        continue;
                    }
                    if let Some((def, hops)) = index.resolve_interned(&k, pos) {
                        flat.push((def, index.key_ids[&k], hops));
                    }
                }
                rows.push((flat.len() - before) as u32);
            }
            (rows, flat)
        };

        let mut per_shard: Vec<Option<ShardEdges>> = (0..n_shards).map(|_| None).collect();
        if workers <= 1 {
            for (s, slot) in per_shard.iter_mut().enumerate() {
                *slot = Some(fill_shard(s));
            }
        } else {
            let next = AtomicUsize::new(0);
            let partials = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut mine = Vec::new();
                            loop {
                                let shard = next.fetch_add(1, Ordering::Relaxed);
                                if shard >= n_shards {
                                    break;
                                }
                                mine.push((shard, fill_shard(shard)));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("index worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (s, result) in partials {
                per_shard[s] = Some(result);
            }
        }

        let mut edge_offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        let mut edge_keys = Vec::new();
        let mut edge_hops = Vec::new();
        edge_offsets.push(0u32);
        for slot in per_shard {
            let (rows, flat) = slot.expect("every shard filled");
            let mut at = 0usize;
            for len in rows {
                at += len as usize;
                edge_offsets.push(edge_offsets.last().copied().unwrap_or(0) + len);
            }
            debug_assert_eq!(at, flat.len());
            for (def, kid, hops) in flat {
                edges.push(def);
                edge_keys.push(kid);
                edge_hops.push(hops);
            }
        }
        debug_assert_eq!(edge_offsets.len(), n + 1);
        debug_assert_eq!(*edge_offsets.last().unwrap() as usize, edges.len());

        index.edge_offsets = edge_offsets;
        index.edges = edges;
        index.edge_keys = edge_keys;
        index.edge_hops = edge_hops;
        index.stats = IndexBuildStats {
            wall: started.elapsed(),
            keys: index.keys.len(),
            edges: index.edges.len(),
            bypass_links,
            workers,
        };
        index
    }

    /// Extends the index over the suffix of `trace` it does not yet cover,
    /// without recomputing the prefix — the incremental path for a
    /// recording that is still streaming in.
    ///
    /// `trace` must be the old trace grown in place by
    /// [`GlobalTrace::extend`] (prefix positions unchanged — built with
    /// clustering off), under the *same* options the index was built with,
    /// and `pairs` must cover the full trace. The result is then identical
    /// in every array to a batch [`DepIndex::build`] over the full trace:
    /// key interning is in trace order, so the prefix of the key table is
    /// unchanged; a definition's bypass resolution chases strictly earlier
    /// definitions, so prefix slots resolve identically; and a use at
    /// position `p` depends only on definitions below `p`, so prefix edge
    /// rows are already correct and only suffix rows are filled. The
    /// per-key definition CSR is re-laid-out (rows must stay contiguous),
    /// but old rows are copied rather than re-resolved — the append pays
    /// O(copy + suffix), never the full build's resolution cost. Only
    /// [`DepIndex::stats`] differs from the batch build (it reports the
    /// append, not a full build); [`DepIndex::same_graph`] checks exactly
    /// this equivalence.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is shorter than the index, its block size or the
    /// options fingerprint disagree with the build, or the full trace no
    /// longer fits u32 positions.
    pub fn append(
        &mut self,
        trace: &GlobalTrace,
        pairs: &HashMap<RecordId, RecordId>,
        options: &SliceOptions,
    ) {
        let started = Instant::now();
        let records = trace.records();
        let old_n = self.record_ids.len();
        let n = records.len();
        assert!(
            (n as u64) < NONE as u64,
            "trace too large for a u32-packed index"
        );
        assert!(n >= old_n, "trace shrank under the index");
        assert_eq!(
            options.fingerprint(),
            self.options_fingerprint,
            "append under different options than the build"
        );
        assert_eq!(
            trace.block_size(),
            self.block_size,
            "append under a different block size than the build"
        );
        debug_assert!(
            records[..old_n]
                .iter()
                .zip(&self.record_ids)
                .all(|(r, &id)| r.id == id),
            "trace prefix changed under the index"
        );
        if n == old_n {
            return;
        }
        let track_sp = trace.track_sp();

        // Suffix interning: prefix records are unchanged, so their
        // encounter order — and therefore the prefix of the key table —
        // is exactly the batch build's.
        self.record_ids.reserve(n - old_n);
        for (pos, r) in records[old_n..].iter().enumerate() {
            let pos = old_n + pos;
            self.record_ids.push(r.id);
            self.pos_of.insert(r.id, pos as u32);
            for (k, _) in r.def_keys(track_sp).chain(r.use_keys(track_sp)) {
                self.key_ids.entry(k).or_insert_with(|| {
                    self.keys.push(k);
                    (self.keys.len() - 1) as u32
                });
            }
        }
        // A control parent always precedes its dependent in the unclustered
        // order, so prefix rows cannot gain a parent from the suffix.
        for r in &records[old_n..] {
            let cd = r
                .cd_parent
                .and_then(|cd| trace.position(cd))
                .map_or(NONE, |p| p as u32);
            self.cd_parent_pos.push(cd);
        }

        // Grow the per-key definition CSR. Per-key rows must stay
        // contiguous as definitions land in old keys' rows, so the flat
        // arrays are rebuilt — but prefix slots are identical to the batch
        // build's (bypass chains only chase earlier definitions), so old
        // rows are copied verbatim and only definitions landing in the
        // suffix pay resolution. This keeps the append's CSR cost at
        // O(copy + suffix), not O(re-resolving every definition): on a
        // long stream the copy is a few memmoves while re-resolution
        // would approach the full-build cost it exists to avoid.
        let old_keys = self.key_def_offsets.len().saturating_sub(1);
        let mut key_def_offsets: Vec<u32> = Vec::with_capacity(self.keys.len() + 1);
        let mut key_defs: Vec<u32> = Vec::with_capacity(self.key_defs.len());
        let mut key_resolved: Vec<u32> = Vec::with_capacity(self.key_resolved.len());
        let mut key_hops: Vec<u32> = Vec::with_capacity(self.key_hops.len());
        let mut bypass_links: u64 = 0;
        key_def_offsets.push(0);
        for (kid, &key) in self.keys.iter().enumerate() {
            let defs = trace.def_positions(&key);
            let base = key_defs.len();
            let copied = if kid < old_keys {
                let row =
                    self.key_def_offsets[kid] as usize..self.key_def_offsets[kid + 1] as usize;
                key_defs.extend_from_slice(&self.key_defs[row.clone()]);
                key_resolved.extend_from_slice(&self.key_resolved[row.clone()]);
                key_hops.extend_from_slice(&self.key_hops[row]);
                key_defs.len() - base
            } else {
                0
            };
            debug_assert_eq!(
                copied,
                defs.partition_point(|&p| p < old_n),
                "old CSR row length disagrees with the prefix's definitions"
            );
            for (i, &p) in defs.iter().enumerate().skip(copied) {
                let r = &records[p];
                let bypass_to = if options.prune_save_restore && matches!(key, LocKey::Reg(..)) {
                    pairs
                        .get(&r.id)
                        .and_then(|&save| trace.position(save))
                        .filter(|&sp| sp < p)
                } else {
                    None
                };
                match bypass_to {
                    Some(save_pos) => {
                        let limit = save_pos.saturating_sub(1) + 1;
                        let j = defs[..i].partition_point(|&q| q < limit);
                        if j == 0 {
                            key_defs.push(p as u32);
                            key_resolved.push(NONE);
                            key_hops.push(1);
                        } else {
                            key_defs.push(p as u32);
                            key_resolved.push(key_resolved[base + j - 1]);
                            key_hops.push(1 + key_hops[base + j - 1]);
                        }
                        bypass_links += 1;
                    }
                    None => {
                        key_defs.push(p as u32);
                        key_resolved.push(p as u32);
                        key_hops.push(0);
                    }
                }
            }
            key_def_offsets.push(key_defs.len() as u32);
        }
        self.key_def_offsets = key_def_offsets;
        self.key_defs = key_defs;
        self.key_resolved = key_resolved;
        self.key_hops = key_hops;

        // Edge fill restricted to the suffix — the expensive stage the
        // incremental path avoids re-running over the prefix. A use at
        // position `p` resolves against definitions strictly below `p`
        // only, so prefix rows are already exactly what a batch build
        // would produce.
        let suffix = n - old_n;
        let workers = if suffix >= PAR_INDEX_THRESHOLD {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .clamp(1, MAX_INDEX_WORKERS)
        } else {
            1
        };
        let n_shards = suffix.div_ceil(INDEX_SHARD).max(1);
        type ShardEdges = (Vec<u32>, Vec<(u32, u32, u32)>);
        let index = &*self;
        let fill_shard = |shard: usize| -> ShardEdges {
            let start = old_n + shard * INDEX_SHARD;
            let end = (start + INDEX_SHARD).min(n);
            let mut rows: Vec<u32> = Vec::with_capacity(end - start);
            let mut flat: Vec<(u32, u32, u32)> = Vec::new();
            for (pos, r) in records[start..end].iter().enumerate() {
                let pos = start + pos;
                let before = flat.len();
                for (k, _) in r.use_keys(track_sp) {
                    if options.prune_keys.contains(&k) {
                        continue;
                    }
                    if let Some((def, hops)) = index.resolve_interned(&k, pos) {
                        flat.push((def, index.key_ids[&k], hops));
                    }
                }
                rows.push((flat.len() - before) as u32);
            }
            (rows, flat)
        };

        let mut per_shard: Vec<Option<ShardEdges>> = (0..n_shards).map(|_| None).collect();
        if workers <= 1 {
            for (s, slot) in per_shard.iter_mut().enumerate() {
                *slot = Some(fill_shard(s));
            }
        } else {
            let next = AtomicUsize::new(0);
            let partials = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut mine = Vec::new();
                            loop {
                                let shard = next.fetch_add(1, Ordering::Relaxed);
                                if shard >= n_shards {
                                    break;
                                }
                                mine.push((shard, fill_shard(shard)));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("index worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (s, result) in partials {
                per_shard[s] = Some(result);
            }
        }

        let mut edge_offsets = std::mem::take(&mut self.edge_offsets);
        let mut edges = std::mem::take(&mut self.edges);
        let mut edge_keys = std::mem::take(&mut self.edge_keys);
        let mut edge_hops = std::mem::take(&mut self.edge_hops);
        for slot in per_shard {
            let (rows, flat) = slot.expect("every shard filled");
            for len in rows {
                edge_offsets.push(edge_offsets.last().copied().unwrap_or(0) + len);
            }
            for (def, kid, hops) in flat {
                edges.push(def);
                edge_keys.push(kid);
                edge_hops.push(hops);
            }
        }
        debug_assert_eq!(edge_offsets.len(), n + 1);
        debug_assert_eq!(*edge_offsets.last().unwrap() as usize, edges.len());
        self.edge_offsets = edge_offsets;
        self.edges = edges;
        self.edge_keys = edge_keys;
        self.edge_hops = edge_hops;

        self.stats = IndexBuildStats {
            wall: started.elapsed(),
            keys: self.keys.len(),
            edges: self.edges.len(),
            bypass_links,
            workers,
        };
    }

    /// Whether two indexes hold the same dependence graph: every array and
    /// map compared, except the advisory build [`DepIndex::stats`]. This is
    /// the differential check that an [`DepIndex::append`]-grown index
    /// equals a batch [`DepIndex::build`].
    pub fn same_graph(&self, other: &DepIndex) -> bool {
        self.record_ids == other.record_ids
            && self.pos_of == other.pos_of
            && self.cd_parent_pos == other.cd_parent_pos
            && self.keys == other.keys
            && self.key_ids == other.key_ids
            && self.edge_offsets == other.edge_offsets
            && self.edges == other.edges
            && self.edge_keys == other.edge_keys
            && self.edge_hops == other.edge_hops
            && self.key_def_offsets == other.key_def_offsets
            && self.key_defs == other.key_defs
            && self.key_resolved == other.key_resolved
            && self.key_hops == other.key_hops
            && self.block_size == other.block_size
            && self.options_fingerprint == other.options_fingerprint
    }

    /// Resolves the reaching definition of `key` strictly below `limit`,
    /// with bypass chains applied: the (position, bypass hops) pair, or
    /// `None` when no definition reaches.
    fn resolve_interned(&self, key: &LocKey, limit: usize) -> Option<(u32, u32)> {
        let &kid = self.key_ids.get(key)?;
        self.resolve_key_id(kid, limit)
    }

    /// [`Self::resolve_interned`] by interned key id.
    fn resolve_key_id(&self, kid: u32, limit: usize) -> Option<(u32, u32)> {
        let lo = self.key_def_offsets[kid as usize] as usize;
        let hi = self.key_def_offsets[kid as usize + 1] as usize;
        let defs = &self.key_defs[lo..hi];
        let i = defs.partition_point(|&p| (p as usize) < limit);
        if i == 0 {
            return None;
        }
        let resolved = self.key_resolved[lo + i - 1];
        if resolved == NONE {
            return None;
        }
        Some((resolved, self.key_hops[lo + i - 1]))
    }

    /// Number of records the index covers.
    pub fn len(&self) -> usize {
        self.record_ids.len()
    }

    /// Whether the index covers an empty trace.
    pub fn is_empty(&self) -> bool {
        self.record_ids.is_empty()
    }

    /// The [`SliceOptions::fingerprint`] the index was built for. A query
    /// under options with a different fingerprint needs a different index.
    pub fn options_fingerprint(&self) -> u64 {
        self.options_fingerprint
    }

    /// Build statistics (wall time, sizes, workers).
    pub fn stats(&self) -> IndexBuildStats {
        self.stats
    }

    /// Approximate resident size of the index in bytes (flat arrays plus
    /// an estimate for the two hash maps) — what the server's index cache
    /// accounts against its budget.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let flat = self.record_ids.len() * size_of::<RecordId>()
            + self.cd_parent_pos.len() * size_of::<u32>()
            + self.keys.len() * size_of::<LocKey>()
            + self.edge_offsets.len() * size_of::<u32>()
            + self.edges.len() * size_of::<u32>()
            + self.edge_keys.len() * size_of::<u32>()
            + self.edge_hops.len() * size_of::<u32>()
            + self.key_def_offsets.len() * size_of::<u32>()
            + self.key_defs.len() * size_of::<u32>()
            + self.key_resolved.len() * size_of::<u32>()
            + self.key_hops.len() * size_of::<u32>();
        let maps = self.pos_of.len() * (size_of::<RecordId>() + size_of::<u32>() + 8)
            + self.key_ids.len() * (size_of::<LocKey>() + size_of::<u32>() + 8);
        (flat + maps) as u64
    }
}

/// Computes the backward dynamic slice of `criterion` as a pure BFS over
/// the precomputed dependence index.
///
/// The result is byte-identical — criterion, record set, data edges,
/// control edges, including edge order and duplicate multiplicity — to
/// [`compute_slice_sparse`](crate::slice::compute_slice_sparse) run with
/// the options the index was built for. The traversal statistics are a
/// deterministic function of the index and the criterion (see the module
/// docs for how they relate to the scanning traversals' stats).
///
/// # Panics
///
/// Panics if the criterion's record id is not present in the index.
pub fn compute_slice_indexed(index: &DepIndex, criterion: Criterion) -> Slice {
    let crit_pos = *index
        .pos_of
        .get(&criterion.record_id())
        .expect("criterion record not in trace") as usize;

    let mut slice = Slice {
        criterion,
        records: HashSet::new(),
        data_edges: Vec::new(),
        control_edges: Vec::new(),
        stats: SliceStats::default(),
    };

    let mut visited = vec![false; index.len()];
    let mut order: Vec<u32> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();

    visited[crit_pos] = true;
    order.push(crit_pos as u32);
    slice.records.insert(index.record_ids[crit_pos]);

    let push = |p: u32, visited: &mut Vec<bool>, stack: &mut Vec<u32>| {
        if !visited[p as usize] {
            visited[p as usize] = true;
            stack.push(p);
        }
    };

    // Seed with the criterion record's dependences.
    match criterion {
        Criterion::Record { .. } => {
            let lo = index.edge_offsets[crit_pos] as usize;
            let hi = index.edge_offsets[crit_pos + 1] as usize;
            for e in lo..hi {
                let def = index.edges[e];
                slice.data_edges.push(DataEdge {
                    user: index.record_ids[crit_pos],
                    def: index.record_ids[def as usize],
                    key: index.keys[index.edge_keys[e] as usize],
                });
                slice.stats.bypasses += index.edge_hops[e] as u64;
                push(def, &mut visited, &mut stack);
            }
        }
        Criterion::Value { key, .. } => {
            // An explicit criterion key overrides user pruning, so resolve
            // through the per-key CSR rather than the (pruned) record row.
            if let Some((def, hops)) = index.resolve_interned(&key, crit_pos) {
                slice.data_edges.push(DataEdge {
                    user: index.record_ids[crit_pos],
                    def: index.record_ids[def as usize],
                    key,
                });
                slice.stats.bypasses += hops as u64;
                push(def, &mut visited, &mut stack);
            }
        }
    }
    let cd = index.cd_parent_pos[crit_pos];
    if cd != NONE && (cd as usize) < crit_pos {
        push(cd, &mut visited, &mut stack);
    }

    while let Some(pos) = stack.pop() {
        let pos = pos as usize;
        order.push(pos as u32);
        slice.records.insert(index.record_ids[pos]);
        let lo = index.edge_offsets[pos] as usize;
        let hi = index.edge_offsets[pos + 1] as usize;
        for e in lo..hi {
            let def = index.edges[e];
            slice.data_edges.push(DataEdge {
                user: index.record_ids[pos],
                def: index.record_ids[def as usize],
                key: index.keys[index.edge_keys[e] as usize],
            });
            slice.stats.bypasses += index.edge_hops[e] as u64;
            push(def, &mut visited, &mut stack);
        }
        let cd = index.cd_parent_pos[pos];
        if cd != NONE && (cd as usize) < pos {
            push(cd, &mut visited, &mut stack);
        }
    }

    // Control edges are a pure function of the included set: emit
    // (dependent, parent) whenever both ends made it in.
    for &pos in &order {
        let cd = index.cd_parent_pos[pos as usize];
        if cd != NONE && visited[cd as usize] {
            slice.control_edges.push((
                index.record_ids[pos as usize],
                index.record_ids[cd as usize],
            ));
        }
    }
    slice.control_edges.sort_unstable();
    slice
        .data_edges
        .sort_unstable_by_key(|e| (e.user, e.def, e.key));

    // Deterministic advisory stats: the BFS touches exactly the slice
    // members, so scanned = |slice| - 1; block accounting mirrors the
    // sparse traversal's "blocks at or below the criterion's".
    slice.stats.records_scanned = (order.len() - 1) as u64;
    let blocks: HashSet<usize> = order
        .iter()
        .skip(1)
        .map(|&p| p as usize / index.block_size)
        .collect();
    slice.stats.blocks_visited = blocks.len();
    slice.stats.blocks_skipped = (crit_pos / index.block_size + 1) - blocks.len();
    slice
}
