//! Save/restore pair detection (paper §5.2).
//!
//! At function entry compilers save the registers they will clobber and
//! restore them at exit; at the binary level this manufactures data
//! dependence chains `use → restore → save → def` through the stack slot,
//! which drag the callee's control context into every slice flowing through
//! the saved register. The paper's remedy: identify save/restore pairs and
//! let the slicer bypass them.
//!
//! Following §5.2, detection is two-stage:
//!
//! 1. **Static candidates** — "the first `MaxSave` push ... instructions at
//!    the start of a function and the last `MaxSave` pop ... instructions at
//!    the end of a function";
//! 2. **Dynamic verification** — a candidate pair is accepted only when the
//!    *same activation* of the function saves register `r` with value `v` to
//!    stack slot `s` and later restores the same `v` from the same `s` back
//!    into the same `r`.

use std::collections::{HashMap, HashSet};

use minivm::{Addr, InsEvent, Instr, Loc, Pc, Program, Reg};

use crate::trace::RecordId;

/// Static candidate save/restore program points for one program.
#[derive(Debug, Clone, Default)]
pub struct PairCandidates {
    saves: HashSet<Pc>,
    restores: HashSet<Pc>,
}

impl PairCandidates {
    /// Scans every function for candidate program points, keeping at most
    /// `max_save` saves per function entry and `max_save` restores before
    /// each return (the paper's tunable `MaxSave`, default 10).
    pub fn find(program: &Program, max_save: usize) -> PairCandidates {
        let mut c = PairCandidates::default();
        for f in &program.functions {
            // Saves: leading `push`es of the function body.
            let mut taken = 0;
            for pc in f.entry..f.end {
                match program.fetch(pc) {
                    Some(Instr::Push { .. }) if taken < max_save => {
                        c.saves.insert(pc);
                        taken += 1;
                    }
                    _ => break,
                }
            }
            // Restores: trailing `pop`s immediately before each `ret`.
            for pc in f.entry..f.end {
                if !matches!(program.fetch(pc), Some(Instr::Ret)) {
                    continue;
                }
                let mut taken = 0;
                let mut back = pc;
                while back > f.entry && taken < max_save {
                    back -= 1;
                    match program.fetch(back) {
                        Some(Instr::Pop { .. }) => {
                            c.restores.insert(back);
                            taken += 1;
                        }
                        _ => break,
                    }
                }
            }
        }
        c
    }

    /// Whether `pc` is a candidate save point.
    pub fn is_save(&self, pc: Pc) -> bool {
        self.saves.contains(&pc)
    }

    /// Whether `pc` is a candidate restore point.
    pub fn is_restore(&self, pc: Pc) -> bool {
        self.restores.contains(&pc)
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingSave {
    id: RecordId,
    reg: Reg,
    slot: Addr,
    value: i64,
}

#[derive(Debug, Default)]
struct Activation {
    saves: Vec<PendingSave>,
}

#[derive(Debug, Default)]
struct ThreadPairs {
    activations: Vec<Activation>,
}

/// Dynamically verifies save/restore pairs during trace collection.
#[derive(Debug)]
pub struct PairDetector {
    candidates: PairCandidates,
    threads: Vec<ThreadPairs>,
    /// restore record id -> save record id, for verified pairs.
    pairs: HashMap<RecordId, RecordId>,
}

impl PairDetector {
    /// Creates a detector using the given static candidates.
    pub fn new(candidates: PairCandidates) -> PairDetector {
        PairDetector {
            candidates,
            threads: Vec::new(),
            pairs: HashMap::new(),
        }
    }

    /// Observes one executed instruction.
    pub fn on_event(&mut self, ev: &InsEvent, id: RecordId) {
        let t = ev.tid as usize;
        if self.threads.len() <= t {
            self.threads.resize_with(t + 1, ThreadPairs::default);
        }
        let td = &mut self.threads[t];
        if td.activations.is_empty() {
            td.activations.push(Activation::default());
        }
        match ev.instr {
            Instr::Call { .. } | Instr::CallInd { .. } => {
                td.activations.push(Activation::default());
            }
            Instr::Ret if td.activations.len() > 1 => {
                td.activations.pop();
            }
            Instr::Push { src } if self.candidates.is_save(ev.pc) => {
                // The pushed value and the stack slot written.
                let value = ev
                    .uses
                    .value_of(Loc::Reg(src))
                    .expect("push records its source register");
                let slot = ev.defs.iter().find_map(|(l, _)| match l {
                    Loc::Mem(a) => Some(a),
                    Loc::Reg(_) => None,
                });
                if let Some(slot) = slot {
                    td.activations
                        .last_mut()
                        .expect("activation pushed above")
                        .saves
                        .push(PendingSave {
                            id,
                            reg: src,
                            slot,
                            value,
                        });
                }
            }
            Instr::Pop { dst } if self.candidates.is_restore(ev.pc) => {
                let value = ev.defs.value_of(Loc::Reg(dst));
                let slot = ev.uses.iter().find_map(|(l, _)| match l {
                    Loc::Mem(a) => Some(a),
                    Loc::Reg(_) => None,
                });
                if let (Some(value), Some(slot)) = (value, slot) {
                    let act = td.activations.last_mut().expect("activation exists");
                    // LIFO match within the current activation: same
                    // register, same slot, same value (§5.2 conditions 1+2).
                    if let Some(pos) = act
                        .saves
                        .iter()
                        .rposition(|s| s.reg == dst && s.slot == slot && s.value == value)
                    {
                        let save = act.saves.remove(pos);
                        self.pairs.insert(id, save.id);
                    }
                }
            }
            _ => {}
        }
    }

    /// Finishes detection, returning the verified
    /// `restore record -> save record` map.
    pub fn finish(self) -> HashMap<RecordId, RecordId> {
        self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, Executor, LiveEnv};

    const SAVE_RESTORE: &str = r"
        .text
        .func q
            push r1        ; 0: save
            push r2        ; 1: save
            movi r1, 5     ; 2: clobber
            movi r2, 6     ; 3
            pop r2         ; 4: restore
            pop r1         ; 5: restore
            ret            ; 6
        .endfunc
        .func main
            movi r1, 100   ; 7
            movi r2, 200   ; 8
            call q         ; 9
            halt           ; 10
        .endfunc
        ";

    fn run_detector(src: &str) -> HashMap<RecordId, RecordId> {
        let p = Arc::new(assemble(src).unwrap());
        let cands = PairCandidates::find(&p, 10);
        let mut det = PairDetector::new(cands);
        let mut exec = Executor::new(Arc::clone(&p));
        let mut env = LiveEnv::new(0);
        let mut id: RecordId = 0;
        while !exec.all_halted() {
            let (ev, _) = exec.step(0, &mut env).unwrap();
            det.on_event(&ev, id);
            id += 1;
        }
        det.finish()
    }

    #[test]
    fn static_candidates_found() {
        let p = assemble(SAVE_RESTORE).unwrap();
        let c = PairCandidates::find(&p, 10);
        assert!(c.is_save(0));
        assert!(c.is_save(1));
        assert!(c.is_restore(4));
        assert!(c.is_restore(5));
        assert!(!c.is_save(2));
        assert!(!c.is_restore(3));
    }

    #[test]
    fn max_save_limits_candidates() {
        let p = assemble(SAVE_RESTORE).unwrap();
        let c = PairCandidates::find(&p, 1);
        assert!(c.is_save(0));
        assert!(!c.is_save(1), "second push beyond MaxSave=1");
        assert!(c.is_restore(5), "pop adjacent to ret kept");
        assert!(!c.is_restore(4));
    }

    #[test]
    fn pairs_verified_dynamically() {
        let pairs = run_detector(SAVE_RESTORE);
        // Execution order: 7,8,9(call),0,1,2,3,4,5,6(ret),10.
        // ids:             0,1,2     ,3,4,5,6,7,8,9     ,10
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs.get(&7), Some(&4), "pop r2 pairs with push r2");
        assert_eq!(pairs.get(&8), Some(&3), "pop r1 pairs with push r1");
    }

    #[test]
    fn clobbered_value_rejects_pair() {
        // The value in the slot is overwritten between push and pop, so the
        // restored value differs and no pair is formed.
        let pairs = run_detector(
            r"
            .text
            .func q
                push r1        ; 0: candidate save
                mov  r3, sp    ; 1
                movi r4, 999   ; 2
                store r4, r3, 0 ; 3: smash the saved slot
                pop r1         ; 4: candidate restore (value mismatch)
                ret            ; 5
            .endfunc
            .func main
                movi r1, 7     ; 6
                call q         ; 7
                halt           ; 8
            .endfunc
            ",
        );
        assert!(pairs.is_empty(), "smashed slot must not verify: {pairs:?}");
    }

    #[test]
    fn mismatched_register_rejects_pair() {
        // push r1 ... pop r2: not a save/restore of the same register.
        let pairs = run_detector(
            r"
            .text
            .func q
                push r1   ; 0
                pop r2    ; 1
                ret       ; 2
            .endfunc
            .func main
                movi r1, 7 ; 3
                call q     ; 4
                halt       ; 5
            .endfunc
            ",
        );
        assert!(pairs.is_empty());
    }

    #[test]
    fn recursion_pairs_per_activation() {
        // Recursive function saving r1: each depth's push matches its own
        // pop, not a sibling's.
        let pairs = run_detector(
            r"
            .text
            .func f
                push r1          ; 0
                mov r1, r0       ; 1
                blei r0, 0, base ; 2
                subi r0, r0, 1   ; 3
                call f           ; 4
            base:
                pop r1           ; 5
                ret              ; 6
            .endfunc
            .func main
                movi r0, 2  ; 7
                movi r1, 50 ; 8
                call f      ; 9
                halt        ; 10
            .endfunc
            ",
        );
        assert_eq!(pairs.len(), 3, "three activations, three pairs: {pairs:?}");
    }
}
