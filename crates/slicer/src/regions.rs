//! Building code-exclusion regions from a slice (paper §4, Fig. 6(a)).
//!
//! "We identify all the exclusion code regions (shown as dashed boxes) for
//! each thread, and output such information to the special slice file. The
//! relogger leverages this file to generate the slice pinball."
//!
//! For each thread, the maximal runs of consecutive *non-slice* instruction
//! instances become half-open exclusion regions
//! `[startPc:sinstance:tid, endPc:einstance:tid)`. Synchronization and
//! thread-lifecycle instructions (`lock`, `unlock`, `cas`, `xadd`, `spawn`,
//! `join`, `halt`) are never excluded even when outside the slice: their
//! effect on the recorded schedule cannot be reproduced by injecting plain
//! register/memory side effects, and keeping them is what makes the region
//! pinball's schedule log remain a valid recipe for the slice pinball (our
//! substitute for PinPlay's syscall-style side-effect handling of such
//! events).

use std::collections::HashMap;

use minivm::{Instr, Pc, Tid};
use pinplay::ExclusionRegion;

use crate::global::GlobalTrace;
use crate::slice::Slice;
use crate::trace::TraceRecord;

/// End marker for a span that stays open to the end of the region; the
/// relogger flushes such spans with a final `Skip`.
pub const OPEN_END_PC: Pc = Pc::MAX;

/// Whether a record must stay in every slice pinball regardless of slice
/// membership: synchronization and thread-lifecycle effects cannot be
/// injected as plain register/memory side effects. Spin *retries* of
/// `lock`/`join` are excluded — they change no state, and only the
/// succeeding attempt matters for the schedule's validity.
pub fn is_force_included(r: &TraceRecord) -> bool {
    match r.instr {
        Instr::Unlock { .. }
        | Instr::Cas { .. }
        | Instr::AtomicAdd { .. }
        | Instr::Spawn { .. }
        | Instr::Halt => true,
        Instr::Lock { .. } | Instr::Join { .. } => !r.is_spin(),
        _ => false,
    }
}

/// Statistics about the exclusion computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExclusionStats {
    /// Instances kept because they are in the slice.
    pub in_slice: u64,
    /// Instances kept only because they are force-included sync/lifecycle
    /// instructions.
    pub forced: u64,
    /// Instances covered by exclusion regions.
    pub excluded: u64,
}

/// Computes per-thread exclusion regions for everything outside `slice`.
///
/// Returns the regions (ready for [`pinplay::relog()`]) and statistics. The
/// instance numbers are the region-relative instance counts recorded in the
/// trace, which is the numbering the relogger's replay of the same region
/// pinball reproduces.
pub fn exclusion_regions(
    trace: &GlobalTrace,
    slice: &Slice,
) -> (Vec<ExclusionRegion>, ExclusionStats) {
    // Thread-local views of the trace, in execution order (record ids are
    // the replay retire order, so ascending id = time).
    let mut per_thread: HashMap<Tid, Vec<&crate::trace::TraceRecord>> = HashMap::new();
    for r in trace.records() {
        per_thread.entry(r.tid).or_default().push(r);
    }
    for v in per_thread.values_mut() {
        v.sort_unstable_by_key(|r| r.id);
    }

    let mut stats = ExclusionStats::default();
    let mut regions = Vec::new();
    let mut tids: Vec<Tid> = per_thread.keys().copied().collect();
    tids.sort_unstable();

    for tid in tids {
        let recs = &per_thread[&tid];
        let mut open: Option<(Pc, u64)> = None;
        for r in recs.iter() {
            let keep = slice.records.contains(&r.id) || is_force_included(r);
            if keep {
                if slice.records.contains(&r.id) {
                    stats.in_slice += 1;
                } else {
                    stats.forced += 1;
                }
                if let Some((start_pc, start_instance)) = open.take() {
                    regions.push(ExclusionRegion {
                        tid,
                        start_pc,
                        start_instance,
                        end_pc: r.pc,
                        end_instance: r.instance,
                    });
                }
            } else {
                stats.excluded += 1;
                if open.is_none() {
                    open = Some((r.pc, r.instance));
                }
            }
        }
        if let Some((start_pc, start_instance)) = open {
            regions.push(ExclusionRegion {
                tid,
                start_pc,
                start_instance,
                end_pc: OPEN_END_PC,
                end_instance: u64::MAX,
            });
        }
    }
    (regions, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    use minivm::{Instr, LocVals, Reg};

    use crate::slice::{Criterion, Slice, SliceStats};

    fn rec(id: u64, tid: Tid, pc: Pc, instance: u64, instr: Instr) -> TraceRecord {
        TraceRecord {
            id,
            tid,
            pc,
            instance,
            instr,
            next_pc: pc + 1,
            uses: LocVals::new(),
            defs: LocVals::new(),
            spawned: None,
            cd_parent: None,
            line: 0,
        }
    }

    fn slice_of(ids: &[u64]) -> Slice {
        Slice {
            criterion: Criterion::Record { id: 0 },
            records: ids.iter().copied().collect::<HashSet<_>>(),
            data_edges: Vec::new(),
            control_edges: Vec::new(),
            stats: SliceStats::default(),
        }
    }

    #[test]
    fn gap_between_slice_records_becomes_region() {
        let recs = vec![
            rec(0, 0, 0, 1, Instr::Nop), // in slice
            rec(1, 0, 1, 1, Instr::Nop), // excluded
            rec(2, 0, 2, 1, Instr::Nop), // excluded
            rec(3, 0, 3, 1, Instr::Nop), // in slice
        ];
        let trace = crate::global::GlobalTrace::build(recs, 16, false);
        let (regions, stats) = exclusion_regions(&trace, &slice_of(&[0, 3]));
        assert_eq!(
            regions,
            vec![ExclusionRegion {
                tid: 0,
                start_pc: 1,
                start_instance: 1,
                end_pc: 3,
                end_instance: 1,
            }]
        );
        assert_eq!(stats.in_slice, 2);
        assert_eq!(stats.excluded, 2);
    }

    #[test]
    fn trailing_gap_gets_open_end() {
        let recs = vec![
            rec(0, 0, 0, 1, Instr::Nop),
            rec(1, 0, 1, 1, Instr::Nop), // excluded to the end
            rec(2, 0, 2, 1, Instr::Nop),
        ];
        let trace = crate::global::GlobalTrace::build(recs, 16, false);
        let (regions, _) = exclusion_regions(&trace, &slice_of(&[0]));
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].end_pc, OPEN_END_PC);
        assert_eq!(regions[0].start_pc, 1);
    }

    #[test]
    fn sync_instructions_split_regions() {
        let recs = vec![
            rec(0, 0, 0, 1, Instr::Nop),                   // in slice
            rec(1, 0, 1, 1, Instr::Nop),                   // excluded
            rec(2, 0, 2, 1, Instr::Lock { addr: Reg(1) }), // forced keep
            rec(3, 0, 3, 1, Instr::Nop),                   // excluded
            rec(4, 0, 4, 1, Instr::Halt),                  // forced keep
        ];
        let trace = crate::global::GlobalTrace::build(recs, 16, false);
        let (regions, stats) = exclusion_regions(&trace, &slice_of(&[0]));
        assert_eq!(regions.len(), 2, "lock splits the exclusion run");
        assert_eq!(regions[0].end_pc, 2);
        assert_eq!(regions[1].start_pc, 3);
        assert_eq!(regions[1].end_pc, 4);
        assert_eq!(stats.forced, 2);
    }

    #[test]
    fn per_thread_regions_are_independent() {
        let recs = vec![
            rec(0, 0, 0, 1, Instr::Nop), // t0 in slice
            rec(1, 1, 0, 1, Instr::Nop), // t1 excluded
            rec(2, 0, 1, 1, Instr::Nop), // t0 excluded
            rec(3, 1, 1, 1, Instr::Nop), // t1 in slice
        ];
        let trace = crate::global::GlobalTrace::build(recs, 16, false);
        let (regions, _) = exclusion_regions(&trace, &slice_of(&[0, 3]));
        assert_eq!(regions.len(), 2);
        assert!(regions.iter().any(|r| r.tid == 0 && r.start_pc == 1));
        assert!(regions
            .iter()
            .any(|r| r.tid == 1 && r.start_pc == 0 && r.end_pc == 1));
    }

    #[test]
    fn force_included_classification() {
        assert!(is_force_included(&rec(0, 0, 4, 1, Instr::Halt)));
        assert!(is_force_included(&rec(
            0,
            0,
            4,
            1,
            Instr::Spawn {
                dst: Reg(0),
                entry: 0,
                arg: Reg(1)
            }
        )));
        assert!(!is_force_included(&rec(0, 0, 4, 1, Instr::Nop)));
        assert!(!is_force_included(&rec(0, 0, 4, 1, Instr::Ret)));
        // A lock that advanced (acquired) is kept; a spin retry is not.
        let acquired = rec(0, 0, 4, 1, Instr::Lock { addr: Reg(1) });
        assert!(is_force_included(&acquired));
        let mut spin = acquired;
        spin.next_pc = spin.pc;
        assert!(!is_force_included(&spin));
    }
}
