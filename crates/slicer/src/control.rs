//! Online dynamic control-dependence detection (paper §5.1).
//!
//! The Xin–Zhang algorithm: each thread keeps, per call frame, a stack of
//! *open branch regions* `(branch record, immediate post-dominator pc)`.
//! When execution reaches a region's post-dominator, the region is closed
//! (popped); the dynamic control parent of every instruction is the branch
//! on top of the stack. Calls open a fresh frame whose instructions inherit
//! the *call site's* control parent (this is how all of `Q`'s statements
//! become control dependent on the predicate guarding the call in the
//! paper's Fig. 8 example); returns close the frame and every region still
//! open in it.
//!
//! Indirect jumps are branches too, but their post-dominators are only as
//! good as the CFG — which is refined with observed targets as execution
//! proceeds (see [`repro_cfg::Cfg::observe_indirect`]). The collector
//! therefore runs a *target-discovery* replay pass before the main
//! collection pass, so post-dominators already reflect every target the
//! region exercises (paper: "the refined CFG is used to compute the
//! immediate post-dominator for each basic block").

use minivm::{InsEvent, Instr, Pc, Tid};
use repro_cfg::Cfg;

use crate::trace::RecordId;

/// Sentinel post-dominator for regions that only close at function exit.
const OPEN_UNTIL_RETURN: Pc = Pc::MAX;

#[derive(Debug, Default)]
struct Frame {
    /// Control parent inherited from the call site.
    base: Option<RecordId>,
    /// Open branch regions: (branch record id, pc that closes the region).
    stack: Vec<(RecordId, Pc)>,
}

#[derive(Debug, Default)]
struct ThreadCd {
    frames: Vec<Frame>,
}

/// Tracks dynamic control dependences across all threads of one replay.
#[derive(Debug)]
pub struct ControlTracker {
    cfg: Cfg,
    threads: Vec<ThreadCd>,
    /// Whether to add observed indirect-jump edges to the CFG while
    /// tracking (leave on; off reproduces the paper's *imprecise* baseline).
    refine: bool,
}

impl ControlTracker {
    /// Creates a tracker over `cfg`.
    pub fn new(cfg: Cfg, refine: bool) -> ControlTracker {
        ControlTracker {
            cfg,
            threads: Vec::new(),
            refine,
        }
    }

    /// Read access to the (possibly refined) CFG.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Consumes the tracker, returning the refined CFG.
    pub fn into_cfg(self) -> Cfg {
        self.cfg
    }

    /// Feeds targets only (the discovery pre-pass): records indirect-jump
    /// edges without computing dependences.
    pub fn observe_targets(&mut self, ev: &InsEvent) {
        if ev.instr.is_indirect_jump() {
            self.cfg.observe_indirect(ev.pc, ev.next_pc);
        }
    }

    /// Processes one executed instruction (record id `id`) and returns its
    /// dynamic control parent.
    pub fn on_event(&mut self, ev: &InsEvent, id: RecordId) -> Option<RecordId> {
        let t = ev.tid as usize;
        if self.threads.len() <= t {
            self.threads.resize_with(t + 1, ThreadCd::default);
        }
        let td = &mut self.threads[t];
        if td.frames.is_empty() {
            td.frames.push(Frame::default());
        }

        // Close regions whose post-dominator we just reached.
        let frame = td.frames.last_mut().expect("frame pushed above");
        while matches!(frame.stack.last(), Some(&(_, ipd)) if ipd == ev.pc) {
            frame.stack.pop();
        }
        let parent = frame.stack.last().map(|&(b, _)| b).or(frame.base);

        match ev.instr {
            Instr::Br { .. } | Instr::BrI { .. } => {
                let ipd = self.cfg.ipostdom(ev.pc).unwrap_or(OPEN_UNTIL_RETURN);
                // A region that closes immediately at the fall-through would
                // pop on the very next instruction; still push it so the
                // taken path (if different) is covered.
                self.current_frame(ev.tid).stack.push((id, ipd));
            }
            Instr::JmpInd { .. } => {
                if self.refine {
                    self.cfg.observe_indirect(ev.pc, ev.next_pc);
                }
                // With an unrefined CFG the jump has no known successors and
                // no post-dominator below the exit: per the imprecise
                // baseline, *no* region is opened and the control dependence
                // is missed (the Fig. 7 problem). With a refined CFG the
                // convergence point is real and the region opens.
                let has_targets = self
                    .cfg
                    .function_of(ev.pc)
                    .is_some_and(|f| !f.successors(ev.pc).is_empty());
                if has_targets {
                    let ipd = self.cfg.ipostdom(ev.pc).unwrap_or(OPEN_UNTIL_RETURN);
                    self.current_frame(ev.tid).stack.push((id, ipd));
                }
            }
            Instr::Call { .. } | Instr::CallInd { .. } => {
                if self.refine && matches!(ev.instr, Instr::CallInd { .. }) {
                    self.cfg.observe_indirect(ev.pc, ev.next_pc);
                }
                self.threads[t].frames.push(Frame {
                    base: parent,
                    stack: Vec::new(),
                });
            }
            Instr::Ret => {
                // Close the frame and everything still open in it.
                let td = &mut self.threads[t];
                if td.frames.len() > 1 {
                    td.frames.pop();
                }
            }
            _ => {}
        }
        parent
    }

    fn current_frame(&mut self, tid: Tid) -> &mut Frame {
        self.threads[tid as usize]
            .frames
            .last_mut()
            .expect("thread has at least one frame")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, Executor, LiveEnv, Program};

    /// Runs a single-threaded program and returns (pc, cd_parent_pc) pairs.
    fn cd_trace(program: &Arc<Program>, refine: bool) -> Vec<(Pc, Option<Pc>)> {
        // Pass 1: discover indirect targets.
        let mut cfg = Cfg::build(program);
        {
            let mut exec = Executor::new(Arc::clone(program));
            let mut env = LiveEnv::new(0);
            while !exec.all_halted() {
                let (ev, _) = exec.step(0, &mut env).expect("no traps in test programs");
                if refine && ev.instr.is_indirect_jump() {
                    cfg.observe_indirect(ev.pc, ev.next_pc);
                }
            }
        }
        // Pass 2: track control dependences.
        let mut tracker = ControlTracker::new(cfg, refine);
        let mut exec = Executor::new(Arc::clone(program));
        let mut env = LiveEnv::new(0);
        let mut id: RecordId = 0;
        let mut pcs_by_id = Vec::new();
        let mut out = Vec::new();
        while !exec.all_halted() {
            let (ev, _) = exec.step(0, &mut env).unwrap();
            let parent = tracker.on_event(&ev, id);
            pcs_by_id.push(ev.pc);
            out.push((ev.pc, parent.map(|p| pcs_by_id[p as usize])));
            id += 1;
        }
        out
    }

    #[test]
    fn then_branch_controls_its_arm_only() {
        let p = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r0, 1       ; 0
                    beqi r0, 0, els  ; 1
                    movi r1, 10      ; 2 (CD on 1)
                    jmp join         ; 3 (CD on 1)
                els:
                    movi r1, 20      ; 4
                join:
                    print r1         ; 5 (no CD)
                    halt             ; 6
                .endfunc
                ",
            )
            .unwrap(),
        );
        let t = cd_trace(&p, true);
        let parent_of = |pc: Pc| t.iter().find(|(p2, _)| *p2 == pc).unwrap().1;
        assert_eq!(parent_of(0), None);
        assert_eq!(parent_of(2), Some(1));
        assert_eq!(parent_of(3), Some(1));
        assert_eq!(parent_of(5), None, "join point is past the region");
    }

    #[test]
    fn loop_iterations_depend_on_loop_branch() {
        let p = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r0, 2      ; 0
                top:
                    subi r0, r0, 1  ; 1
                    bgti r0, 0, top ; 2
                    halt            ; 3
                .endfunc
                ",
            )
            .unwrap(),
        );
        let t = cd_trace(&p, true);
        // Execution: 0, 1, 2(taken), 1, 2(not taken), 3.
        assert_eq!(t[0], (0, None));
        assert_eq!(t[1], (1, None), "first iteration unconditional");
        assert_eq!(t[3], (1, Some(2)), "second iteration depends on branch");
        assert_eq!(t[5].0, 3);
        assert_eq!(t[5].1, None, "halt is the branch's postdominator");
    }

    #[test]
    fn callee_inherits_call_site_parent() {
        let p = Arc::new(
            assemble(
                r"
                .text
                .func q
                    movi r2, 9   ; 0 : CD on the guarding branch
                    ret          ; 1
                .endfunc
                .func main
                    movi r0, 1       ; 2
                    beqi r0, 0, skip ; 3
                    call q           ; 4 (CD on 3)
                skip:
                    halt             ; 5
                .endfunc
                ",
            )
            .unwrap(),
        );
        let t = cd_trace(&p, true);
        let parent_of = |pc: Pc| t.iter().find(|(p2, _)| *p2 == pc).unwrap().1;
        assert_eq!(parent_of(4), Some(3), "call guarded by branch");
        assert_eq!(parent_of(0), Some(3), "callee body inherits the guard");
        assert_eq!(parent_of(1), Some(3));
        assert_eq!(parent_of(5), None);
    }

    /// The paper's Fig. 7 scenario: without refinement the switch dispatch
    /// yields no control dependence; with refinement the case body depends
    /// on the indirect jump.
    #[test]
    fn indirect_jump_cd_needs_refinement() {
        let src = r"
            .data
            table: .word @case_a, @case_b
            .text
            .func main
                movi r4, 2       ; 0  loop counter: run both cases
                movi r0, 0       ; 1  selector
            again:
                la r1, table     ; 2
                add r1, r1, r0   ; 3
                load r2, r1, 0   ; 4
                jmpind r2        ; 5
            case_a:
                movi r3, 1       ; 6  (CD on 5 when refined)
                jmp done         ; 7
            case_b:
                movi r3, 2       ; 8
            done:
                addi r0, r0, 1   ; 9
                subi r4, r4, 1   ; 10
                bgti r4, 0, again ; 11
                halt             ; 12
            .endfunc
            ";
        let p = Arc::new(assemble(src).unwrap());
        let refined = cd_trace(&p, true);
        let imprecise = cd_trace(&p, false);
        let parent_at =
            |t: &[(Pc, Option<Pc>)], pc: Pc| t.iter().find(|(p2, _)| *p2 == pc).unwrap().1;
        assert_eq!(
            parent_at(&refined, 6),
            Some(5),
            "refined CFG: case body control dependent on switch dispatch"
        );
        assert_eq!(
            parent_at(&imprecise, 6),
            None,
            "unrefined CFG: the control dependence is missed (Fig. 7)"
        );
        // case_b exercised on the second iteration.
        assert_eq!(parent_at(&refined, 8), Some(5));
    }
}

#[cfg(test)]
mod nesting_tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, Executor, LiveEnv, Program};

    fn cd_pairs(program: &Arc<Program>) -> Vec<(Pc, Option<Pc>)> {
        let cfg = Cfg::build(program);
        let mut tracker = ControlTracker::new(cfg, true);
        let mut exec = Executor::new(Arc::clone(program));
        let mut env = LiveEnv::new(0);
        let mut pcs_by_id = Vec::new();
        let mut out = Vec::new();
        while !exec.all_halted() {
            let (ev, _) = exec.step(0, &mut env).unwrap();
            let parent = tracker.on_event(&ev, pcs_by_id.len() as RecordId);
            pcs_by_id.push(ev.pc);
            out.push((ev.pc, parent.map(|p| pcs_by_id[p as usize])));
        }
        out
    }

    /// Branch regions inside a recursive function must not leak across
    /// activations: each depth's guarded body depends on its *own*
    /// branch instance, and the frame pop on `ret` closes everything.
    #[test]
    fn recursion_isolates_branch_regions_per_activation() {
        let p = Arc::new(
            assemble(
                r"
                .text
                .func f
                    blei r0, 0, base  ; 0
                    subi r0, r0, 1    ; 1 (CD on 0)
                    call f            ; 2 (CD on 0)
                base:
                    ret               ; 3
                .endfunc
                .func main
                    movi r0, 2        ; 4
                    call f            ; 5
                    movi r1, 9        ; 6 (no CD: after the call returns)
                    halt              ; 7
                .endfunc
                ",
            )
            .unwrap(),
        );
        let t = cd_pairs(&p);
        // The statement after the outer call must not inherit any callee
        // branch region.
        let after_call = t.iter().find(|(pc, _)| *pc == 6).unwrap();
        assert_eq!(after_call.1, None, "{t:?}");
        // Each recursive body instruction is CD on a branch at pc 0.
        for (pc, parent) in &t {
            if *pc == 1 || *pc == 2 {
                assert_eq!(*parent, Some(0), "{t:?}");
            }
        }
    }

    /// Nested branches: the inner region closes first; instructions after
    /// the inner join but before the outer join revert to the outer branch.
    #[test]
    fn nested_branch_regions_pop_in_order() {
        let p = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r0, 1        ; 0
                    beqi r0, 0, outer ; 1
                    movi r1, 1        ; 2 (CD on 1)
                    beqi r1, 0, inner ; 3 (CD on 1)
                    movi r2, 5        ; 4 (CD on 3)
                inner:
                    movi r3, 6        ; 5 (CD on 1: inner region closed)
                outer:
                    halt              ; 6 (no CD)
                .endfunc
                ",
            )
            .unwrap(),
        );
        let t = cd_pairs(&p);
        let parent_of = |pc: Pc| t.iter().find(|(p2, _)| *p2 == pc).unwrap().1;
        assert_eq!(parent_of(2), Some(1));
        assert_eq!(parent_of(4), Some(3));
        assert_eq!(parent_of(5), Some(1), "inner popped, outer still open");
        assert_eq!(parent_of(6), None);
    }
}
