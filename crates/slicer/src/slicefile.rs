//! Slice files (paper §4).
//!
//! "To enable generation of the slice pinball, we output a special slice
//! file which, in addition to the normal slice file, also identifies the
//! exclusion code regions." A [`SliceFile`] is that artifact: the slice's
//! statement instances and dependence edges (the *normal* part, which the
//! GUI browses) plus the per-thread exclusion regions (the *special* part,
//! which the relogger consumes). Saving a slice to disk is what makes it
//! reusable "across multiple debug sessions" without re-collecting.

use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use minivm::{Pc, Tid};
use pinplay::ExclusionRegion;

use crate::slice::{Criterion, DataEdge, Slice, SliceStats};
use crate::trace::RecordId;

/// Magic bytes opening a binser-encoded slice file. Legacy slice files
/// (compressed JSON) have no magic and are auto-detected by its absence.
pub const SLICE_MAGIC: &[u8; 6] = b"DRSF1\n";

/// A statement instance of the slice, self-describing (usable without the
/// original trace in memory).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceStatement {
    /// Record id in the region trace.
    pub id: RecordId,
    /// Executing thread.
    pub tid: Tid,
    /// Program point.
    pub pc: Pc,
    /// Region-relative instance count.
    pub instance: u64,
    /// Source line (0 when unknown).
    pub line: u32,
    /// Disassembled instruction text.
    pub text: String,
}

/// The on-disk slice artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceFile {
    /// Program name (matches the pinball metadata).
    pub program: String,
    /// The criterion the slice was computed for.
    pub criterion: Criterion,
    /// Statement instances, in execution order.
    pub statements: Vec<SliceStatement>,
    /// Data-dependence edges.
    pub data_edges: Vec<DataEdge>,
    /// Control-dependence edges (dependent → branch).
    pub control_edges: Vec<(RecordId, RecordId)>,
    /// The exclusion code regions for the relogger (the "special" part).
    pub exclusions: Vec<ExclusionRegion>,
}

impl SliceFile {
    /// Builds the artifact from a computed slice and its trace context.
    pub fn build(
        program_name: &str,
        slice: &Slice,
        trace: &crate::global::GlobalTrace,
        exclusions: Vec<ExclusionRegion>,
    ) -> SliceFile {
        let mut statements: Vec<SliceStatement> = slice
            .records
            .iter()
            .filter_map(|&id| {
                let r = trace.record(id)?;
                Some(SliceStatement {
                    id,
                    tid: r.tid,
                    pc: r.pc,
                    instance: r.instance,
                    line: r.line,
                    text: r.instr.to_string(),
                })
            })
            .collect();
        statements.sort_by_key(|s| trace.position(s.id));
        SliceFile {
            program: program_name.to_owned(),
            criterion: slice.criterion,
            statements,
            data_edges: slice.data_edges.clone(),
            control_edges: slice.control_edges.clone(),
            exclusions,
        }
    }

    /// Reconstructs an in-memory [`Slice`] (without traversal statistics)
    /// for browsing against the same trace.
    pub fn to_slice(&self) -> Slice {
        Slice {
            criterion: self.criterion,
            records: self.statements.iter().map(|s| s.id).collect(),
            data_edges: self.data_edges.clone(),
            control_edges: self.control_edges.clone(),
            stats: SliceStats::default(),
        }
    }

    /// Serializes the slice file: the [`SLICE_MAGIC`] prefix, then the
    /// LZSS-compressed [`pinzip::binser`] encoding — the same binary
    /// record codec the v3 pinball container and the drserve wire use.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = pinzip::binser::to_vec(self);
        let compressed = pinzip::compress(&payload);
        let mut out = Vec::with_capacity(SLICE_MAGIC.len() + compressed.len());
        out.extend_from_slice(SLICE_MAGIC);
        out.extend_from_slice(&compressed);
        out
    }

    /// Deserializes a slice file, auto-detecting the format: bytes opening
    /// with [`SLICE_MAGIC`] decode as compressed binser; anything else
    /// takes the legacy path (compressed JSON, the pre-magic format).
    ///
    /// # Errors
    ///
    /// Returns [`SliceFileError`] on corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<SliceFile, SliceFileError> {
        if let Some(rest) = bytes.strip_prefix(SLICE_MAGIC) {
            let payload = pinzip::decompress(rest).map_err(|e| SliceFileError(e.to_string()))?;
            return pinzip::binser::from_slice(&payload).map_err(|e| SliceFileError(e.to_string()));
        }
        let json = pinzip::decompress(bytes).map_err(|e| SliceFileError(e.to_string()))?;
        serde_json::from_slice(&json).map_err(|e| SliceFileError(e.to_string()))
    }

    /// Writes the slice file to disk.
    ///
    /// # Errors
    ///
    /// Returns [`SliceFileError`] on i/o failure.
    pub fn save(&self, path: &Path) -> Result<(), SliceFileError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| SliceFileError(e.to_string()))
    }

    /// Reads a slice file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`SliceFileError`] on i/o failure or corrupt content.
    pub fn load(path: &Path) -> Result<SliceFile, SliceFileError> {
        let bytes = std::fs::read(path).map_err(|e| SliceFileError(e.to_string()))?;
        SliceFile::from_bytes(&bytes)
    }
}

/// Error loading or saving a slice file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceFileError(String);

impl fmt::Display for SliceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice file error: {}", self.0)
    }
}

impl std::error::Error for SliceFileError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use minivm::{assemble, LiveEnv, RoundRobin};
    use pinplay::record_whole_program;

    use crate::collect::{SliceSession, SlicerOptions};

    fn session_and_slice() -> (SliceSession, Slice) {
        let program = Arc::new(
            assemble(
                r"
                .text
                .func main
                    movi r1, 2
                    movi r9, 7
                    addi r2, r1, 3
                    halt
                .endfunc
                ",
            )
            .unwrap(),
        );
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(0),
            10_000,
            "slicefile-test",
        )
        .unwrap();
        let session =
            SliceSession::collect(Arc::clone(&program), &rec.pinball, SlicerOptions::default());
        let crit = session.last_at_pc(2).unwrap().id;
        let slice = session.slice(Criterion::Record { id: crit });
        (session, slice)
    }

    #[test]
    fn build_and_roundtrip() {
        let (session, slice) = session_and_slice();
        let (exclusions, _) = session.exclusion_regions(&slice);
        let sf = SliceFile::build("demo", &slice, session.trace(), exclusions.clone());
        assert_eq!(sf.statements.len(), slice.len());
        assert_eq!(sf.exclusions, exclusions);

        let bytes = sf.to_bytes();
        let back = SliceFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, sf);
    }

    #[test]
    fn statements_in_execution_order_with_text() {
        let (session, slice) = session_and_slice();
        let sf = SliceFile::build("demo", &slice, session.trace(), Vec::new());
        let positions: Vec<_> = sf
            .statements
            .iter()
            .map(|s| session.trace().position(s.id).unwrap())
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        assert!(sf.statements.iter().any(|s| s.text.contains("movi r1, 2")));
    }

    #[test]
    fn to_slice_reconstructs_membership() {
        let (session, slice) = session_and_slice();
        let (exclusions, _) = session.exclusion_regions(&slice);
        let sf = SliceFile::build("demo", &slice, session.trace(), exclusions);
        let back = sf.to_slice();
        assert_eq!(back.records, slice.records);
        assert_eq!(back.data_edges, slice.data_edges);
    }

    #[test]
    fn file_roundtrip() {
        let (session, slice) = session_and_slice();
        let sf = SliceFile::build("demo", &slice, session.trace(), Vec::new());
        let dir = std::env::temp_dir().join("slicer-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.slice");
        sf.save(&path).unwrap();
        let back = SliceFile::load(&path).unwrap();
        assert_eq!(back, sf);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_bytes_rejected() {
        assert!(SliceFile::from_bytes(&[9, 9, 9]).is_err());
        // A magic prefix followed by garbage must also fail typed.
        let mut bad = SLICE_MAGIC.to_vec();
        bad.extend_from_slice(&[9, 9, 9]);
        assert!(SliceFile::from_bytes(&bad).is_err());
    }

    #[test]
    fn legacy_json_slice_files_still_load() {
        let (session, slice) = session_and_slice();
        let (exclusions, _) = session.exclusion_regions(&slice);
        let sf = SliceFile::build("demo", &slice, session.trace(), exclusions);
        // The pre-magic format: LZSS over the JSON encoding.
        let legacy = pinzip::compress(&serde_json::to_vec(&sf).unwrap());
        assert!(!legacy.starts_with(SLICE_MAGIC));
        assert_eq!(SliceFile::from_bytes(&legacy).unwrap(), sf);
        // And the current format is both tagged and smaller.
        let current = sf.to_bytes();
        assert!(current.starts_with(SLICE_MAGIC));
        assert_eq!(SliceFile::from_bytes(&current).unwrap(), sf);
    }
}
