//! # slicer — replay-integrated dynamic slicing for multi-threaded programs
//!
//! The primary contribution of the DrDebug paper (CGO 2014), reproduced over
//! the mini-VM substrate:
//!
//! * [`collect`] — replays a region pinball and gathers per-thread def/use
//!   traces (paper §3 step i), merging them into a fully ordered
//!   [`global::GlobalTrace`] that honours program order and
//!   shared-memory access order (step ii), with thread clustering for LP
//!   locality;
//! * [`slice`](mod@slice) — backward traversal of the global trace with Limited
//!   Preprocessing block skipping (step iii), producing the dynamic
//!   dependence graph the DrDebug GUI lets users navigate;
//! * [`index`] — the reusable dependence index: the full dependence graph
//!   built once per `(GlobalTrace, SliceOptions)`, answering every
//!   subsequent slice criterion with a pure BFS (the cyclic-debugging hot
//!   path);
//! * [`control`] — dynamic control dependences via the Xin–Zhang online
//!   algorithm over a CFG refined with observed indirect-jump targets
//!   (§5.1's precision fix);
//! * [`pairs`] — save/restore pair detection and the §5.2 spurious-
//!   dependence bypass;
//! * [`regions`] — the slice → code-exclusion-region builder feeding
//!   PinPlay-style relogging, which yields the *slice pinball* whose replay
//!   skips everything outside the slice (§4).
//!
//! # Example: slice a failing assertion
//!
//! ```
//! use std::sync::Arc;
//! use minivm::{assemble, LiveEnv, RoundRobin};
//! use pinplay::record_whole_program;
//! use slicer::{Criterion, SliceSession, SlicerOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(assemble(
//!     r"
//!     .text
//!     .func main
//!         movi r1, 1      ; relevant
//!         movi r9, 7      ; irrelevant
//!         subi r1, r1, 1
//!         assert r1       ; fails: r1 == 0
//!     .endfunc
//!     ",
//! )?);
//! let rec = record_whole_program(
//!     &program,
//!     &mut RoundRobin::new(8),
//!     &mut LiveEnv::new(0),
//!     10_000,
//!     "doc",
//! )?;
//! let session = SliceSession::collect(Arc::clone(&program), &rec.pinball, SlicerOptions::default());
//! let failure = session.failure_record().expect("trace not empty").id;
//! let slice = session.slice(Criterion::Record { id: failure });
//! assert_eq!(slice.len(), 3); // movi r1 / subi / assert — not movi r9
//! # Ok(())
//! # }
//! ```

pub mod collect;
pub mod control;
pub mod global;
pub mod index;
pub mod metrics;
pub mod pairs;
pub mod regions;
pub mod slice;
pub mod slicefile;
pub mod trace;

pub use collect::{SliceSession, SlicerOptions};
pub use control::ControlTracker;
pub use global::{
    is_valid_topological_order, BlockSummary, BuildMetrics, GlobalTrace, DEFAULT_BLOCK_SIZE,
};
pub use index::{compute_slice_indexed, DepIndex, IndexBuildStats};
pub use metrics::{SliceMetrics, StageMetrics};
pub use pairs::{PairCandidates, PairDetector};
pub use regions::{exclusion_regions, is_force_included, ExclusionStats, OPEN_END_PC};
pub use slice::{
    compute_slice, compute_slice_lp, compute_slice_naive, compute_slice_sparse, Criterion,
    DataEdge, Slice, SliceOptions, SliceStats, DEFAULT_PARALLEL_THRESHOLD,
};
pub use slicefile::{SliceFile, SliceFileError, SliceStatement, SLICE_MAGIC};
pub use trace::{LocKey, RecordId, TraceRecord};
