//! Sources of environmental non-determinism.
//!
//! In the paper's setting, Pin observes system calls and PinPlay's logger
//! records their outcomes so the replayer can inject them (paper §1, §2).
//! Here the same boundary is the [`Environment`] trait: a *live* run draws
//! syscall results from a [`LiveEnv`]; a *replayed* run draws them from a
//! [`ScriptedEnv`] filled out of a pinball.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::isa::SysCall;
use crate::machine::Tid;

/// Supplier of syscall results for the VM.
pub trait Environment {
    /// Produces the result of `call` issued by thread `tid`.
    fn syscall(&mut self, tid: Tid, call: SysCall) -> i64;
}

/// The "real world": seeded randomness, a monotonic clock, and a program
/// input stream.
///
/// Although the RNG is seeded (so tests can be reproducible end-to-end), the
/// values it produces are still *logically* non-deterministic from the
/// replayer's point of view: replay never re-queries a `LiveEnv`.
#[derive(Debug)]
pub struct LiveEnv {
    rng: StdRng,
    clock: i64,
    inputs: VecDeque<i64>,
    /// Result returned by `ReadInput` once `inputs` is exhausted.
    pub input_eof: i64,
}

impl LiveEnv {
    /// Creates an environment with the given RNG seed and no program input.
    pub fn new(seed: u64) -> LiveEnv {
        LiveEnv {
            rng: StdRng::seed_from_u64(seed),
            clock: 0,
            inputs: VecDeque::new(),
            input_eof: -1,
        }
    }

    /// Creates an environment with a program input stream.
    pub fn with_inputs(seed: u64, inputs: impl IntoIterator<Item = i64>) -> LiveEnv {
        LiveEnv {
            inputs: inputs.into_iter().collect(),
            ..LiveEnv::new(seed)
        }
    }
}

impl Environment for LiveEnv {
    fn syscall(&mut self, _tid: Tid, call: SysCall) -> i64 {
        match call {
            SysCall::ReadInput => self.inputs.pop_front().unwrap_or(self.input_eof),
            SysCall::Rand => self.rng.gen::<i64>(),
            SysCall::Time => {
                // Advance by a pseudo-random stride so timing-dependent code
                // paths actually vary between runs.
                self.clock += 1 + (self.rng.gen::<u8>() as i64);
                self.clock
            }
        }
    }
}

/// Replays syscall results recorded in a pinball, per thread, in order.
#[derive(Debug, Default, Clone)]
pub struct ScriptedEnv {
    queues: Vec<VecDeque<i64>>,
}

impl ScriptedEnv {
    /// Creates an empty scripted environment.
    pub fn new() -> ScriptedEnv {
        ScriptedEnv::default()
    }

    /// Appends a recorded syscall result for `tid`.
    pub fn push(&mut self, tid: Tid, value: i64) {
        let t = tid as usize;
        if self.queues.len() <= t {
            self.queues.resize_with(t + 1, VecDeque::new);
        }
        self.queues[t].push_back(value);
    }

    /// Remaining unconsumed results across all threads.
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// The remaining unconsumed results, per thread, in consumption order —
    /// the serializable form a replay checkpoint embeds.
    pub fn queues(&self) -> Vec<Vec<i64>> {
        self.queues
            .iter()
            .map(|q| q.iter().copied().collect())
            .collect()
    }

    /// Rebuilds an environment from [`ScriptedEnv::queues`] output.
    pub fn from_queues(queues: Vec<Vec<i64>>) -> ScriptedEnv {
        ScriptedEnv {
            queues: queues.into_iter().map(VecDeque::from).collect(),
        }
    }
}

impl Environment for ScriptedEnv {
    /// # Panics
    ///
    /// Panics when a thread issues more syscalls than were recorded — that
    /// means replay has diverged from the log, which violates the replayer's
    /// core invariant and must not be papered over.
    fn syscall(&mut self, tid: Tid, call: SysCall) -> i64 {
        self.queues
            .get_mut(tid as usize)
            .and_then(VecDeque::pop_front)
            .unwrap_or_else(|| {
                panic!("replay divergence: no logged result for {call} on thread {tid}")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_env_reads_inputs_then_eof() {
        let mut env = LiveEnv::with_inputs(7, [10, 20]);
        assert_eq!(env.syscall(0, SysCall::ReadInput), 10);
        assert_eq!(env.syscall(0, SysCall::ReadInput), 20);
        assert_eq!(env.syscall(0, SysCall::ReadInput), -1);
    }

    #[test]
    fn live_env_clock_is_monotonic() {
        let mut env = LiveEnv::new(1);
        let a = env.syscall(0, SysCall::Time);
        let b = env.syscall(0, SysCall::Time);
        assert!(b > a);
    }

    #[test]
    fn live_env_rand_is_seed_deterministic() {
        let mut a = LiveEnv::new(42);
        let mut b = LiveEnv::new(42);
        assert_eq!(a.syscall(0, SysCall::Rand), b.syscall(0, SysCall::Rand));
    }

    #[test]
    fn scripted_env_replays_per_thread() {
        let mut env = ScriptedEnv::new();
        env.push(1, 100);
        env.push(0, 5);
        env.push(1, 200);
        assert_eq!(env.syscall(1, SysCall::Rand), 100);
        assert_eq!(env.syscall(0, SysCall::ReadInput), 5);
        assert_eq!(env.syscall(1, SysCall::Time), 200);
        assert_eq!(env.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "replay divergence")]
    fn scripted_env_panics_on_divergence() {
        let mut env = ScriptedEnv::new();
        let _ = env.syscall(0, SysCall::Rand);
    }
}
