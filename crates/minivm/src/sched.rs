//! Thread schedulers.
//!
//! The scheduler is the second source of non-determinism PinPlay-style
//! logging must capture (paper §1: "thread schedule"). Live runs use
//! [`RoundRobin`] or [`RandomSched`]; replay uses a scripted schedule driven
//! directly by the pinplay replayer; Maple's active scheduler (in the `maple`
//! crate) implements this same trait with controllable priorities.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::exec::Executor;
use crate::machine::Tid;

/// Picks which thread retires the next instruction.
pub trait Scheduler {
    /// Chooses a runnable thread, or `None` when no thread is runnable.
    fn pick(&mut self, exec: &Executor) -> Option<Tid>;
}

/// Deterministic round-robin with a fixed quantum of instructions.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    quantum: u64,
    current: Tid,
    left: u64,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(quantum: u64) -> RoundRobin {
        assert!(quantum > 0, "quantum must be positive");
        RoundRobin {
            quantum,
            current: 0,
            left: quantum,
        }
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, exec: &Executor) -> Option<Tid> {
        let n = exec.num_threads() as Tid;
        if n == 0 {
            return None;
        }
        // Rotate when the quantum is exhausted or the current thread cannot
        // run; scan at most one full cycle.
        if self.left == 0 || !exec.thread(self.current % n).is_runnable() {
            self.left = self.quantum;
            let start = self.current % n;
            for i in 1..=n {
                let cand = (start + i) % n;
                if exec.thread(cand).is_runnable() {
                    self.current = cand;
                    self.left -= 1;
                    return Some(cand);
                }
            }
            return None;
        }
        let cand = self.current % n;
        self.left -= 1;
        Some(cand)
    }
}

/// Seeded random scheduler: after each instruction, switches to a uniformly
/// random runnable thread with probability `1/switch_period`, exposing
/// interleaving-dependent bugs the way stress testing does.
#[derive(Debug)]
pub struct RandomSched {
    rng: StdRng,
    switch_period: u32,
    current: Option<Tid>,
}

impl RandomSched {
    /// Creates a random scheduler; on average a context switch happens every
    /// `switch_period` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `switch_period` is zero.
    pub fn new(seed: u64, switch_period: u32) -> RandomSched {
        assert!(switch_period > 0, "switch_period must be positive");
        RandomSched {
            rng: StdRng::seed_from_u64(seed),
            switch_period,
            current: None,
        }
    }
}

impl Scheduler for RandomSched {
    fn pick(&mut self, exec: &Executor) -> Option<Tid> {
        let runnable: Vec<Tid> = exec.runnable().collect();
        if runnable.is_empty() {
            return None;
        }
        let stay = match self.current {
            Some(c) if runnable.contains(&c) => self.rng.gen_range(0..self.switch_period) != 0,
            _ => false,
        };
        let pick = if stay {
            self.current.unwrap()
        } else {
            runnable[self.rng.gen_range(0..runnable.len())]
        };
        self.current = Some(pick);
        Some(pick)
    }
}

/// Replays a fixed schedule: a sequence of `(tid, steps)` runs, exactly as
/// recorded in a pinball's schedule log.
#[derive(Debug, Clone)]
pub struct ScriptedSched {
    runs: Vec<(Tid, u64)>,
    pos: usize,
    used: u64,
}

impl ScriptedSched {
    /// Creates a scheduler replaying `runs` in order.
    pub fn new(runs: Vec<(Tid, u64)>) -> ScriptedSched {
        ScriptedSched {
            runs,
            pos: 0,
            used: 0,
        }
    }

    /// Whether the script has been fully consumed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.runs.len()
    }
}

impl Scheduler for ScriptedSched {
    fn pick(&mut self, _exec: &Executor) -> Option<Tid> {
        while self.pos < self.runs.len() {
            let (tid, steps) = self.runs[self.pos];
            if self.used < steps {
                self.used += 1;
                return Some(tid);
            }
            self.pos += 1;
            self.used = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crate::builder::ProgramBuilder;
    use crate::env::LiveEnv;
    use crate::isa::{Instr, Reg};

    fn two_thread_exec() -> Executor {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let w = b.label();
        b.ins_to(
            Instr::Spawn {
                dst: Reg(1),
                entry: 0,
                arg: Reg(0),
            },
            w,
        );
        for _ in 0..50 {
            b.ins(Instr::Nop);
        }
        b.ins(Instr::Halt);
        b.end_func();
        b.begin_func("worker");
        b.bind(w);
        for _ in 0..50 {
            b.ins(Instr::Nop);
        }
        b.ins(Instr::Halt);
        b.end_func();
        let mut exec = Executor::new(Arc::new(b.finish().unwrap()));
        let mut env = LiveEnv::new(0);
        exec.step(0, &mut env).unwrap(); // spawn
        exec
    }

    #[test]
    fn round_robin_alternates_with_quantum() {
        let exec = two_thread_exec();
        let mut rr = RoundRobin::new(3);
        let picks: Vec<Tid> = (0..9).map(|_| rr.pick(&exec).unwrap()).collect();
        assert_eq!(picks, vec![0, 0, 0, 1, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn round_robin_skips_halted() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.ins(Instr::Halt);
        b.end_func();
        let mut exec = Executor::new(Arc::new(b.finish().unwrap()));
        let mut env = LiveEnv::new(0);
        exec.step(0, &mut env).unwrap();
        let mut rr = RoundRobin::new(2);
        assert_eq!(rr.pick(&exec), None);
    }

    #[test]
    fn random_sched_is_seed_deterministic() {
        let exec = two_thread_exec();
        let mut a = RandomSched::new(9, 4);
        let mut c = RandomSched::new(9, 4);
        let pa: Vec<Tid> = (0..64).map(|_| a.pick(&exec).unwrap()).collect();
        let pc: Vec<Tid> = (0..64).map(|_| c.pick(&exec).unwrap()).collect();
        assert_eq!(pa, pc);
        assert!(pa.contains(&0) && pa.contains(&1), "both threads scheduled");
    }

    #[test]
    fn scripted_sched_replays_runs() {
        let exec = two_thread_exec();
        let mut s = ScriptedSched::new(vec![(1, 2), (0, 1), (1, 1)]);
        let picks: Vec<Option<Tid>> = (0..5).map(|_| s.pick(&exec)).collect();
        assert_eq!(picks, vec![Some(1), Some(1), Some(0), Some(1), None]);
        assert!(s.exhausted());
    }
}
