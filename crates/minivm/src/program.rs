//! Program images: code, data, functions, and source mapping.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::isa::{Addr, Instr, Pc};

/// Base address of the global data segment.
pub const DATA_BASE: Addr = 0x1000;

/// Base address from which per-thread stacks grow downwards.
/// Thread `t`'s stack occupies `[STACK_BASE - (t+1)*STACK_WORDS, STACK_BASE - t*STACK_WORDS)`.
pub const STACK_BASE: Addr = 0x10_0000;

/// Words of stack reserved per thread.
pub const STACK_WORDS: Addr = 0x2000;

/// A function in the program image: a contiguous range of instructions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Function name as written in the assembly source.
    pub name: String,
    /// First instruction of the function.
    pub entry: Pc,
    /// One past the last instruction of the function.
    pub end: Pc,
}

impl Function {
    /// Whether `pc` lies inside this function's body.
    pub fn contains(&self, pc: Pc) -> bool {
        pc >= self.entry && pc < self.end
    }
}

/// Source position of an instruction, for user-facing listings and the
/// slice browser.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrcLoc {
    /// Source line in the assembly file (1-based); 0 when unknown.
    pub line: u32,
    /// Index into [`Program::functions`] of the enclosing function;
    /// `u32::MAX` when outside any function.
    pub func: u32,
}

/// A complete, executable program image.
///
/// Built by the [assembler](crate::asm) or programmatically via
/// [`ProgramBuilder`](crate::builder::ProgramBuilder).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// The code image; `Pc` values index into this vector.
    pub code: Vec<Instr>,
    /// Per-instruction source mapping, same length as `code`.
    pub src: Vec<SrcLoc>,
    /// Functions, sorted by entry pc.
    pub functions: Vec<Function>,
    /// Initial contents of the data segment, keyed by absolute address.
    pub data: BTreeMap<Addr, i64>,
    /// Named data symbols (label -> absolute address).
    pub symbols: BTreeMap<String, Addr>,
    /// Named code labels (label -> pc), kept from the assembly source so
    /// tools and tests can reference program points robustly.
    #[serde(default)]
    pub labels: BTreeMap<String, Pc>,
    /// Entry point of the main thread.
    pub entry: Pc,
}

impl Program {
    /// Returns the instruction at `pc`, or `None` past the end of the image.
    #[inline]
    pub fn fetch(&self, pc: Pc) -> Option<&Instr> {
        self.code.get(pc as usize)
    }

    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the image contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The function containing `pc`, if any.
    pub fn function_at(&self, pc: Pc) -> Option<&Function> {
        let idx = self
            .functions
            .partition_point(|f| f.entry <= pc)
            .checked_sub(1)?;
        let f = &self.functions[idx];
        f.contains(pc).then_some(f)
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Address of a named data symbol.
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).copied()
    }

    /// Pc of a named code label.
    pub fn label(&self, name: &str) -> Option<Pc> {
        self.labels.get(name).copied()
    }

    /// A human-readable label for `pc`: `function+offset`.
    pub fn describe_pc(&self, pc: Pc) -> String {
        match self.function_at(pc) {
            Some(f) => format!("{}+{}", f.name, pc - f.entry),
            None => format!("{pc:#x}"),
        }
    }

    /// Source line for `pc`, or 0 when unknown.
    pub fn line_of(&self, pc: Pc) -> u32 {
        self.src.get(pc as usize).map_or(0, |s| s.line)
    }

    /// Validates structural invariants of the image.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] when a branch targets a pc outside the
    /// image, the source map length disagrees with the code length, function
    /// ranges are malformed, or the entry point is out of range.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.src.len() != self.code.len() {
            return Err(ProgramError::SourceMapLength {
                code: self.code.len(),
                src: self.src.len(),
            });
        }
        let len = self.code.len() as Pc;
        if self.entry >= len && len > 0 {
            return Err(ProgramError::BadEntry { entry: self.entry });
        }
        for (pc, ins) in self.code.iter().enumerate() {
            let check = |t: Pc| -> Result<(), ProgramError> {
                if t >= len {
                    Err(ProgramError::BadTarget {
                        pc: pc as Pc,
                        target: t,
                    })
                } else {
                    Ok(())
                }
            };
            match *ins {
                Instr::Jmp { target }
                | Instr::Br { target, .. }
                | Instr::BrI { target, .. }
                | Instr::Call { target } => check(target)?,
                Instr::Spawn { entry, .. } => check(entry)?,
                _ => {}
            }
        }
        for f in &self.functions {
            if f.entry > f.end || f.end > len {
                return Err(ProgramError::BadFunction {
                    name: f.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Renders a disassembly listing with function headers, used by the
    /// debugger's `list` command.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (pc, ins) in self.code.iter().enumerate() {
            let pc = pc as Pc;
            if let Some(f) = self.functions.iter().find(|f| f.entry == pc) {
                out.push_str(&format!("{}:\n", f.name));
            }
            out.push_str(&format!("  {pc:>5}  {ins}\n"));
        }
        out
    }
}

/// Structural validation errors for program images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A control-flow target lies outside the code image.
    BadTarget {
        /// The instruction with the bad target.
        pc: Pc,
        /// The out-of-range target.
        target: Pc,
    },
    /// The source map and code image have different lengths.
    SourceMapLength {
        /// Code image length.
        code: usize,
        /// Source map length.
        src: usize,
    },
    /// A function's range is inverted or extends past the image.
    BadFunction {
        /// Name of the malformed function.
        name: String,
    },
    /// The entry point is outside the image.
    BadEntry {
        /// The offending entry pc.
        entry: Pc,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BadTarget { pc, target } => {
                write!(f, "instruction at pc {pc} targets out-of-range pc {target}")
            }
            ProgramError::SourceMapLength { code, src } => {
                write!(f, "source map length {src} differs from code length {code}")
            }
            ProgramError::BadFunction { name } => {
                write!(f, "function `{name}` has a malformed range")
            }
            ProgramError::BadEntry { entry } => write!(f, "entry point {entry} is out of range"),
        }
    }
}

impl std::error::Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    fn tiny() -> Program {
        Program {
            code: vec![
                Instr::MovI {
                    dst: Reg(0),
                    imm: 1,
                },
                Instr::Halt,
            ],
            src: vec![SrcLoc { line: 1, func: 0 }, SrcLoc { line: 2, func: 0 }],
            functions: vec![Function {
                name: "main".into(),
                entry: 0,
                end: 2,
            }],
            data: BTreeMap::new(),
            symbols: BTreeMap::new(),
            labels: BTreeMap::new(),
            entry: 0,
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut p = tiny();
        p.code[0] = Instr::Jmp { target: 99 };
        assert_eq!(
            p.validate(),
            Err(ProgramError::BadTarget { pc: 0, target: 99 })
        );
    }

    #[test]
    fn validate_rejects_source_map_mismatch() {
        let mut p = tiny();
        p.src.pop();
        assert!(matches!(
            p.validate(),
            Err(ProgramError::SourceMapLength { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_function_range() {
        let mut p = tiny();
        p.functions[0].end = 10;
        assert!(matches!(
            p.validate(),
            Err(ProgramError::BadFunction { .. })
        ));
    }

    #[test]
    fn function_lookup() {
        let p = tiny();
        assert_eq!(p.function_at(0).unwrap().name, "main");
        assert_eq!(p.function_at(1).unwrap().name, "main");
        assert!(p.function_at(2).is_none());
        assert_eq!(p.describe_pc(1), "main+1");
    }

    #[test]
    fn disassembly_contains_function_header() {
        let text = tiny().disassemble();
        assert!(text.contains("main:"));
        assert!(text.contains("movi r0, 1"));
    }
}
