//! A small two-pass assembler for the mini-VM ISA.
//!
//! Workloads are written in this assembly dialect, which is close enough to
//! real assembly that the paper's binary-level phenomena (jump tables through
//! `.word @label` data, register save/restore with `push`/`pop`) are
//! expressed the same way a compiler would lower them.
//!
//! # Syntax
//!
//! ```text
//! ; comment (also "#")
//! .data
//! mutex:  .word 0
//! arr:    .word 1, 2, 3
//! buf:    .space 16              ; 16 zero words
//! table:  .word @case_a, @case_b ; code addresses (for jmpind)
//!
//! .text
//! .func main
//!     movi  r0, 5
//!     la    r1, mutex            ; r1 = address of `mutex`
//! loop:
//!     subi  r0, r0, 1
//!     bgti  r0, 0, loop
//!     spawn r2, worker, r0
//!     join  r2
//!     halt
//! .endfunc
//!
//! .func worker
//!     push  r1                   ; register save (§5.2 idiom)
//!     ...
//!     pop   r1                   ; register restore
//!     ret
//! .endfunc
//! ```
//!
//! Immediate operands accept decimal and `0x` hex literals, `&symbol` for
//! data addresses, and `@label` for code addresses.

use std::collections::BTreeMap;
use std::fmt;

use crate::isa::{Addr, BinOp, Cond, Instr, Pc, Reg, SysCall};
use crate::program::{Function, Program, SrcLoc, DATA_BASE};

/// Assembles `source` into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics or labels, duplicate labels, and out-of-range operands.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble(source)
}

/// An assembly error with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: u32, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

#[derive(Debug, Default)]
struct Assembler {
    code_labels: BTreeMap<String, Pc>,
    data_symbols: BTreeMap<String, Addr>,
}

impl Assembler {
    fn new() -> Assembler {
        Assembler::default()
    }

    fn assemble(mut self, source: &str) -> Result<Program, AsmError> {
        let lines: Vec<(u32, &str)> = source
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = l.split(';').next().unwrap_or("");
                let l = l.split('#').next().unwrap_or("");
                (i as u32 + 1, l.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();

        self.collect_labels(&lines)?;
        self.emit(&lines)
    }

    /// Pass 1: compute the pc of every code label and function.
    fn collect_labels(&mut self, lines: &[(u32, &str)]) -> Result<(), AsmError> {
        let mut section = Section::Text;
        let mut pc: Pc = 0;
        for &(lineno, line) in lines {
            let mut rest = line;
            while let Some((label, tail)) = split_label(rest) {
                if section == Section::Text
                    && self.code_labels.insert(label.to_owned(), pc).is_some()
                {
                    return err(lineno, format!("duplicate label `{label}`"));
                }
                rest = tail.trim();
            }
            if rest.is_empty() {
                continue;
            }
            if let Some(dir) = rest.strip_prefix('.') {
                let word = dir.split_whitespace().next().unwrap_or("");
                match word {
                    "text" => section = Section::Text,
                    "data" => section = Section::Data,
                    "func" => {
                        let name = dir.split_whitespace().nth(1).ok_or_else(|| AsmError {
                            line: lineno,
                            msg: ".func requires a name".into(),
                        })?;
                        if self.code_labels.insert(name.to_owned(), pc).is_some() {
                            return err(lineno, format!("duplicate function `{name}`"));
                        }
                    }
                    "endfunc" | "word" | "space" => {}
                    other => return err(lineno, format!("unknown directive `.{other}`")),
                }
                continue;
            }
            if section == Section::Text {
                pc += 1;
            }
        }
        Ok(())
    }

    /// Pass 2: lay out the data section (code labels are now known, so
    /// `.word @label` entries resolve).
    fn assign_data(&mut self, lines: &[(u32, &str)]) -> Result<BTreeMap<Addr, i64>, AsmError> {
        // First sweep: assign symbol addresses.
        let mut section = Section::Text;
        let mut cursor: Addr = DATA_BASE;
        for &(lineno, line) in lines {
            let mut rest = line;
            let mut labels = Vec::new();
            while let Some((label, tail)) = split_label(rest) {
                labels.push(label.to_owned());
                rest = tail.trim();
            }
            if let Some(dir) = rest.strip_prefix('.') {
                let word = dir.split_whitespace().next().unwrap_or("");
                match word {
                    "text" => {
                        section = Section::Text;
                        continue;
                    }
                    "data" => {
                        section = Section::Data;
                        continue;
                    }
                    _ => {}
                }
            }
            if section != Section::Data {
                continue;
            }
            for label in &labels {
                if self.data_symbols.insert(label.clone(), cursor).is_some() {
                    return err(lineno, format!("duplicate data symbol `{label}`"));
                }
            }
            if rest.is_empty() {
                continue;
            }
            if let Some(args) = rest.strip_prefix(".word") {
                cursor += args.split(',').count() as Addr;
            } else if let Some(args) = rest.strip_prefix(".space") {
                let n: Addr = args.trim().parse().map_err(|_| AsmError {
                    line: lineno,
                    msg: format!("bad .space count `{}`", args.trim()),
                })?;
                cursor += n.max(1);
            } else {
                return err(lineno, format!("unexpected in .data: `{rest}`"));
            }
        }
        // Second sweep: fill initial values.
        let mut data = BTreeMap::new();
        let mut section = Section::Text;
        let mut cursor: Addr = DATA_BASE;
        for &(lineno, line) in lines {
            let mut rest = line;
            while let Some((_, tail)) = split_label(rest) {
                rest = tail.trim();
            }
            if let Some(dir) = rest.strip_prefix('.') {
                let word = dir.split_whitespace().next().unwrap_or("");
                match word {
                    "text" => {
                        section = Section::Text;
                        continue;
                    }
                    "data" => {
                        section = Section::Data;
                        continue;
                    }
                    _ => {}
                }
            }
            if section != Section::Data || rest.is_empty() {
                continue;
            }
            if let Some(args) = rest.strip_prefix(".word") {
                for piece in args.split(',') {
                    let v = self.parse_imm(piece.trim(), lineno)?;
                    if v != 0 {
                        data.insert(cursor, v);
                    }
                    cursor += 1;
                }
            } else if let Some(args) = rest.strip_prefix(".space") {
                let n: Addr = args.trim().parse().unwrap_or(1);
                cursor += n.max(1);
            }
        }
        Ok(data)
    }

    /// Pass 3: emit instructions.
    fn emit(&mut self, lines: &[(u32, &str)]) -> Result<Program, AsmError> {
        let data = self.assign_data(lines)?;
        let mut code = Vec::new();
        let mut src = Vec::new();
        let mut functions: Vec<Function> = Vec::new();
        let mut open_func: Option<usize> = None;
        let mut section = Section::Text;
        for &(lineno, line) in lines {
            let mut rest = line;
            while let Some((_, tail)) = split_label(rest) {
                rest = tail.trim();
            }
            if rest.is_empty() {
                continue;
            }
            if let Some(dir) = rest.strip_prefix('.') {
                let mut words = dir.split_whitespace();
                match words.next().unwrap_or("") {
                    "text" => section = Section::Text,
                    "data" => section = Section::Data,
                    "func" => {
                        if open_func.is_some() {
                            return err(lineno, "nested .func");
                        }
                        let name = words.next().unwrap();
                        open_func = Some(functions.len());
                        functions.push(Function {
                            name: name.to_owned(),
                            entry: code.len() as Pc,
                            end: 0,
                        });
                    }
                    "endfunc" => {
                        let idx = open_func.take().ok_or_else(|| AsmError {
                            line: lineno,
                            msg: ".endfunc without .func".into(),
                        })?;
                        functions[idx].end = code.len() as Pc;
                    }
                    _ => {}
                }
                continue;
            }
            if section != Section::Text {
                continue;
            }
            let ins = self.parse_instr(rest, lineno)?;
            code.push(ins);
            src.push(SrcLoc {
                line: lineno,
                func: open_func.map_or(u32::MAX, |i| i as u32),
            });
        }
        if let Some(idx) = open_func {
            functions[idx].end = code.len() as Pc;
        }
        functions.sort_by_key(|f| f.entry);
        for (idx, f) in functions.iter().enumerate() {
            for pc in f.entry..f.end {
                src[pc as usize].func = idx as u32;
            }
        }
        let entry = functions
            .iter()
            .find(|f| f.name == "main")
            .map(|f| f.entry)
            .or_else(|| self.code_labels.get("main").copied())
            .unwrap_or(0);
        let program = Program {
            code,
            src,
            functions,
            data,
            symbols: self.data_symbols.clone(),
            labels: self.code_labels.clone(),
            entry,
        };
        program.validate().map_err(|e| AsmError {
            line: 0,
            msg: e.to_string(),
        })?;
        Ok(program)
    }

    fn parse_imm(&self, s: &str, line: u32) -> Result<i64, AsmError> {
        if let Some(sym) = s.strip_prefix('&') {
            return match self.data_symbols.get(sym) {
                Some(a) => Ok(*a as i64),
                None => err(line, format!("unknown data symbol `{sym}`")),
            };
        }
        if let Some(lab) = s.strip_prefix('@') {
            return match self.code_labels.get(lab) {
                Some(pc) => Ok(i64::from(*pc)),
                None => err(line, format!("unknown code label `{lab}`")),
            };
        }
        parse_int(s).ok_or_else(|| AsmError {
            line,
            msg: format!("bad immediate `{s}`"),
        })
    }

    fn parse_target(&self, s: &str, line: u32) -> Result<Pc, AsmError> {
        if let Some(pc) = self.code_labels.get(s) {
            return Ok(*pc);
        }
        parse_int(s)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| AsmError {
                line,
                msg: format!("unknown label `{s}`"),
            })
    }

    fn parse_instr(&self, text: &str, line: u32) -> Result<Instr, AsmError> {
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let reg = |i: usize| -> Result<Reg, AsmError> {
            let s = *ops.get(i).ok_or_else(|| AsmError {
                line,
                msg: format!("missing operand {i} for `{mnemonic}`"),
            })?;
            parse_reg(s).ok_or_else(|| AsmError {
                line,
                msg: format!("bad register `{s}`"),
            })
        };
        let imm = |i: usize| -> Result<i64, AsmError> {
            let s = *ops.get(i).ok_or_else(|| AsmError {
                line,
                msg: format!("missing operand {i} for `{mnemonic}`"),
            })?;
            self.parse_imm(s, line)
        };
        let target = |i: usize| -> Result<Pc, AsmError> {
            let s = *ops.get(i).ok_or_else(|| AsmError {
                line,
                msg: format!("missing operand {i} for `{mnemonic}`"),
            })?;
            self.parse_target(s, line)
        };

        let binop = |name: &str| -> Option<BinOp> {
            Some(match name {
                "add" => BinOp::Add,
                "sub" => BinOp::Sub,
                "mul" => BinOp::Mul,
                "div" => BinOp::Div,
                "rem" => BinOp::Rem,
                "and" => BinOp::And,
                "or" => BinOp::Or,
                "xor" => BinOp::Xor,
                "shl" => BinOp::Shl,
                "shr" => BinOp::Shr,
                "slt" => BinOp::Slt,
                "seq" => BinOp::Seq,
                "min" => BinOp::Min,
                "max" => BinOp::Max,
                _ => return None,
            })
        };
        let cond = |name: &str| -> Option<Cond> {
            Some(match name {
                "eq" => Cond::Eq,
                "ne" => Cond::Ne,
                "lt" => Cond::Lt,
                "le" => Cond::Le,
                "gt" => Cond::Gt,
                "ge" => Cond::Ge,
                _ => return None,
            })
        };

        // Branch mnemonics: b<cond> ra, rb, label / b<cond>i ra, imm, label.
        if let Some(tail) = mnemonic.strip_prefix('b') {
            if let Some(c) = cond(tail) {
                return Ok(Instr::Br {
                    cond: c,
                    a: reg(0)?,
                    b: reg(1)?,
                    target: target(2)?,
                });
            }
            if let Some(ct) = tail.strip_suffix('i').and_then(cond) {
                return Ok(Instr::BrI {
                    cond: ct,
                    a: reg(0)?,
                    imm: imm(1)?,
                    target: target(2)?,
                });
            }
        }
        // ALU: op rd, ra, rb / opi rd, ra, imm.
        if let Some(op) = binop(mnemonic) {
            return Ok(Instr::Bin {
                op,
                dst: reg(0)?,
                a: reg(1)?,
                b: reg(2)?,
            });
        }
        if let Some(op) = mnemonic.strip_suffix('i').and_then(binop) {
            return Ok(Instr::BinI {
                op,
                dst: reg(0)?,
                a: reg(1)?,
                imm: imm(2)?,
            });
        }

        Ok(match mnemonic {
            "movi" => Instr::MovI {
                dst: reg(0)?,
                imm: imm(1)?,
            },
            // `la rd, sym` — load the address of a data symbol (or the pc of
            // a code label) without the `&`/`@` sigil.
            "la" => {
                let s = *ops.get(1).ok_or_else(|| AsmError {
                    line,
                    msg: "la requires a symbol operand".into(),
                })?;
                let v = if let Some(a) = self.data_symbols.get(s) {
                    *a as i64
                } else if let Some(pc) = self.code_labels.get(s) {
                    i64::from(*pc)
                } else {
                    self.parse_imm(s, line)?
                };
                Instr::MovI {
                    dst: reg(0)?,
                    imm: v,
                }
            }
            "mov" => Instr::Mov {
                dst: reg(0)?,
                src: reg(1)?,
            },
            "load" => Instr::Load {
                dst: reg(0)?,
                base: reg(1)?,
                off: if ops.len() > 2 { imm(2)? } else { 0 },
            },
            "store" => Instr::Store {
                src: reg(0)?,
                base: reg(1)?,
                off: if ops.len() > 2 { imm(2)? } else { 0 },
            },
            "push" => Instr::Push { src: reg(0)? },
            "pop" => Instr::Pop { dst: reg(0)? },
            "jmp" => Instr::Jmp { target: target(0)? },
            "jmpind" => Instr::JmpInd { src: reg(0)? },
            "call" => Instr::Call { target: target(0)? },
            "callind" => Instr::CallInd { src: reg(0)? },
            "ret" => Instr::Ret,
            "lock" => Instr::Lock { addr: reg(0)? },
            "unlock" => Instr::Unlock { addr: reg(0)? },
            "cas" => Instr::Cas {
                dst: reg(0)?,
                addr: reg(1)?,
                expect: reg(2)?,
                new: reg(3)?,
            },
            "xadd" => Instr::AtomicAdd {
                dst: reg(0)?,
                addr: reg(1)?,
                val: reg(2)?,
            },
            "fence" => Instr::Fence,
            "spawn" => Instr::Spawn {
                dst: reg(0)?,
                entry: target(1)?,
                arg: reg(2)?,
            },
            "join" => Instr::Join { tid: reg(0)? },
            "read" => Instr::Sys {
                call: SysCall::ReadInput,
                dst: reg(0)?,
            },
            "rand" => Instr::Sys {
                call: SysCall::Rand,
                dst: reg(0)?,
            },
            "time" => Instr::Sys {
                call: SysCall::Time,
                dst: reg(0)?,
            },
            "gettid" => Instr::GetTid { dst: reg(0)? },
            "assert" => Instr::Assert { src: reg(0)? },
            "print" => Instr::Print { src: reg(0)? },
            "halt" => Instr::Halt,
            "nop" => Instr::Nop,
            other => return err(line, format!("unknown mnemonic `{other}`")),
        })
    }
}

fn split_label(line: &str) -> Option<(&str, &str)> {
    let colon = line.find(':')?;
    let (head, tail) = line.split_at(colon);
    let head = head.trim();
    if !head.is_empty()
        && head
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !head.starts_with('.')
    {
        Some((head, &tail[1..]))
    } else {
        None
    }
}

fn parse_reg(s: &str) -> Option<Reg> {
    if s == "sp" {
        return Some(Reg::SP);
    }
    let n: u8 = s.strip_prefix('r')?.parse().ok()?;
    (n < 16).then_some(Reg(n))
}

fn parse_int(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crate::env::LiveEnv;
    use crate::exec::Executor;
    use crate::run::{run, ExitStatus};
    use crate::sched::RoundRobin;
    use crate::tool::NullTool;

    fn run_asm(src: &str) -> Executor {
        let p = assemble(src).unwrap();
        let mut exec = Executor::new(Arc::new(p));
        let r = run(
            &mut exec,
            &mut RoundRobin::new(8),
            &mut LiveEnv::new(1),
            &mut NullTool,
            1_000_000,
        );
        assert_eq!(r.status, ExitStatus::AllHalted, "program should halt");
        exec
    }

    #[test]
    fn assembles_loop_and_runs() {
        let exec = run_asm(
            r"
            .text
            .func main
                movi r0, 5
                movi r1, 0
            loop:
                add  r1, r1, r0
                subi r0, r0, 1
                bgti r0, 0, loop
                print r1
                halt
            .endfunc
            ",
        );
        assert_eq!(exec.output(), &[15]);
    }

    #[test]
    fn data_section_and_symbols() {
        let exec = run_asm(
            r"
            .data
            xs:    .word 10, 20, 30
            total: .word 0
            .text
            .func main
                la   r1, xs
                load r2, r1, 0
                load r3, r1, 2
                add  r2, r2, r3
                la   r4, total
                store r2, r4, 0
                halt
            .endfunc
            ",
        );
        let total = exec.program().symbol("total").unwrap();
        assert_eq!(exec.read_mem(total), 40);
    }

    #[test]
    fn jump_table_through_data() {
        let exec = run_asm(
            r"
            .data
            table: .word @case_a, @case_b
            .text
            .func main
                movi r0, 1          ; selector
                la   r1, table
                add  r1, r1, r0
                load r2, r1, 0
                jmpind r2
            case_a:
                movi r3, 100
                halt
            case_b:
                movi r3, 200
                halt
            .endfunc
            ",
        );
        assert_eq!(exec.read_reg(0, Reg(3)), 200);
    }

    #[test]
    fn spawn_join_threads() {
        let exec = run_asm(
            r"
            .data
            counter: .word 0
            .text
            .func main
                movi r1, 1
                spawn r2, worker, r1
                movi r1, 2
                spawn r3, worker, r1
                join r2
                join r3
                halt
            .endfunc
            .func worker
                la   r1, counter
                xadd r2, r1, r0
                halt
            .endfunc
            ",
        );
        let counter = exec.program().symbol("counter").unwrap();
        assert_eq!(exec.read_mem(counter), 3);
    }

    #[test]
    fn function_metadata_and_entry() {
        let p = assemble(
            r"
            .text
            .func helper
                ret
            .endfunc
            .func main
                call helper
                halt
            .endfunc
            ",
        )
        .unwrap();
        assert_eq!(p.entry, 1);
        assert_eq!(p.function("helper").unwrap().entry, 0);
        assert_eq!(p.function_at(0).unwrap().name, "helper");
    }

    #[test]
    fn error_unknown_mnemonic() {
        let e = assemble(".text\n.func main\n frobnicate r0\n.endfunc").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("frobnicate"));
    }

    #[test]
    fn error_unknown_label() {
        let e = assemble(".text\n.func main\n jmp nowhere\n.endfunc").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn error_duplicate_label() {
        let e = assemble(".text\nx:\n nop\nx:\n halt").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let exec = run_asm(
            r"
            .text
            .func main
                movi r0, 0x10
                movi r1, -3
                add  r2, r0, r1
                halt
            .endfunc
            ",
        );
        assert_eq!(exec.read_reg(0, Reg(2)), 13);
    }

    #[test]
    fn push_pop_save_restore_idiom() {
        let exec = run_asm(
            r"
            .text
            .func main
                movi r1, 7
                call q
                assert r1
                halt
            .endfunc
            .func q
                push r1
                movi r1, 0
                pop  r1
                ret
            .endfunc
            ",
        );
        assert_eq!(exec.read_reg(0, Reg(1)), 7);
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    fn err_of(src: &str) -> AsmError {
        assemble(src).unwrap_err()
    }

    #[test]
    fn bad_space_count() {
        let e = err_of(".data\nbuf: .space nope\n.text\n.func main\n halt\n.endfunc");
        assert!(e.msg.contains(".space"), "{e}");
    }

    #[test]
    fn unknown_directive() {
        let e = err_of(".text\n.globl main\n.func main\n halt\n.endfunc");
        assert!(e.msg.contains("directive"), "{e}");
    }

    #[test]
    fn func_without_name() {
        let e = err_of(".text\n.func\n halt\n.endfunc");
        assert!(e.msg.contains("name"), "{e}");
    }

    #[test]
    fn endfunc_without_func() {
        let e = err_of(".text\n.endfunc");
        assert!(e.msg.contains(".endfunc"), "{e}");
    }

    #[test]
    fn nested_func_rejected() {
        let e = err_of(".text\n.func a\n.func b\n halt\n.endfunc\n.endfunc");
        assert!(e.msg.contains("nested"), "{e}");
    }

    #[test]
    fn missing_operand() {
        let e = err_of(".text\n.func main\n movi r0\n halt\n.endfunc");
        assert!(e.msg.contains("missing operand"), "{e}");
    }

    #[test]
    fn bad_register_name() {
        let e = err_of(".text\n.func main\n movi r16, 0\n halt\n.endfunc");
        assert!(e.msg.contains("bad register"), "{e}");
        let e = err_of(".text\n.func main\n mov rax, r0\n halt\n.endfunc");
        assert!(e.msg.contains("bad register"), "{e}");
    }

    #[test]
    fn unknown_data_symbol_in_immediate() {
        let e = err_of(".text\n.func main\n movi r0, &nothere\n halt\n.endfunc");
        assert!(e.msg.contains("nothere"), "{e}");
    }

    #[test]
    fn unknown_code_label_in_immediate() {
        let e = err_of(".text\n.func main\n movi r0, @nothere\n halt\n.endfunc");
        assert!(e.msg.contains("nothere"), "{e}");
    }

    #[test]
    fn data_in_text_is_rejected() {
        let e = err_of(".data\n.word 1\njunk here\n.text\n.func main\n halt\n.endfunc");
        assert!(e.msg.contains("unexpected"), "{e}");
    }

    #[test]
    fn sp_register_accepted_everywhere() {
        let p =
            assemble(".text\n.func main\n mov r1, sp\n addi sp, sp, 0\n halt\n.endfunc").unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn load_store_default_offset_is_zero() {
        let p = assemble(
            ".data\nx: .word 9\n.text\n.func main\n la r1, x\n load r2, r1\n store r2, r1\n halt\n.endfunc",
        )
        .unwrap();
        assert!(matches!(p.code[1], Instr::Load { off: 0, .. }));
        assert!(matches!(p.code[2], Instr::Store { off: 0, .. }));
    }
}
