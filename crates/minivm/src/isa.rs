//! Instruction-set architecture of the mini virtual machine.
//!
//! The ISA is deliberately x86-flavoured at the level that matters for the
//! DrDebug reproduction: it has general-purpose registers, a downward-growing
//! stack addressed through a dedicated stack pointer, `push`/`pop` used by
//! function prologues/epilogues to save and restore registers (the source of
//! the *spurious dependences* of paper §5.2), direct and **indirect** jumps
//! (the source of the control-dependence imprecision of paper §5.1), calls
//! and returns through the stack, and a small set of concurrency and
//! "system call" operations that introduce the non-determinism PinPlay-style
//! logging must capture.
//!
//! Word-addressed memory keeps the def/use model simple: every memory access
//! touches exactly one 64-bit cell.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of architectural registers, including the stack pointer.
pub const NUM_REGS: usize = 16;

/// A register name. `r15` doubles as the stack pointer ([`Reg::SP`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The dedicated stack-pointer register (`sp`, alias of `r15`).
    pub const SP: Reg = Reg(15);

    /// Returns the register index as a `usize` for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a register, panicking when `i` is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_REGS`.
    pub fn new(i: u8) -> Reg {
        assert!(
            (i as usize) < NUM_REGS,
            "register index {i} out of range (max {})",
            NUM_REGS - 1
        );
        Reg(i)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Reg::SP {
            write!(f, "sp")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// A code address: the index of an instruction in the program image.
pub type Pc = u32;

/// A data address: the index of a 64-bit word in VM memory.
pub type Addr = u64;

/// A dynamic storage location — the unit dependences are tracked on.
///
/// The dynamic slicer treats registers and memory cells uniformly, exactly as
/// a binary-level slicer over Pin does (paper §5.2: "Besides memory to memory
/// dependences, we need to maintain the dependences between registers and
/// memory to perform dynamic slicing at the binary level").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Loc {
    /// An architectural register of a specific thread. Registers are private,
    /// so the slicer qualifies them with the owning thread id.
    Reg(Reg),
    /// A word of shared memory.
    Mem(Addr),
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Reg(r) => write!(f, "{r}"),
            Loc::Mem(a) => write!(f, "[{a:#x}]"),
        }
    }
}

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    /// Signed "set less than": `dst = (a < b) as i64`.
    Slt,
    /// "Set equal": `dst = (a == b) as i64`.
    Seq,
    Min,
    Max,
}

impl BinOp {
    /// Applies the operation with wrapping semantics.
    ///
    /// # Errors
    ///
    /// Returns `None` on division or remainder by zero, which the VM turns
    /// into a trap.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Slt => i64::from(a < b),
            BinOp::Seq => i64::from(a == b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Slt => "slt",
            BinOp::Seq => "seq",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Branch conditions for conditional jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cond {
    /// Evaluates the condition on two signed operands.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Non-deterministic "system calls" whose results a PinPlay-style logger must
/// capture and a replayer must inject (paper §1: "outcome of system calls").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SysCall {
    /// Reads the next value from the program's external input stream.
    ReadInput,
    /// Draws a pseudo-random value from the environment.
    Rand,
    /// Reads a monotonic clock.
    Time,
}

impl fmt::Display for SysCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SysCall::ReadInput => "read",
            SysCall::Rand => "rand",
            SysCall::Time => "time",
        };
        f.write_str(s)
    }
}

/// A single VM instruction.
///
/// Every instruction always *retires* when stepped: contended locks and joins
/// on live threads retire as failed attempts that leave `pc` unchanged
/// (spin-wait semantics). This makes "one scheduled step = one retired
/// instruction" hold unconditionally, which in turn makes the schedule log in
/// a pinball an exact replay recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = imm`
    MovI { dst: Reg, imm: i64 },
    /// `dst = src`
    Mov { dst: Reg, src: Reg },
    /// `dst = mem[base + off]`
    Load { dst: Reg, base: Reg, off: i64 },
    /// `mem[base + off] = src`
    Store { src: Reg, base: Reg, off: i64 },
    /// `sp -= 1; mem[sp] = src` — the register-*save* idiom of §5.2.
    Push { src: Reg },
    /// `dst = mem[sp]; sp += 1` — the register-*restore* idiom of §5.2.
    Pop { dst: Reg },
    /// `dst = op(a, b)`
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = op(a, imm)`
    BinI {
        op: BinOp,
        dst: Reg,
        a: Reg,
        imm: i64,
    },
    /// `pc = target`
    Jmp { target: Pc },
    /// `if cond(a, b) pc = target`
    Br {
        cond: Cond,
        a: Reg,
        b: Reg,
        target: Pc,
    },
    /// `if cond(a, imm) pc = target`
    BrI {
        cond: Cond,
        a: Reg,
        imm: i64,
        target: Pc,
    },
    /// `pc = src` — statically opaque control flow (§5.1).
    JmpInd { src: Reg },
    /// `sp -= 1; mem[sp] = pc + 1; pc = target`
    Call { target: Pc },
    /// `sp -= 1; mem[sp] = pc + 1; pc = src`
    CallInd { src: Reg },
    /// `pc = mem[sp]; sp += 1`
    Ret,
    /// Spin-acquire of the mutex word at `mem[addr]`: atomically sets it to
    /// the owning thread id + 1 when it is 0, otherwise retries (pc
    /// unchanged).
    Lock { addr: Reg },
    /// Releases the mutex word at `mem[addr]` (stores 0).
    Unlock { addr: Reg },
    /// Compare-and-swap: `dst = mem[addr]; if dst == expect { mem[addr] = new }`.
    Cas {
        dst: Reg,
        addr: Reg,
        expect: Reg,
        new: Reg,
    },
    /// `dst = mem[addr]; mem[addr] = dst + val` atomically.
    AtomicAdd { dst: Reg, addr: Reg, val: Reg },
    /// Memory fence — a no-op in the sequentially consistent VM, present so
    /// workloads look like their real counterparts.
    Fence,
    /// Spawns a new thread executing from `entry` with `arg` in `r0`;
    /// `dst` receives the new thread id.
    Spawn { dst: Reg, entry: Pc, arg: Reg },
    /// Spin-wait until thread `tid` has halted.
    Join { tid: Reg },
    /// `dst = env syscall result` — non-deterministic input.
    Sys { call: SysCall, dst: Reg },
    /// `dst = current thread id` — deterministic, not logged.
    GetTid { dst: Reg },
    /// Traps with `AssertFailed` when `src == 0` — the bug *symptom* point.
    Assert { src: Reg },
    /// Appends `src` to the VM output channel.
    Print { src: Reg },
    /// Terminates the current thread.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// Whether this instruction can transfer control somewhere other than
    /// fall-through (used by static code discovery).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Jmp { .. }
                | Instr::Br { .. }
                | Instr::BrI { .. }
                | Instr::JmpInd { .. }
                | Instr::Call { .. }
                | Instr::CallInd { .. }
                | Instr::Ret
                | Instr::Halt
        )
    }

    /// Whether this is a *conditional* branch (two static successors).
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::Br { .. } | Instr::BrI { .. })
    }

    /// Whether this is an indirect jump whose successors are statically
    /// unknown — the §5.1 imprecision source.
    pub fn is_indirect_jump(&self) -> bool {
        matches!(self, Instr::JmpInd { .. } | Instr::CallInd { .. })
    }

    /// Whether executing this instruction reads or writes shared memory.
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Push { .. }
                | Instr::Pop { .. }
                | Instr::Call { .. }
                | Instr::CallInd { .. }
                | Instr::Ret
                | Instr::Lock { .. }
                | Instr::Unlock { .. }
                | Instr::Cas { .. }
                | Instr::AtomicAdd { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::MovI { dst, imm } => write!(f, "movi {dst}, {imm}"),
            Instr::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Load { dst, base, off } => write!(f, "load {dst}, {base}, {off}"),
            Instr::Store { src, base, off } => write!(f, "store {src}, {base}, {off}"),
            Instr::Push { src } => write!(f, "push {src}"),
            Instr::Pop { dst } => write!(f, "pop {dst}"),
            Instr::Bin { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Instr::BinI { op, dst, a, imm } => write!(f, "{op}i {dst}, {a}, {imm}"),
            Instr::Jmp { target } => write!(f, "jmp {target}"),
            Instr::Br { cond, a, b, target } => write!(f, "b{cond} {a}, {b}, {target}"),
            Instr::BrI {
                cond,
                a,
                imm,
                target,
            } => write!(f, "b{cond}i {a}, {imm}, {target}"),
            Instr::JmpInd { src } => write!(f, "jmpind {src}"),
            Instr::Call { target } => write!(f, "call {target}"),
            Instr::CallInd { src } => write!(f, "callind {src}"),
            Instr::Ret => f.write_str("ret"),
            Instr::Lock { addr } => write!(f, "lock {addr}"),
            Instr::Unlock { addr } => write!(f, "unlock {addr}"),
            Instr::Cas {
                dst,
                addr,
                expect,
                new,
            } => write!(f, "cas {dst}, {addr}, {expect}, {new}"),
            Instr::AtomicAdd { dst, addr, val } => write!(f, "xadd {dst}, {addr}, {val}"),
            Instr::Fence => f.write_str("fence"),
            Instr::Spawn { dst, entry, arg } => write!(f, "spawn {dst}, {entry}, {arg}"),
            Instr::Join { tid } => write!(f, "join {tid}"),
            Instr::Sys { call, dst } => write!(f, "{call} {dst}"),
            Instr::GetTid { dst } => write!(f, "gettid {dst}"),
            Instr::Assert { src } => write!(f, "assert {src}"),
            Instr::Print { src } => write!(f, "print {src}"),
            Instr::Halt => f.write_str("halt"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_wrapping_and_div_by_zero() {
        assert_eq!(BinOp::Add.apply(i64::MAX, 1), Some(i64::MIN));
        assert_eq!(BinOp::Div.apply(10, 0), None);
        assert_eq!(BinOp::Rem.apply(10, 0), None);
        assert_eq!(BinOp::Div.apply(10, 3), Some(3));
        assert_eq!(BinOp::Slt.apply(-1, 0), Some(1));
        assert_eq!(BinOp::Seq.apply(4, 4), Some(1));
    }

    #[test]
    fn shift_masks_count() {
        assert_eq!(BinOp::Shl.apply(1, 64), Some(1));
        assert_eq!(BinOp::Shl.apply(1, 3), Some(8));
        assert_eq!(BinOp::Shr.apply(-8, 1), Some(-4));
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-5, 0));
        assert!(Cond::Le.eval(0, 0));
        assert!(Cond::Gt.eval(1, 0));
        assert!(Cond::Ge.eval(1, 1));
        assert!(!Cond::Lt.eval(1, 0));
    }

    #[test]
    fn reg_display_and_sp_alias() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::SP, Reg(15));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_rejects_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn instr_classification() {
        assert!(Instr::Jmp { target: 0 }.is_control());
        assert!(Instr::JmpInd { src: Reg(0) }.is_indirect_jump());
        assert!(Instr::Br {
            cond: Cond::Eq,
            a: Reg(0),
            b: Reg(1),
            target: 0
        }
        .is_cond_branch());
        assert!(!Instr::Nop.is_control());
        assert!(Instr::Push { src: Reg(1) }.touches_memory());
        assert!(!Instr::MovI {
            dst: Reg(0),
            imm: 1
        }
        .touches_memory());
    }

    #[test]
    fn instr_display_roundtrips_mnemonics() {
        assert_eq!(
            Instr::MovI {
                dst: Reg(2),
                imm: -7
            }
            .to_string(),
            "movi r2, -7"
        );
        assert_eq!(
            Instr::Bin {
                op: BinOp::Add,
                dst: Reg(0),
                a: Reg(1),
                b: Reg(2)
            }
            .to_string(),
            "add r0, r1, r2"
        );
        assert_eq!(Instr::Ret.to_string(), "ret");
    }
}
