//! Architectural machine state: memory, threads, and snapshots.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::isa::{Addr, Pc, NUM_REGS};
use crate::program::{STACK_BASE, STACK_WORDS};

/// A thread identifier. The main thread is always tid 0.
pub type Tid = u32;

/// Maximum number of threads: stack regions are carved downward from
/// [`STACK_BASE`] in [`STACK_WORDS`] chunks, and the last one must stay
/// above the data segment.
pub const MAX_THREADS: Tid = 64;

/// Sparse word-addressed memory with an implicit-zero default.
///
/// Sparse storage keeps [snapshots](Snapshot) — which PinPlay-style pinballs
/// embed — proportional to the *touched* footprint rather than the address
/// space.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memory {
    cells: BTreeMap<Addr, i64>,
}

impl Memory {
    /// Creates empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Reads the word at `addr` (0 when never written).
    #[inline]
    pub fn read(&self, addr: Addr) -> i64 {
        self.cells.get(&addr).copied().unwrap_or(0)
    }

    /// Writes the word at `addr`. Writing 0 still materialises the cell so
    /// that side-effect detection sees the store.
    #[inline]
    pub fn write(&mut self, addr: Addr, value: i64) {
        self.cells.insert(addr, value);
    }

    /// Number of materialised cells.
    pub fn footprint(&self) -> usize {
        self.cells.len()
    }

    /// Iterates over materialised `(addr, value)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, i64)> + '_ {
        self.cells.iter().map(|(a, v)| (*a, *v))
    }

    /// Bulk-loads initial data (used when constructing a machine from a
    /// program image or a pinball snapshot).
    pub fn load<I: IntoIterator<Item = (Addr, i64)>>(&mut self, items: I) {
        self.cells.extend(items);
    }
}

/// Lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadStatus {
    /// Eligible to be scheduled.
    Runnable,
    /// Finished (halted or returned from its entry frame).
    Halted,
}

/// Architectural state of one thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadState {
    /// General-purpose registers; index 15 is the stack pointer.
    pub regs: [i64; NUM_REGS],
    /// Current program counter.
    pub pc: Pc,
    /// Lifecycle status.
    pub status: ThreadStatus,
    /// Instructions retired by this thread.
    pub icount: u64,
}

impl ThreadState {
    /// Creates a runnable thread starting at `entry`, with its stack pointer
    /// set to the top of the stack region reserved for `tid`.
    pub fn new(tid: Tid, entry: Pc) -> ThreadState {
        let mut regs = [0i64; NUM_REGS];
        regs[15] = stack_top(tid) as i64;
        ThreadState {
            regs,
            pc: entry,
            status: ThreadStatus::Runnable,
            icount: 0,
        }
    }

    /// Whether the thread can currently be scheduled.
    pub fn is_runnable(&self) -> bool {
        self.status == ThreadStatus::Runnable
    }
}

/// Top-of-stack address (exclusive) for thread `tid`.
pub fn stack_top(tid: Tid) -> Addr {
    STACK_BASE - Addr::from(tid) * STACK_WORDS
}

/// Lowest valid stack address for thread `tid`.
pub fn stack_limit(tid: Tid) -> Addr {
    stack_top(tid) - STACK_WORDS
}

/// A complete architectural snapshot: what a pinball stores as the initial
/// state of an execution region (paper §1: the logger "captures the initial
/// architecture state").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Per-thread register/pc/status state, indexed by tid.
    pub threads: Vec<ThreadState>,
    /// Full memory contents.
    pub memory: Memory,
    /// Values printed so far (not replayed, but kept so output offsets match).
    pub output_len: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_default_zero_and_roundtrip() {
        let mut m = Memory::new();
        assert_eq!(m.read(0x1000), 0);
        m.write(0x1000, -5);
        assert_eq!(m.read(0x1000), -5);
        m.write(0x1000, 0);
        assert_eq!(m.read(0x1000), 0);
        assert_eq!(m.footprint(), 1, "explicit zero write stays materialised");
    }

    #[test]
    fn stacks_are_disjoint() {
        let (t0_lim, t0_top) = (stack_limit(0), stack_top(0));
        let (t1_lim, t1_top) = (stack_limit(1), stack_top(1));
        assert!(t1_top <= t0_lim || t0_top <= t1_lim);
        assert_eq!(t1_top, t0_lim);
    }

    #[test]
    fn new_thread_state() {
        let t = ThreadState::new(2, 7);
        assert_eq!(t.pc, 7);
        assert!(t.is_runnable());
        assert_eq!(t.regs[15], stack_top(2) as i64);
        assert_eq!(t.icount, 0);
    }
}
