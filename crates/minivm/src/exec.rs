//! The instruction-level executor: step semantics and instrumentation events.
//!
//! The executor plays the role Pin plays in the paper: it retires one
//! instruction at a time for whichever thread the driver schedules, and for
//! every retired instruction it produces an [`InsEvent`] carrying the full
//! def/use information (registers and memory cells, with values) that the
//! PinPlay-style logger and the dynamic slicer consume.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::env::Environment;
use crate::isa::{Addr, Instr, Loc, Pc, Reg};
use crate::machine::{stack_limit, stack_top, Memory, Snapshot, ThreadState, ThreadStatus, Tid};
use crate::program::Program;

/// Maximum defs or uses a single instruction can have.
const MAX_LOCS: usize = 4;

/// A fixed-capacity list of `(location, value)` pairs, avoiding per-event
/// heap allocation on the hot interpretation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocVals {
    len: u8,
    items: [(Loc, i64); MAX_LOCS],
}

impl Default for LocVals {
    fn default() -> LocVals {
        LocVals::new()
    }
}

impl LocVals {
    /// Creates an empty list.
    pub fn new() -> LocVals {
        LocVals {
            len: 0,
            items: [(Loc::Reg(Reg(0)), 0); MAX_LOCS],
        }
    }

    #[inline]
    fn push(&mut self, loc: Loc, val: i64) {
        debug_assert!((self.len as usize) < MAX_LOCS, "LocVals overflow");
        self.items[self.len as usize] = (loc, val);
        self.len += 1;
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the `(location, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, i64)> + '_ {
        self.items[..self.len as usize].iter().copied()
    }

    /// The value recorded for `loc`, if present.
    pub fn value_of(&self, loc: Loc) -> Option<i64> {
        self.iter().find(|(l, _)| *l == loc).map(|(_, v)| v)
    }
}

impl IntoIterator for LocVals {
    type Item = (Loc, i64);
    type IntoIter = std::iter::Take<std::array::IntoIter<(Loc, i64), MAX_LOCS>>;

    /// Owned iteration — `LocVals` is `Copy`, so this is free and lets
    /// callers build iterators that do not borrow a temporary.
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().take(self.len as usize)
    }
}

impl FromIterator<(Loc, i64)> for LocVals {
    fn from_iter<I: IntoIterator<Item = (Loc, i64)>>(iter: I) -> LocVals {
        let mut lv = LocVals::new();
        for (l, v) in iter {
            lv.push(l, v);
        }
        lv
    }
}

/// Everything an instrumentation tool learns about one retired instruction —
/// the analogue of Pin's per-instruction analysis arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsEvent {
    /// Thread that retired the instruction.
    pub tid: Tid,
    /// Address of the instruction.
    pub pc: Pc,
    /// 1-based count of executions of `pc` by `tid` (region-relative).
    pub instance: u64,
    /// Global retire sequence number (region-relative, all threads).
    pub seq: u64,
    /// The instruction itself.
    pub instr: Instr,
    /// Locations read, with the values read.
    pub uses: LocVals,
    /// Locations written, with the values written.
    pub defs: LocVals,
    /// The control successor actually taken.
    pub next_pc: Pc,
    /// For conditional branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// For `Spawn`: the new thread id and the argument value placed in its
    /// `r0` (a cross-thread definition the slicer must account for).
    pub spawned: Option<(Tid, i64)>,
    /// For `Sys`: the environment-provided result (what a logger records).
    pub sys_result: Option<i64>,
}

/// Outcome of stepping one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired normally.
    Retired,
    /// The instruction retired and halted its thread.
    Halted,
}

/// Runtime traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmError {
    /// `assert` saw zero — the bug symptom (paper Fig. 5: assertion failure).
    AssertFailed { tid: Tid, pc: Pc },
    /// Division or remainder by zero.
    DivByZero { tid: Tid, pc: Pc },
    /// Control transferred outside the code image.
    BadPc { tid: Tid, pc: Pc },
    /// Stack grew below the thread's reserved region.
    StackOverflow { tid: Tid, pc: Pc },
    /// `unlock` of a mutex not held by this thread.
    UnlockNotHeld { tid: Tid, pc: Pc },
    /// `lock` of a poisoned (freed) mutex word — models the pbzip2 bug's
    /// use-after-free crash on `fifo->mut`.
    PoisonedLock { tid: Tid, pc: Pc },
    /// `join` of an invalid thread id.
    BadTid { tid: Tid, pc: Pc },
    /// A thread that is not runnable was scheduled.
    NotRunnable { tid: Tid },
}

impl VmError {
    /// The thread the trap occurred on.
    pub fn tid(&self) -> Tid {
        match *self {
            VmError::AssertFailed { tid, .. }
            | VmError::DivByZero { tid, .. }
            | VmError::BadPc { tid, .. }
            | VmError::StackOverflow { tid, .. }
            | VmError::UnlockNotHeld { tid, .. }
            | VmError::PoisonedLock { tid, .. }
            | VmError::BadTid { tid, .. }
            | VmError::NotRunnable { tid } => tid,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VmError::AssertFailed { tid, pc } => write!(f, "assertion failed (tid {tid}, pc {pc})"),
            VmError::DivByZero { tid, pc } => write!(f, "division by zero (tid {tid}, pc {pc})"),
            VmError::BadPc { tid, pc } => write!(f, "bad jump target (tid {tid}, pc {pc})"),
            VmError::StackOverflow { tid, pc } => write!(f, "stack overflow (tid {tid}, pc {pc})"),
            VmError::UnlockNotHeld { tid, pc } => {
                write!(f, "unlock of mutex not held (tid {tid}, pc {pc})")
            }
            VmError::PoisonedLock { tid, pc } => {
                write!(f, "lock of poisoned mutex (tid {tid}, pc {pc})")
            }
            VmError::BadTid { tid, pc } => write!(f, "join of invalid thread (tid {tid}, pc {pc})"),
            VmError::NotRunnable { tid } => write!(f, "thread {tid} is not runnable"),
        }
    }
}

impl std::error::Error for VmError {}

/// Result of a step: the event (always produced for the retiring/trapping
/// instruction) plus the outcome or trap.
///
/// Both variants carry the ~300-byte [`InsEvent`] by value on purpose: the
/// event is consumed immediately on the interpretation hot path and boxing
/// it would trade an allocation per retired instruction for nothing.
#[allow(clippy::result_large_err)]
pub type StepResult = Result<(InsEvent, StepOutcome), (InsEvent, VmError)>;

/// The complete, serializable state of an [`Executor`] mid-execution.
///
/// A [`Snapshot`] is the *architectural* state a pinball stores at region
/// entry; `ExecState` additionally carries the region-relative bookkeeping
/// (instance counts, the retire counter, output) that replay tools key on.
/// Pinball containers embed these as periodic replay checkpoints so a
/// debugger can seek without re-executing from the region entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecState {
    /// Full memory contents.
    pub memory: Memory,
    /// Per-thread register/pc/status/icount state, indexed by tid.
    pub threads: Vec<ThreadState>,
    /// Per-thread, per-pc execution counts (region-relative instance ids).
    pub instances: Vec<Vec<u64>>,
    /// Region-relative global retire counter.
    pub seq: u64,
    /// Values printed since the executor was created.
    pub output: Vec<i64>,
    /// Output values present at the restored start state.
    pub output_base: u64,
}

/// The interpreter core for one program execution.
#[derive(Debug, Clone)]
pub struct Executor {
    program: Arc<Program>,
    memory: Memory,
    threads: Vec<ThreadState>,
    /// Per-thread, per-pc execution counts (region-relative instance ids).
    instances: Vec<Vec<u64>>,
    /// Region-relative global retire counter.
    seq: u64,
    /// Values printed by the program.
    output: Vec<i64>,
    /// Number of output values present at the (possibly restored) start
    /// state; kept so snapshots compose.
    output_base: u64,
}

impl Executor {
    /// Creates an executor at the program entry with a single main thread
    /// (tid 0).
    pub fn new(program: Arc<Program>) -> Executor {
        let main = ThreadState::new(0, program.entry);
        let mut memory = Memory::new();
        memory.load(program.data.iter().map(|(a, v)| (*a, *v)));
        let code_len = program.len();
        Executor {
            program,
            memory,
            threads: vec![main],
            instances: vec![vec![0; code_len]],
            seq: 0,
            output: Vec::new(),
            output_base: 0,
        }
    }

    /// Reconstructs an executor from a snapshot. Instance counts, the global
    /// sequence number, and per-thread icounts restart from zero: pinballs
    /// use *region-relative* instance numbering (paper §4's
    /// `startPc:sinstance:tid` triples count from the region start).
    pub fn from_snapshot(program: Arc<Program>, snap: &Snapshot) -> Executor {
        let code_len = program.len();
        let mut threads = snap.threads.clone();
        for t in &mut threads {
            t.icount = 0;
        }
        Executor {
            program,
            memory: snap.memory.clone(),
            instances: vec![vec![0; code_len]; threads.len()],
            threads,
            seq: 0,
            output: Vec::new(),
            output_base: snap.output_len,
        }
    }

    /// Captures the current architectural state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            threads: self.threads.clone(),
            memory: self.memory.clone(),
            output_len: self.output_base + self.output.len() as u64,
        }
    }

    /// Captures the *complete* executor state, including the
    /// region-relative bookkeeping a [`Snapshot`] deliberately drops
    /// (per-pc instance counts, the global retire counter, and the output
    /// buffer). This is what an embedded replay checkpoint stores: restoring
    /// it mid-region must reproduce the same instance/seq numbering a replay
    /// from the region entry would have reached.
    pub fn save_state(&self) -> ExecState {
        ExecState {
            memory: self.memory.clone(),
            threads: self.threads.clone(),
            instances: self.instances.clone(),
            seq: self.seq,
            output: self.output.clone(),
            output_base: self.output_base,
        }
    }

    /// Reconstructs an executor from [`Executor::save_state`] output.
    ///
    /// Unlike [`Executor::from_snapshot`], nothing is reset: the executor
    /// resumes exactly where the state was captured. Per-thread instance
    /// tables are re-sized to the program's code length so a state saved
    /// against the same program always fits.
    pub fn from_state(program: Arc<Program>, state: &ExecState) -> Executor {
        let code_len = program.len();
        let mut instances = state.instances.clone();
        instances.resize_with(state.threads.len(), Vec::new);
        for v in &mut instances {
            v.resize(code_len, 0);
        }
        Executor {
            program,
            memory: state.memory.clone(),
            threads: state.threads.clone(),
            instances,
            seq: state.seq,
            output: state.output.clone(),
            output_base: state.output_base,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Number of threads ever created (tids are never reused).
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// State of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics when `tid` was never created.
    pub fn thread(&self, tid: Tid) -> &ThreadState {
        &self.threads[tid as usize]
    }

    /// Tids that can currently be scheduled.
    pub fn runnable(&self) -> impl Iterator<Item = Tid> + '_ {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_runnable())
            .map(|(i, _)| i as Tid)
    }

    /// Whether every thread has halted.
    pub fn all_halted(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.status == ThreadStatus::Halted)
    }

    /// Region-relative global retire count.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Region-relative instruction count of thread `tid`.
    pub fn icount(&self, tid: Tid) -> u64 {
        self.threads[tid as usize].icount
    }

    /// Total instructions retired across all threads (region-relative).
    pub fn total_icount(&self) -> u64 {
        self.threads.iter().map(|t| t.icount).sum()
    }

    /// How many times `tid` has executed `pc` so far (region-relative).
    pub fn instance_count(&self, tid: Tid, pc: Pc) -> u64 {
        self.instances
            .get(tid as usize)
            .and_then(|v| v.get(pc as usize))
            .copied()
            .unwrap_or(0)
    }

    /// Values printed since this executor was created.
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Reads a register of a thread (debugger `print`).
    pub fn read_reg(&self, tid: Tid, reg: Reg) -> i64 {
        self.threads[tid as usize].regs[reg.index()]
    }

    /// Reads a memory word (debugger `x/`).
    pub fn read_mem(&self, addr: Addr) -> i64 {
        self.memory.read(addr)
    }

    /// Forces a thread's pc — used by the slice-pinball replayer to skip an
    /// excluded code region (paper §4: "all the excluded code regions will be
    /// completely skipped").
    pub fn set_pc(&mut self, tid: Tid, pc: Pc) {
        self.threads[tid as usize].pc = pc;
    }

    /// Injects a register value — side-effect restoration during slice
    /// replay (paper Fig. 6(b): "injecting modified memory cells and
    /// registers").
    pub fn inject_reg(&mut self, tid: Tid, reg: Reg, value: i64) {
        self.threads[tid as usize].regs[reg.index()] = value;
    }

    /// Injects a memory value — see [`Executor::inject_reg`].
    pub fn inject_mem(&mut self, addr: Addr, value: i64) {
        self.memory.write(addr, value);
    }

    /// Executes one instruction on `tid`.
    ///
    /// Always produces the [`InsEvent`] for the instruction, even when it
    /// traps, so the failure point itself is visible to tools (the paper
    /// slices *at* the failed assertion).
    ///
    /// # Errors
    ///
    /// Returns the event paired with a [`VmError`] on traps. Stepping a
    /// halted thread returns a [`VmError::NotRunnable`] with an empty event.
    #[allow(clippy::result_large_err)]
    pub fn step(&mut self, tid: Tid, env: &mut dyn Environment) -> StepResult {
        let t = tid as usize;
        if self.threads.get(t).is_none_or(|th| !th.is_runnable()) {
            let ev = self.empty_event(tid);
            return Err((ev, VmError::NotRunnable { tid }));
        }
        let pc = self.threads[t].pc;
        let Some(&instr) = self.program.fetch(pc) else {
            let ev = self.empty_event(tid);
            return Err((ev, VmError::BadPc { tid, pc }));
        };

        // Retire bookkeeping happens unconditionally: a trapping instruction
        // still occupies its slot in the trace.
        self.instances[t][pc as usize] += 1;
        let instance = self.instances[t][pc as usize];
        let seq = self.seq;
        self.seq += 1;
        self.threads[t].icount += 1;

        let mut ev = InsEvent {
            tid,
            pc,
            instance,
            seq,
            instr,
            uses: LocVals::new(),
            defs: LocVals::new(),
            next_pc: pc.wrapping_add(1),
            taken: None,
            spawned: None,
            sys_result: None,
        };

        #[allow(clippy::result_large_err)]
        let trap = |ev: InsEvent, e: VmError| -> StepResult { Err((ev, e)) };

        macro_rules! reg_use {
            ($r:expr) => {{
                let v = self.threads[t].regs[$r.index()];
                ev.uses.push(Loc::Reg($r), v);
                v
            }};
        }
        macro_rules! reg_def {
            ($r:expr, $v:expr) => {{
                let v: i64 = $v;
                self.threads[t].regs[$r.index()] = v;
                ev.defs.push(Loc::Reg($r), v);
            }};
        }
        macro_rules! mem_use {
            ($a:expr) => {{
                let a: Addr = $a;
                let v = self.memory.read(a);
                ev.uses.push(Loc::Mem(a), v);
                v
            }};
        }
        macro_rules! mem_def {
            ($a:expr, $v:expr) => {{
                let a: Addr = $a;
                let v: i64 = $v;
                self.memory.write(a, v);
                ev.defs.push(Loc::Mem(a), v);
            }};
        }

        let mut outcome = StepOutcome::Retired;
        match instr {
            Instr::MovI { dst, imm } => reg_def!(dst, imm),
            Instr::Mov { dst, src } => {
                let v = reg_use!(src);
                reg_def!(dst, v);
            }
            Instr::Load { dst, base, off } => {
                let b = reg_use!(base);
                let v = mem_use!(b.wrapping_add(off) as Addr);
                reg_def!(dst, v);
            }
            Instr::Store { src, base, off } => {
                let v = reg_use!(src);
                let b = reg_use!(base);
                mem_def!(b.wrapping_add(off) as Addr, v);
            }
            Instr::Push { src } => {
                let v = reg_use!(src);
                let sp = reg_use!(Reg::SP);
                let nsp = sp.wrapping_sub(1);
                if (nsp as Addr) < stack_limit(tid) || (nsp as Addr) >= stack_top(tid) {
                    return trap(ev, VmError::StackOverflow { tid, pc });
                }
                reg_def!(Reg::SP, nsp);
                mem_def!(nsp as Addr, v);
            }
            Instr::Pop { dst } => {
                let sp = reg_use!(Reg::SP);
                if (sp as Addr) >= stack_top(tid) {
                    return trap(ev, VmError::StackOverflow { tid, pc });
                }
                let v = mem_use!(sp as Addr);
                reg_def!(dst, v);
                reg_def!(Reg::SP, sp.wrapping_add(1));
            }
            Instr::Bin { op, dst, a, b } => {
                let av = reg_use!(a);
                let bv = reg_use!(b);
                match op.apply(av, bv) {
                    Some(v) => reg_def!(dst, v),
                    None => return trap(ev, VmError::DivByZero { tid, pc }),
                }
            }
            Instr::BinI { op, dst, a, imm } => {
                let av = reg_use!(a);
                match op.apply(av, imm) {
                    Some(v) => reg_def!(dst, v),
                    None => return trap(ev, VmError::DivByZero { tid, pc }),
                }
            }
            Instr::Jmp { target } => ev.next_pc = target,
            Instr::Br { cond, a, b, target } => {
                let av = reg_use!(a);
                let bv = reg_use!(b);
                let taken = cond.eval(av, bv);
                ev.taken = Some(taken);
                if taken {
                    ev.next_pc = target;
                }
            }
            Instr::BrI {
                cond,
                a,
                imm,
                target,
            } => {
                let av = reg_use!(a);
                let taken = cond.eval(av, imm);
                ev.taken = Some(taken);
                if taken {
                    ev.next_pc = target;
                }
            }
            Instr::JmpInd { src } => {
                let v = reg_use!(src);
                if v < 0 || v as usize >= self.program.len() {
                    return trap(ev, VmError::BadPc { tid, pc });
                }
                ev.next_pc = v as Pc;
            }
            Instr::Call { target } => {
                let sp = reg_use!(Reg::SP);
                let nsp = sp.wrapping_sub(1);
                if (nsp as Addr) < stack_limit(tid) {
                    return trap(ev, VmError::StackOverflow { tid, pc });
                }
                reg_def!(Reg::SP, nsp);
                mem_def!(nsp as Addr, i64::from(pc) + 1);
                ev.next_pc = target;
            }
            Instr::CallInd { src } => {
                let v = reg_use!(src);
                if v < 0 || v as usize >= self.program.len() {
                    return trap(ev, VmError::BadPc { tid, pc });
                }
                let sp = reg_use!(Reg::SP);
                let nsp = sp.wrapping_sub(1);
                if (nsp as Addr) < stack_limit(tid) {
                    return trap(ev, VmError::StackOverflow { tid, pc });
                }
                reg_def!(Reg::SP, nsp);
                mem_def!(nsp as Addr, i64::from(pc) + 1);
                ev.next_pc = v as Pc;
            }
            Instr::Ret => {
                let sp = reg_use!(Reg::SP);
                if (sp as Addr) >= stack_top(tid) {
                    return trap(ev, VmError::StackOverflow { tid, pc });
                }
                let ra = mem_use!(sp as Addr);
                reg_def!(Reg::SP, sp.wrapping_add(1));
                if ra < 0 || ra as usize >= self.program.len() {
                    return trap(ev, VmError::BadPc { tid, pc });
                }
                ev.next_pc = ra as Pc;
            }
            Instr::Lock { addr } => {
                let a = reg_use!(addr) as Addr;
                let v = mem_use!(a);
                if v < 0 {
                    return trap(ev, VmError::PoisonedLock { tid, pc });
                }
                if v == 0 {
                    mem_def!(a, i64::from(tid) + 1);
                } else {
                    // Contended: spin. The instruction retires but pc does
                    // not advance, so "one step = one retired instruction"
                    // holds and the schedule log stays an exact recipe.
                    ev.next_pc = pc;
                }
            }
            Instr::Unlock { addr } => {
                let a = reg_use!(addr) as Addr;
                let v = mem_use!(a);
                if v != i64::from(tid) + 1 {
                    return trap(ev, VmError::UnlockNotHeld { tid, pc });
                }
                mem_def!(a, 0);
            }
            Instr::Cas {
                dst,
                addr,
                expect,
                new,
            } => {
                let a = reg_use!(addr) as Addr;
                let e = reg_use!(expect);
                let n = reg_use!(new);
                let v = mem_use!(a);
                reg_def!(dst, v);
                if v == e {
                    mem_def!(a, n);
                }
            }
            Instr::AtomicAdd { dst, addr, val } => {
                let a = reg_use!(addr) as Addr;
                let n = reg_use!(val);
                let v = mem_use!(a);
                reg_def!(dst, v);
                mem_def!(a, v.wrapping_add(n));
            }
            Instr::Fence => {}
            Instr::Spawn { dst, entry, arg } => {
                let argv = reg_use!(arg);
                let new_tid = self.threads.len() as Tid;
                if new_tid >= crate::machine::MAX_THREADS {
                    // Past this point the per-thread stack carving would
                    // collide with the data segment (and eventually wrap);
                    // refuse like a failed pthread_create.
                    return trap(ev, VmError::BadTid { tid, pc });
                }
                let mut st = ThreadState::new(new_tid, entry);
                st.regs[0] = argv;
                self.threads.push(st);
                self.instances.push(vec![0; self.program.len()]);
                reg_def!(dst, i64::from(new_tid));
                ev.spawned = Some((new_tid, argv));
            }
            Instr::Join { tid: tr } => {
                let v = reg_use!(tr);
                if v < 0 || v as usize >= self.threads.len() {
                    return trap(ev, VmError::BadTid { tid, pc });
                }
                if self.threads[v as usize].status != ThreadStatus::Halted {
                    ev.next_pc = pc; // spin until the target halts
                }
            }
            Instr::Sys { call, dst } => {
                let v = env.syscall(tid, call);
                reg_def!(dst, v);
                ev.sys_result = Some(v);
            }
            Instr::GetTid { dst } => reg_def!(dst, i64::from(tid)),
            Instr::Assert { src } => {
                let v = reg_use!(src);
                if v == 0 {
                    return trap(ev, VmError::AssertFailed { tid, pc });
                }
            }
            Instr::Print { src } => {
                let v = reg_use!(src);
                self.output.push(v);
            }
            Instr::Halt => {
                self.threads[t].status = ThreadStatus::Halted;
                ev.next_pc = pc;
                outcome = StepOutcome::Halted;
            }
            Instr::Nop => {}
        }

        self.threads[t].pc = ev.next_pc;
        Ok((ev, outcome))
    }

    fn empty_event(&self, tid: Tid) -> InsEvent {
        InsEvent {
            tid,
            pc: 0,
            instance: 0,
            seq: self.seq,
            instr: Instr::Nop,
            uses: LocVals::new(),
            defs: LocVals::new(),
            next_pc: 0,
            taken: None,
            spawned: None,
            sys_result: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::env::LiveEnv;
    use crate::isa::{BinOp, Cond};

    fn exec_of(f: impl FnOnce(&mut ProgramBuilder)) -> Executor {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        f(&mut b);
        b.end_func();
        Executor::new(Arc::new(b.finish().unwrap()))
    }

    fn run_all(exec: &mut Executor) -> Result<(), VmError> {
        let mut env = LiveEnv::new(0);
        for _ in 0..100_000 {
            if exec.all_halted() {
                return Ok(());
            }
            let tids: Vec<Tid> = exec.runnable().collect();
            for tid in tids {
                if let Err((_, e)) = exec.step(tid, &mut env) {
                    return Err(e);
                }
            }
        }
        panic!("program did not terminate");
    }

    #[test]
    fn arithmetic_and_events() {
        let mut exec = exec_of(|b| {
            b.ins(Instr::MovI {
                dst: Reg(0),
                imm: 6,
            });
            b.ins(Instr::BinI {
                op: BinOp::Mul,
                dst: Reg(1),
                a: Reg(0),
                imm: 7,
            });
            b.ins(Instr::Halt);
        });
        let mut env = LiveEnv::new(0);
        let (ev, _) = exec.step(0, &mut env).unwrap();
        assert_eq!(ev.defs.value_of(Loc::Reg(Reg(0))), Some(6));
        assert_eq!(ev.instance, 1);
        assert_eq!(ev.seq, 0);
        let (ev, _) = exec.step(0, &mut env).unwrap();
        assert_eq!(ev.uses.value_of(Loc::Reg(Reg(0))), Some(6));
        assert_eq!(ev.defs.value_of(Loc::Reg(Reg(1))), Some(42));
        assert_eq!(exec.read_reg(0, Reg(1)), 42);
    }

    #[test]
    fn push_pop_roundtrip_and_sp_motion() {
        let mut exec = exec_of(|b| {
            b.ins(Instr::MovI {
                dst: Reg(3),
                imm: 1234,
            });
            b.ins(Instr::Push { src: Reg(3) });
            b.ins(Instr::MovI {
                dst: Reg(3),
                imm: 0,
            });
            b.ins(Instr::Pop { dst: Reg(4) });
            b.ins(Instr::Halt);
        });
        run_all(&mut exec).unwrap();
        assert_eq!(exec.read_reg(0, Reg(4)), 1234);
        assert_eq!(exec.read_reg(0, Reg::SP), stack_top(0) as i64);
    }

    #[test]
    fn call_ret_control_flow() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let f = b.label();
        b.ins_to(Instr::Call { target: 0 }, f);
        b.ins(Instr::Halt);
        b.end_func();
        b.begin_func("f");
        b.bind(f);
        b.ins(Instr::MovI {
            dst: Reg(0),
            imm: 5,
        });
        b.ins(Instr::Ret);
        b.end_func();
        let mut exec = Executor::new(Arc::new(b.finish().unwrap()));
        run_all(&mut exec).unwrap();
        assert_eq!(exec.read_reg(0, Reg(0)), 5);
    }

    #[test]
    fn assertion_failure_traps_with_event() {
        let mut exec = exec_of(|b| {
            b.ins(Instr::MovI {
                dst: Reg(0),
                imm: 0,
            });
            b.ins(Instr::Assert { src: Reg(0) });
            b.ins(Instr::Halt);
        });
        let mut env = LiveEnv::new(0);
        exec.step(0, &mut env).unwrap();
        let (ev, err) = exec.step(0, &mut env).unwrap_err();
        assert_eq!(err, VmError::AssertFailed { tid: 0, pc: 1 });
        assert_eq!(ev.uses.value_of(Loc::Reg(Reg(0))), Some(0));
    }

    #[test]
    fn lock_spins_until_released() {
        // Two threads contend for a mutex at a fixed address.
        let mut b = ProgramBuilder::new();
        let m = b.data_words("mutex", &[0]);
        b.begin_func("main");
        let w = b.label();
        b.ins(Instr::MovI {
            dst: Reg(1),
            imm: m as i64,
        });
        b.ins(Instr::Lock { addr: Reg(1) });
        b.ins_to(
            Instr::Spawn {
                dst: Reg(2),
                entry: 0,
                arg: Reg(1),
            },
            w,
        );
        b.ins(Instr::Unlock { addr: Reg(1) });
        b.ins(Instr::Join { tid: Reg(2) });
        b.ins(Instr::Halt);
        b.end_func();
        b.begin_func("worker");
        b.bind(w);
        b.ins(Instr::Lock { addr: Reg(0) });
        b.ins(Instr::Unlock { addr: Reg(0) });
        b.ins(Instr::Halt);
        b.end_func();
        let mut exec = Executor::new(Arc::new(b.finish().unwrap()));
        let mut env = LiveEnv::new(0);
        // main: movi, lock (acquires), spawn
        exec.step(0, &mut env).unwrap();
        exec.step(0, &mut env).unwrap();
        exec.step(0, &mut env).unwrap();
        // worker tries to lock: spins in place
        let (ev, _) = exec.step(1, &mut env).unwrap();
        assert_eq!(ev.next_pc, ev.pc);
        assert_eq!(exec.thread(1).pc, ev.pc);
        // main unlocks, worker retries and acquires
        exec.step(0, &mut env).unwrap();
        let (ev2, _) = exec.step(1, &mut env).unwrap();
        assert_ne!(ev2.next_pc, ev2.pc);
        assert_eq!(ev2.instance, 2, "second dynamic instance of the lock pc");
    }

    #[test]
    fn poisoned_lock_traps() {
        let mut b = ProgramBuilder::new();
        let m = b.data_words("mutex", &[-1]);
        b.begin_func("main");
        b.ins(Instr::MovI {
            dst: Reg(1),
            imm: m as i64,
        });
        b.ins(Instr::Lock { addr: Reg(1) });
        b.ins(Instr::Halt);
        b.end_func();
        let mut exec = Executor::new(Arc::new(b.finish().unwrap()));
        let mut env = LiveEnv::new(0);
        exec.step(0, &mut env).unwrap();
        let (_, err) = exec.step(0, &mut env).unwrap_err();
        assert!(matches!(err, VmError::PoisonedLock { tid: 0, pc: 1 }));
    }

    #[test]
    fn unlock_not_held_traps() {
        let mut exec = exec_of(|b| {
            b.ins(Instr::MovI {
                dst: Reg(1),
                imm: 0x1000,
            });
            b.ins(Instr::Unlock { addr: Reg(1) });
        });
        let mut env = LiveEnv::new(0);
        exec.step(0, &mut env).unwrap();
        let (_, err) = exec.step(0, &mut env).unwrap_err();
        assert!(matches!(err, VmError::UnlockNotHeld { .. }));
    }

    #[test]
    fn spawn_passes_arg_and_join_waits() {
        let mut b = ProgramBuilder::new();
        let out = b.alloc_data("out", 1);
        b.begin_func("main");
        let w = b.label();
        b.ins(Instr::MovI {
            dst: Reg(1),
            imm: 77,
        });
        b.ins_to(
            Instr::Spawn {
                dst: Reg(2),
                entry: 0,
                arg: Reg(1),
            },
            w,
        );
        b.ins(Instr::Join { tid: Reg(2) });
        b.ins(Instr::Halt);
        b.end_func();
        b.begin_func("worker");
        b.bind(w);
        b.ins(Instr::MovI {
            dst: Reg(1),
            imm: out as i64,
        });
        b.ins(Instr::Store {
            src: Reg(0),
            base: Reg(1),
            off: 0,
        });
        b.ins(Instr::Halt);
        b.end_func();
        let mut exec = Executor::new(Arc::new(b.finish().unwrap()));
        run_all(&mut exec).unwrap();
        assert_eq!(exec.read_mem(out), 77);
        assert_eq!(exec.num_threads(), 2);
    }

    #[test]
    fn snapshot_restore_resets_region_counters() {
        let mut exec = exec_of(|b| {
            b.ins(Instr::MovI {
                dst: Reg(0),
                imm: 9,
            });
            b.ins(Instr::Print { src: Reg(0) });
            b.ins(Instr::Halt);
        });
        let mut env = LiveEnv::new(0);
        exec.step(0, &mut env).unwrap();
        let snap = exec.snapshot();
        let mut exec2 = Executor::from_snapshot(Arc::clone(exec.program()), &snap);
        assert_eq!(exec2.seq(), 0);
        assert_eq!(exec2.icount(0), 0);
        assert_eq!(exec2.read_reg(0, Reg(0)), 9);
        assert_eq!(exec2.thread(0).pc, 1);
        let (ev, _) = exec2.step(0, &mut env).unwrap();
        assert_eq!(ev.instance, 1, "instances are region-relative");
        assert_eq!(exec2.output(), &[9]);
    }

    #[test]
    fn exec_state_restore_preserves_region_counters() {
        let mut exec = exec_of(|b| {
            b.ins(Instr::MovI {
                dst: Reg(0),
                imm: 9,
            });
            b.ins(Instr::Print { src: Reg(0) });
            b.ins(Instr::Halt);
        });
        let mut env = LiveEnv::new(0);
        exec.step(0, &mut env).unwrap();
        exec.step(0, &mut env).unwrap();
        let state = exec.save_state();
        let mut exec2 = Executor::from_state(Arc::clone(exec.program()), &state);
        // Unlike from_snapshot, nothing resets: seq/icount/instances/output
        // continue exactly where they were saved.
        assert_eq!(exec2.seq(), 2);
        assert_eq!(exec2.icount(0), 2);
        assert_eq!(exec2.output(), &[9]);
        assert_eq!(exec2.instance_count(0, 1), 1);
        let (ev, _) = exec2.step(0, &mut env).unwrap();
        assert_eq!(ev.seq, 2, "retire counter continues");
        // The restored executor finishes identically to the original.
        exec.step(0, &mut env).unwrap();
        assert_eq!(exec.save_state(), exec2.save_state());
    }

    #[test]
    fn indirect_jump_dispatch() {
        // Mini switch: jump table in data holds code addresses.
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let case1 = b.label();
        let table = b.alloc_data("table", 2);
        // r0 = selector (1)
        b.ins(Instr::MovI {
            dst: Reg(0),
            imm: 1,
        });
        b.ins(Instr::MovI {
            dst: Reg(1),
            imm: table as i64,
        });
        b.ins(Instr::Load {
            dst: Reg(2),
            base: Reg(1),
            off: 1,
        });
        b.ins(Instr::JmpInd { src: Reg(2) });
        b.ins(Instr::Halt); // case 0 (skipped)
        b.bind(case1);
        b.ins(Instr::MovI {
            dst: Reg(3),
            imm: 42,
        });
        b.ins(Instr::Halt);
        b.end_func();
        let p = b.finish().unwrap();
        // Patch the jump table now that labels are resolved: entry 1 -> case1.
        let mut exec = Executor::new(Arc::new(p));
        exec.inject_mem(table + 1, 5);
        run_all(&mut exec).unwrap();
        assert_eq!(exec.read_reg(0, Reg(3)), 42);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut exec = exec_of(|b| {
            b.ins(Instr::MovI {
                dst: Reg(0),
                imm: 1,
            });
            b.ins(Instr::MovI {
                dst: Reg(1),
                imm: 0,
            });
            b.ins(Instr::Bin {
                op: BinOp::Div,
                dst: Reg(2),
                a: Reg(0),
                b: Reg(1),
            });
        });
        assert!(matches!(
            run_all(&mut exec),
            Err(VmError::DivByZero { tid: 0, pc: 2 })
        ));
    }

    #[test]
    fn branch_taken_flag() {
        let mut exec = exec_of(|b| {
            let l = b.label();
            b.ins(Instr::MovI {
                dst: Reg(0),
                imm: 3,
            });
            b.ins_to(
                Instr::BrI {
                    cond: Cond::Gt,
                    a: Reg(0),
                    imm: 0,
                    target: 0,
                },
                l,
            );
            b.ins(Instr::Nop);
            b.bind(l);
            b.ins(Instr::Halt);
        });
        let mut env = LiveEnv::new(0);
        exec.step(0, &mut env).unwrap();
        let (ev, _) = exec.step(0, &mut env).unwrap();
        assert_eq!(ev.taken, Some(true));
        assert_eq!(ev.next_pc, 3);
    }

    #[test]
    fn not_runnable_error() {
        let mut exec = exec_of(|b| {
            b.ins(Instr::Halt);
        });
        let mut env = LiveEnv::new(0);
        exec.step(0, &mut env).unwrap();
        let (_, err) = exec.step(0, &mut env).unwrap_err();
        assert_eq!(err, VmError::NotRunnable { tid: 0 });
        let (_, err) = exec.step(9, &mut env).unwrap_err();
        assert_eq!(err, VmError::NotRunnable { tid: 9 });
    }
}
