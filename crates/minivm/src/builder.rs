//! Programmatic construction of program images with symbolic labels.
//!
//! The [`ProgramBuilder`] is what the [assembler](crate::asm) lowers to, and
//! is also convenient for generating synthetic workloads from Rust code.

use std::collections::BTreeMap;
use std::fmt;

use crate::isa::{Addr, Instr, Pc};
use crate::program::{Function, Program, ProgramError, SrcLoc, DATA_BASE};

/// A forward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incrementally builds a [`Program`], resolving labels at `finish` time.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    code: Vec<PendingInstr>,
    src: Vec<SrcLoc>,
    labels: Vec<Option<Pc>>,
    label_names: Vec<String>,
    functions: Vec<(String, Pc, Option<Pc>)>,
    data: BTreeMap<Addr, i64>,
    symbols: BTreeMap<String, Addr>,
    next_data: Addr,
    entry: Option<EntryRef>,
    cur_line: u32,
}

#[derive(Debug, Clone, Copy)]
enum EntryRef {
    Pc(Pc),
    Label(Label),
}

#[derive(Debug, Clone, Copy)]
enum PendingInstr {
    Ready(Instr),
    /// An instruction whose `Pc` operand is a label to patch.
    Patch(Instr, Label),
}

impl ProgramBuilder {
    /// Creates an empty builder with the data cursor at [`DATA_BASE`].
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            next_data: DATA_BASE,
            ..ProgramBuilder::default()
        }
    }

    /// Sets the source line recorded for subsequently emitted instructions.
    pub fn set_line(&mut self, line: u32) -> &mut Self {
        self.cur_line = line;
        self
    }

    /// Creates a fresh unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        self.label_names.push(format!("L{}", self.labels.len() - 1));
        Label(self.labels.len() - 1)
    }

    /// Creates a fresh unbound label with a debug name.
    pub fn named_label(&mut self, name: &str) -> Label {
        let l = self.label();
        self.label_names[l.0] = name.to_owned();
        l
    }

    /// Binds `label` to the current code position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(
            self.labels[label.0].is_none(),
            "label {} bound twice",
            self.label_names[label.0]
        );
        self.labels[label.0] = Some(self.here());
        self
    }

    /// The pc of the next instruction to be emitted.
    pub fn here(&self) -> Pc {
        self.code.len() as Pc
    }

    /// Emits a fully resolved instruction.
    pub fn ins(&mut self, i: Instr) -> &mut Self {
        self.code.push(PendingInstr::Ready(i));
        self.src.push(SrcLoc {
            line: self.cur_line,
            func: u32::MAX,
        });
        self
    }

    /// Emits an instruction whose single `Pc` operand will be patched to
    /// `label`'s bound position. The placeholder target in `i` is ignored.
    pub fn ins_to(&mut self, i: Instr, label: Label) -> &mut Self {
        self.code.push(PendingInstr::Patch(i, label));
        self.src.push(SrcLoc {
            line: self.cur_line,
            func: u32::MAX,
        });
        self
    }

    /// Starts a function at the current position.
    pub fn begin_func(&mut self, name: &str) -> &mut Self {
        self.functions.push((name.to_owned(), self.here(), None));
        self
    }

    /// Ends the most recently started function at the current position.
    ///
    /// # Panics
    ///
    /// Panics if there is no open function.
    pub fn end_func(&mut self) -> &mut Self {
        let here = self.here();
        let f = self
            .functions
            .iter_mut()
            .rev()
            .find(|f| f.2.is_none())
            .expect("end_func without begin_func");
        f.2 = Some(here);
        self
    }

    /// Allocates `words` zero-initialised words of data, returning the base
    /// address; registers `name` as a symbol when non-empty.
    pub fn alloc_data(&mut self, name: &str, words: u64) -> Addr {
        let base = self.next_data;
        self.next_data += words.max(1);
        if !name.is_empty() {
            self.symbols.insert(name.to_owned(), base);
        }
        base
    }

    /// Allocates initialised data words, returning the base address.
    pub fn data_words(&mut self, name: &str, values: &[i64]) -> Addr {
        let base = self.alloc_data(name, values.len() as u64);
        for (i, v) in values.iter().enumerate() {
            if *v != 0 {
                self.data.insert(base + i as u64, *v);
            }
        }
        base
    }

    /// Writes an initial value at an absolute data address.
    pub fn poke(&mut self, addr: Addr, value: i64) -> &mut Self {
        self.data.insert(addr, value);
        self
    }

    /// Sets the program entry point to a concrete pc.
    pub fn entry(&mut self, pc: Pc) -> &mut Self {
        self.entry = Some(EntryRef::Pc(pc));
        self
    }

    /// Sets the program entry point to a label bound later.
    pub fn entry_label(&mut self, label: Label) -> &mut Self {
        self.entry = Some(EntryRef::Label(label));
        self
    }

    /// Resolves labels and produces the final validated [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] when a referenced label was never
    /// bound, or a wrapped [`ProgramError`] when the assembled image fails
    /// validation.
    pub fn finish(mut self) -> Result<Program, BuildError> {
        let resolve = |labels: &[Option<Pc>], names: &[String], l: Label| {
            labels[l.0].ok_or_else(|| BuildError::UnboundLabel {
                name: names[l.0].clone(),
            })
        };
        let mut code = Vec::with_capacity(self.code.len());
        for pi in &self.code {
            let ins = match *pi {
                PendingInstr::Ready(i) => i,
                PendingInstr::Patch(i, l) => {
                    let target = resolve(&self.labels, &self.label_names, l)?;
                    patch_target(i, target)
                }
            };
            code.push(ins);
        }
        // Close any still-open function at the end of the image.
        let here = code.len() as Pc;
        let mut functions: Vec<Function> = self
            .functions
            .drain(..)
            .map(|(name, entry, end)| Function {
                name,
                entry,
                end: end.unwrap_or(here),
            })
            .collect();
        functions.sort_by_key(|f| f.entry);
        // Fill the source-map function indices now that ranges are final.
        for (idx, f) in functions.iter().enumerate() {
            for pc in f.entry..f.end {
                if let Some(s) = self.src.get_mut(pc as usize) {
                    s.func = idx as u32;
                }
            }
        }
        let entry = match self.entry {
            Some(EntryRef::Pc(pc)) => pc,
            Some(EntryRef::Label(l)) => resolve(&self.labels, &self.label_names, l)?,
            None => functions
                .iter()
                .find(|f| f.name == "main")
                .map(|f| f.entry)
                .unwrap_or(0),
        };
        let mut labels = BTreeMap::new();
        for (i, bound) in self.labels.iter().enumerate() {
            if let Some(pc) = bound {
                labels.insert(self.label_names[i].clone(), *pc);
            }
        }
        let program = Program {
            code,
            src: self.src,
            functions,
            data: self.data,
            symbols: self.symbols,
            labels,
            entry,
        };
        program.validate()?;
        Ok(program)
    }
}

fn patch_target(i: Instr, target: Pc) -> Instr {
    match i {
        Instr::Jmp { .. } => Instr::Jmp { target },
        Instr::Br { cond, a, b, .. } => Instr::Br { cond, a, b, target },
        Instr::BrI { cond, a, imm, .. } => Instr::BrI {
            cond,
            a,
            imm,
            target,
        },
        Instr::Call { .. } => Instr::Call { target },
        Instr::Spawn { dst, arg, .. } => Instr::Spawn {
            dst,
            entry: target,
            arg,
        },
        other => other,
    }
}

/// Errors from [`ProgramBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound to a position.
    UnboundLabel {
        /// Debug name of the unbound label.
        name: String,
    },
    /// The resolved image failed structural validation.
    Invalid(ProgramError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            BuildError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Invalid(e) => Some(e),
            BuildError::UnboundLabel { .. } => None,
        }
    }
}

impl From<ProgramError> for BuildError {
    fn from(e: ProgramError) -> Self {
        BuildError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Reg};

    #[test]
    fn forward_label_patched() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let done = b.label();
        b.ins(Instr::MovI {
            dst: Reg(0),
            imm: 0,
        });
        b.ins_to(
            Instr::BrI {
                cond: Cond::Eq,
                a: Reg(0),
                imm: 0,
                target: 0,
            },
            done,
        );
        b.ins(Instr::MovI {
            dst: Reg(1),
            imm: 99,
        });
        b.bind(done);
        b.ins(Instr::Halt);
        b.end_func();
        let p = b.finish().unwrap();
        assert_eq!(
            p.code[1],
            Instr::BrI {
                cond: Cond::Eq,
                a: Reg(0),
                imm: 0,
                target: 3
            }
        );
        assert_eq!(p.entry, 0);
        assert_eq!(p.functions[0].end, 4);
    }

    #[test]
    fn unbound_label_rejected() {
        let mut b = ProgramBuilder::new();
        let l = b.named_label("nowhere");
        b.ins_to(Instr::Jmp { target: 0 }, l);
        b.ins(Instr::Halt);
        let err = b.finish().unwrap_err();
        assert_eq!(
            err,
            BuildError::UnboundLabel {
                name: "nowhere".into()
            }
        );
    }

    #[test]
    fn data_allocation_is_sequential() {
        let mut b = ProgramBuilder::new();
        let a = b.data_words("xs", &[1, 2, 3]);
        let c = b.alloc_data("ys", 2);
        assert_eq!(a, DATA_BASE);
        assert_eq!(c, DATA_BASE + 3);
        b.ins(Instr::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.symbol("xs"), Some(DATA_BASE));
        assert_eq!(p.data.get(&(DATA_BASE + 1)), Some(&2));
    }

    #[test]
    fn source_map_gets_function_index() {
        let mut b = ProgramBuilder::new();
        b.set_line(10);
        b.begin_func("main");
        b.ins(Instr::Nop);
        b.ins(Instr::Halt);
        b.end_func();
        let p = b.finish().unwrap();
        assert_eq!(p.src[0].line, 10);
        assert_eq!(p.src[0].func, 0);
    }

    #[test]
    fn spawn_entry_patched() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let w = b.label();
        b.ins_to(
            Instr::Spawn {
                dst: Reg(0),
                entry: 0,
                arg: Reg(1),
            },
            w,
        );
        b.ins(Instr::Halt);
        b.end_func();
        b.begin_func("worker");
        b.bind(w);
        b.ins(Instr::Halt);
        b.end_func();
        let p = b.finish().unwrap();
        assert_eq!(
            p.code[0],
            Instr::Spawn {
                dst: Reg(0),
                entry: 2,
                arg: Reg(1)
            }
        );
    }
}
