//! Instrumentation tools — the analogue of *pintools*.
//!
//! A [`Tool`] observes every retired instruction (the PinPlay logger, the
//! slicer's trace collector, Maple's profiler are all tools) and can ask the
//! run driver to stop, which is how region boundaries and watchpoints are
//! implemented.

use crate::exec::InsEvent;

/// What the driver should do after delivering an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolControl {
    /// Keep executing.
    Continue,
    /// Stop the run; [`run`](crate::run::run) returns
    /// [`ExitStatus::ToolStop`](crate::run::ExitStatus::ToolStop).
    Stop,
}

/// An instrumentation tool receiving per-instruction events.
pub trait Tool {
    /// Called after every retired instruction (including trapping ones,
    /// which are delivered just before the run ends).
    fn on_event(&mut self, ev: &InsEvent) -> ToolControl;
}

/// A tool that observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTool;

impl Tool for NullTool {
    fn on_event(&mut self, _ev: &InsEvent) -> ToolControl {
        ToolControl::Continue
    }
}

/// Runs two tools on the same event stream; stops when either stops.
#[derive(Debug)]
pub struct ChainTool<A, B>(pub A, pub B);

impl<A: Tool, B: Tool> Tool for ChainTool<A, B> {
    fn on_event(&mut self, ev: &InsEvent) -> ToolControl {
        let a = self.0.on_event(ev);
        let b = self.1.on_event(ev);
        if a == ToolControl::Stop || b == ToolControl::Stop {
            ToolControl::Stop
        } else {
            ToolControl::Continue
        }
    }
}

impl<F: FnMut(&InsEvent) -> ToolControl> Tool for F {
    fn on_event(&mut self, ev: &InsEvent) -> ToolControl {
        self(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::LocVals;
    use crate::isa::Instr;

    fn dummy_event() -> InsEvent {
        InsEvent {
            tid: 0,
            pc: 0,
            instance: 1,
            seq: 0,
            instr: Instr::Nop,
            uses: LocVals::new(),
            defs: LocVals::new(),
            next_pc: 1,
            taken: None,
            spawned: None,
            sys_result: None,
        }
    }

    #[test]
    fn closure_is_a_tool_and_chain_stops() {
        let mut count = 0u32;
        {
            let counter = |_: &InsEvent| {
                count += 1;
                ToolControl::Continue
            };
            let stopper = |_: &InsEvent| ToolControl::Stop;
            let mut chain = ChainTool(counter, stopper);
            assert_eq!(chain.on_event(&dummy_event()), ToolControl::Stop);
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn null_tool_continues() {
        assert_eq!(NullTool.on_event(&dummy_event()), ToolControl::Continue);
    }
}
