//! The run driver: composes an executor, scheduler, environment, and tool.

use serde::{Deserialize, Serialize};

use crate::env::Environment;
use crate::exec::{Executor, VmError};
use crate::sched::Scheduler;
use crate::tool::{Tool, ToolControl};

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitStatus {
    /// Every thread halted.
    AllHalted,
    /// An instruction trapped.
    Trap(VmError),
    /// The step budget was exhausted (possible deadlock or livelock).
    FuelExhausted,
    /// A tool requested the run to stop (region boundary, breakpoint, ...).
    ToolStop,
    /// The scheduler had no thread to run while threads were still live —
    /// a scripted schedule ended early.
    ScheduleExhausted,
}

impl ExitStatus {
    /// Whether the run ended at a trap.
    pub fn is_trap(&self) -> bool {
        matches!(self, ExitStatus::Trap(_))
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Why the run stopped.
    pub status: ExitStatus,
    /// Instructions retired during this run (all threads).
    pub steps: u64,
}

/// Drives `exec` until all threads halt, a trap fires, `max_steps`
/// instructions retire, the tool stops the run, or the scheduler runs dry.
///
/// Every retired instruction (including a trapping one) is delivered to
/// `tool` before the corresponding status is returned.
pub fn run(
    exec: &mut Executor,
    sched: &mut dyn Scheduler,
    env: &mut dyn Environment,
    tool: &mut dyn Tool,
    max_steps: u64,
) -> RunResult {
    let mut steps = 0u64;
    loop {
        if exec.all_halted() {
            return RunResult {
                status: ExitStatus::AllHalted,
                steps,
            };
        }
        if steps >= max_steps {
            return RunResult {
                status: ExitStatus::FuelExhausted,
                steps,
            };
        }
        let Some(tid) = sched.pick(exec) else {
            return RunResult {
                status: ExitStatus::ScheduleExhausted,
                steps,
            };
        };
        match exec.step(tid, env) {
            Ok((ev, _outcome)) => {
                steps += 1;
                if tool.on_event(&ev) == ToolControl::Stop {
                    return RunResult {
                        status: ExitStatus::ToolStop,
                        steps,
                    };
                }
            }
            Err((ev, e)) => {
                if !matches!(e, VmError::NotRunnable { .. }) {
                    steps += 1;
                    // Deliver the trapping instruction's event so loggers and
                    // slicers see the failure point.
                    let _ = tool.on_event(&ev);
                }
                return RunResult {
                    status: ExitStatus::Trap(e),
                    steps,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crate::builder::ProgramBuilder;
    use crate::env::LiveEnv;
    use crate::exec::Executor;
    use crate::isa::{Cond, Instr, Reg};
    use crate::sched::RoundRobin;
    use crate::tool::NullTool;

    fn counting_loop(n: i64) -> Executor {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        let loop_top = b.label();
        b.ins(Instr::MovI {
            dst: Reg(0),
            imm: n,
        });
        b.bind(loop_top);
        b.ins(Instr::BinI {
            op: crate::isa::BinOp::Sub,
            dst: Reg(0),
            a: Reg(0),
            imm: 1,
        });
        b.ins_to(
            Instr::BrI {
                cond: Cond::Gt,
                a: Reg(0),
                imm: 0,
                target: 0,
            },
            loop_top,
        );
        b.ins(Instr::Halt);
        b.end_func();
        Executor::new(Arc::new(b.finish().unwrap()))
    }

    #[test]
    fn runs_to_completion() {
        let mut exec = counting_loop(10);
        let r = run(
            &mut exec,
            &mut RoundRobin::new(4),
            &mut LiveEnv::new(0),
            &mut NullTool,
            1_000,
        );
        assert_eq!(r.status, ExitStatus::AllHalted);
        assert_eq!(r.steps, 1 + 10 * 2 + 1);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut exec = counting_loop(1_000_000);
        let r = run(
            &mut exec,
            &mut RoundRobin::new(4),
            &mut LiveEnv::new(0),
            &mut NullTool,
            100,
        );
        assert_eq!(r.status, ExitStatus::FuelExhausted);
        assert_eq!(r.steps, 100);
    }

    #[test]
    fn tool_stop_is_reported() {
        let mut exec = counting_loop(10);
        let mut stop_at_5 = {
            let mut n = 0;
            move |_: &crate::exec::InsEvent| {
                n += 1;
                if n == 5 {
                    crate::tool::ToolControl::Stop
                } else {
                    crate::tool::ToolControl::Continue
                }
            }
        };
        let r = run(
            &mut exec,
            &mut RoundRobin::new(4),
            &mut LiveEnv::new(0),
            &mut stop_at_5,
            1_000,
        );
        assert_eq!(r.status, ExitStatus::ToolStop);
        assert_eq!(r.steps, 5);
    }

    #[test]
    fn trap_event_delivered_to_tool() {
        let mut b = ProgramBuilder::new();
        b.begin_func("main");
        b.ins(Instr::MovI {
            dst: Reg(0),
            imm: 0,
        });
        b.ins(Instr::Assert { src: Reg(0) });
        b.end_func();
        let mut exec = Executor::new(Arc::new(b.finish().unwrap()));
        let mut seen = Vec::new();
        let mut spy = |ev: &crate::exec::InsEvent| {
            seen.push(ev.pc);
            crate::tool::ToolControl::Continue
        };
        let r = run(
            &mut exec,
            &mut RoundRobin::new(4),
            &mut LiveEnv::new(0),
            &mut spy,
            1_000,
        );
        assert!(r.status.is_trap());
        assert_eq!(seen, vec![0, 1], "trap event delivered");
        assert_eq!(r.steps, 2);
    }
}
