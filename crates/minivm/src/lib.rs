//! # minivm — the execution substrate for the DrDebug reproduction
//!
//! The DrDebug paper (CGO 2014) builds on Intel Pin: its logger, replayer,
//! and dynamic slicer all observe *real x86 binaries* through dynamic binary
//! instrumentation. This crate is the substitute substrate: a multi-threaded,
//! sequentially consistent register-machine VM whose ISA deliberately keeps
//! the x86 features the paper's techniques hinge on:
//!
//! * **indirect jumps** through registers/jump tables — the source of static
//!   CFG imprecision addressed in paper §5.1;
//! * **`push`/`pop` register save/restore** at function entry/exit — the
//!   source of spurious dependences addressed in paper §5.2;
//! * **shared memory, locks, CAS** — the raw material of the concurrency
//!   bugs DrDebug debugs;
//! * **non-deterministic syscalls and scheduling** — what PinPlay-style
//!   pinballs must capture for deterministic replay.
//!
//! The crate exposes a Pin-like instrumentation interface: drive an
//! [`exec::Executor`] with a [`sched::Scheduler`] and an
//! [`env::Environment`], and observe every retired instruction as an
//! [`exec::InsEvent`] through a [`tool::Tool`] — registers and memory cells
//! read/written (with values), branch outcomes, spawns, and syscall results.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use minivm::asm::assemble;
//! use minivm::env::LiveEnv;
//! use minivm::exec::Executor;
//! use minivm::run::{run, ExitStatus};
//! use minivm::sched::RoundRobin;
//! use minivm::tool::NullTool;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     r"
//!     .text
//!     .func main
//!         movi r0, 21
//!         addi r0, r0, 21
//!         print r0
//!         halt
//!     .endfunc
//!     ",
//! )?;
//! let mut exec = Executor::new(Arc::new(program));
//! let result = run(
//!     &mut exec,
//!     &mut RoundRobin::new(16),
//!     &mut LiveEnv::new(0),
//!     &mut NullTool,
//!     10_000,
//! );
//! assert_eq!(result.status, ExitStatus::AllHalted);
//! assert_eq!(exec.output(), &[42]);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod builder;
pub mod env;
pub mod exec;
pub mod isa;
pub mod machine;
pub mod program;
pub mod run;
pub mod sched;
pub mod tool;

pub use asm::{assemble, AsmError};
pub use env::{Environment, LiveEnv, ScriptedEnv};
pub use exec::{ExecState, Executor, InsEvent, LocVals, StepOutcome, VmError};
pub use isa::{Addr, BinOp, Cond, Instr, Loc, Pc, Reg, SysCall};
pub use machine::{Memory, Snapshot, ThreadState, ThreadStatus, Tid, MAX_THREADS};
pub use program::{Function, Program, SrcLoc};
pub use run::{run, ExitStatus, RunResult};
pub use sched::{RandomSched, RoundRobin, Scheduler, ScriptedSched};
pub use tool::{ChainTool, NullTool, Tool, ToolControl};
