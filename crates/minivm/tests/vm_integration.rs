//! VM integration tests: recursion, indirect calls, trap edge cases, and
//! scheduler/VM interactions that span modules.

use std::sync::Arc;

use minivm::{
    assemble, run, Executor, ExitStatus, LiveEnv, NullTool, RandomSched, Reg, RoundRobin, VmError,
};

fn run_src(src: &str, quantum: u64, fuel: u64) -> (Executor, ExitStatus) {
    let p = Arc::new(assemble(src).unwrap());
    let mut exec = Executor::new(Arc::clone(&p));
    let r = run(
        &mut exec,
        &mut RoundRobin::new(quantum),
        &mut LiveEnv::new(5),
        &mut NullTool,
        fuel,
    );
    (exec, r.status)
}

#[test]
fn recursive_factorial() {
    let (exec, status) = run_src(
        r"
        .text
        .func main
            movi r0, 10
            call fact
            print r1
            halt
        .endfunc
        .func fact
            ; r1 = r0!
            bgti r0, 1, rec
            movi r1, 1
            ret
        rec:
            push r0
            subi r0, r0, 1
            call fact
            pop r0
            mul r1, r1, r0
            ret
        .endfunc
        ",
        16,
        1_000_000,
    );
    assert_eq!(status, ExitStatus::AllHalted);
    assert_eq!(exec.output(), &[3_628_800]);
}

#[test]
fn unbounded_recursion_hits_stack_overflow() {
    let (_, status) = run_src(
        r"
        .text
        .func main
            call main
            halt
        .endfunc
        ",
        16,
        1_000_000,
    );
    assert!(
        matches!(
            status,
            ExitStatus::Trap(VmError::StackOverflow { tid: 0, .. })
        ),
        "{status:?}"
    );
}

#[test]
fn indirect_call_dispatch_table() {
    // Virtual dispatch: function pointers stored in a vtable.
    let (exec, status) = run_src(
        r"
        .data
        vtable: .word @meth_a, @meth_b
        .text
        .func main
            movi r0, 1          ; select meth_b
            la r1, vtable
            add r1, r1, r0
            load r2, r1, 0
            callind r2
            print r3
            halt
        .endfunc
        .func meth_a
            movi r3, 111
            ret
        .endfunc
        .func meth_b
            movi r3, 222
            ret
        .endfunc
        ",
        16,
        10_000,
    );
    assert_eq!(status, ExitStatus::AllHalted);
    assert_eq!(exec.output(), &[222]);
}

#[test]
fn indirect_call_to_invalid_target_traps() {
    let (_, status) = run_src(
        r"
        .text
        .func main
            movi r2, 9999
            callind r2
            halt
        .endfunc
        ",
        16,
        10_000,
    );
    assert!(matches!(status, ExitStatus::Trap(VmError::BadPc { .. })));
}

#[test]
fn return_with_corrupted_stack_traps() {
    let (_, status) = run_src(
        r"
        .text
        .func main
            movi r1, -77
            push r1
            ret          ; 'return' to a garbage address
        .endfunc
        ",
        16,
        10_000,
    );
    assert!(matches!(status, ExitStatus::Trap(VmError::BadPc { .. })));
}

#[test]
fn pop_from_empty_stack_traps() {
    let (_, status) = run_src(
        r"
        .text
        .func main
            pop r1
            halt
        .endfunc
        ",
        16,
        10_000,
    );
    assert!(matches!(
        status,
        ExitStatus::Trap(VmError::StackOverflow { .. })
    ));
}

#[test]
fn fence_is_a_retiring_noop() {
    let (exec, status) = run_src(
        r"
        .text
        .func main
            fence
            fence
            movi r1, 1
            halt
        .endfunc
        ",
        16,
        10_000,
    );
    assert_eq!(status, ExitStatus::AllHalted);
    assert_eq!(exec.icount(0), 4);
}

#[test]
fn deadlock_exhausts_fuel() {
    // Two threads acquire two locks in opposite order with a handshake that
    // guarantees both hold one lock before trying the other.
    let (_, status) = run_src(
        r"
        .data
        m1: .word 0
        m2: .word 0
        ready: .word 0
        .text
        .func main
            movi r1, 0
            spawn r9, other, r1
            la r2, m1
            lock r2
            ; wait until the other thread holds m2
            la r5, ready
        wait_other:
            load r6, r5, 0
            beqi r6, 0, wait_other
            la r3, m2
            lock r3          ; deadlock: other holds m2, wants m1
            halt
        .endfunc
        .func other
            la r2, m2
            lock r2
            la r5, ready
            movi r6, 1
            store r6, r5, 0
            la r3, m1
            lock r3
            halt
        .endfunc
        ",
        4,
        50_000,
    );
    assert_eq!(
        status,
        ExitStatus::FuelExhausted,
        "classic ABBA deadlock spins"
    );
}

#[test]
fn many_threads_with_random_scheduler() {
    let p = Arc::new(
        assemble(
            r"
            .data
            total: .word 0
            .text
            .func main
                movi r5, 8
                movi r1, 1
            spawn_loop:
                spawn r2, worker, r1
                subi r5, r5, 1
                bgti r5, 0, spawn_loop
                ; join all 8 workers (tids 1..=8)
                movi r5, 1
            join_loop:
                join r5
                addi r5, r5, 1
                blei r5, 8, join_loop
                la r3, total
                load r4, r3, 0
                print r4
                halt
            .endfunc
            .func worker
                la r1, total
                xadd r2, r1, r0
                halt
            .endfunc
            ",
        )
        .unwrap(),
    );
    // Whatever the interleaving, the atomic adds always total 8.
    for seed in 0..5 {
        let mut exec = Executor::new(Arc::clone(&p));
        let r = run(
            &mut exec,
            &mut RandomSched::new(seed, 3),
            &mut LiveEnv::new(seed),
            &mut NullTool,
            1_000_000,
        );
        assert_eq!(r.status, ExitStatus::AllHalted, "seed {seed}");
        assert_eq!(exec.output(), &[8], "seed {seed}");
        assert_eq!(exec.num_threads(), 9);
    }
}

#[test]
fn join_on_self_spins_forever() {
    let (_, status) = run_src(
        r"
        .text
        .func main
            gettid r1
            join r1      ; waits for itself: classic self-join bug
            halt
        .endfunc
        ",
        16,
        10_000,
    );
    assert_eq!(status, ExitStatus::FuelExhausted);
}

#[test]
fn output_and_state_accessors() {
    let (exec, _) = run_src(
        r"
        .data
        xs: .word 4, 5, 6
        .text
        .func main
            la r1, xs
            load r2, r1, 1
            print r2
            halt
        .endfunc
        ",
        16,
        10_000,
    );
    assert_eq!(exec.output(), &[5]);
    assert_eq!(exec.read_reg(0, Reg(2)), 5);
    let xs = exec.program().symbol("xs").unwrap();
    assert_eq!(exec.read_mem(xs + 2), 6);
    assert_eq!(exec.total_icount(), 4);
}

mod trap_edges {
    use super::*;

    #[test]
    fn bini_div_by_zero_traps() {
        let (_, status) = run_src(
            r"
            .text
            .func main
                movi r1, 5
                divi r2, r1, 0
            .endfunc
            ",
            8,
            100,
        );
        assert!(matches!(
            status,
            ExitStatus::Trap(VmError::DivByZero { .. })
        ));
    }

    #[test]
    fn remi_by_zero_traps() {
        let (_, status) = run_src(
            r"
            .text
            .func main
                movi r1, 5
                remi r2, r1, 0
            .endfunc
            ",
            8,
            100,
        );
        assert!(matches!(
            status,
            ExitStatus::Trap(VmError::DivByZero { .. })
        ));
    }

    #[test]
    fn negative_indirect_jump_traps() {
        let (_, status) = run_src(
            r"
            .text
            .func main
                movi r1, -5
                jmpind r1
            .endfunc
            ",
            8,
            100,
        );
        assert!(matches!(status, ExitStatus::Trap(VmError::BadPc { .. })));
    }

    #[test]
    fn join_invalid_tid_traps() {
        let (_, status) = run_src(
            r"
            .text
            .func main
                movi r1, 42
                join r1
            .endfunc
            ",
            8,
            100,
        );
        assert!(matches!(status, ExitStatus::Trap(VmError::BadTid { .. })));
    }

    #[test]
    fn falling_off_the_code_image_traps() {
        let (_, status) = run_src(
            r"
            .text
            .func main
                nop
            .endfunc
            ",
            8,
            100,
        );
        assert!(matches!(status, ExitStatus::Trap(VmError::BadPc { .. })));
    }
}

mod atomic_semantics {
    use super::*;

    #[test]
    fn cas_success_and_failure() {
        let (exec, status) = run_src(
            r"
            .data
            cell: .word 10
            .text
            .func main
                la r1, cell
                movi r2, 10      ; expect (matches)
                movi r3, 20      ; new
                cas r4, r1, r2, r3
                ; r4 = 10 (old), cell = 20
                movi r2, 99      ; expect (mismatch)
                movi r3, 50
                cas r5, r1, r2, r3
                ; r5 = 20, cell unchanged
                halt
            .endfunc
            ",
            8,
            100,
        );
        assert_eq!(status, ExitStatus::AllHalted);
        assert_eq!(exec.read_reg(0, Reg(4)), 10);
        assert_eq!(exec.read_reg(0, Reg(5)), 20);
        let cell = exec.program().symbol("cell").unwrap();
        assert_eq!(exec.read_mem(cell), 20);
    }

    #[test]
    fn xadd_returns_old_value() {
        let (exec, _) = run_src(
            r"
            .data
            cell: .word 7
            .text
            .func main
                la r1, cell
                movi r2, 5
                xadd r3, r1, r2
                halt
            .endfunc
            ",
            8,
            100,
        );
        assert_eq!(exec.read_reg(0, Reg(3)), 7, "xadd returns the old value");
        let cell = exec.program().symbol("cell").unwrap();
        assert_eq!(exec.read_mem(cell), 12);
    }

    #[test]
    fn gettid_differs_per_thread() {
        let (exec, _) = run_src(
            r"
            .data
            out: .space 2
            .text
            .func main
                movi r1, 0
                spawn r2, worker, r1
                gettid r3
                la r4, out
                store r3, r4, 0
                join r2
                halt
            .endfunc
            .func worker
                gettid r3
                la r4, out
                store r3, r4, 1
                halt
            .endfunc
            ",
            8,
            1000,
        );
        let out = exec.program().symbol("out").unwrap();
        assert_eq!(exec.read_mem(out), 0);
        assert_eq!(exec.read_mem(out + 1), 1);
    }
}

#[test]
fn spawning_past_the_thread_limit_traps() {
    let (_, status) = run_src(
        r"
        .text
        .func main
            movi r1, 0
            movi r5, 100     ; try to spawn 100 threads
        more:
            spawn r2, w, r1
            subi r5, r5, 1
            bgti r5, 0, more
            halt
        .endfunc
        .func w
            halt
        .endfunc
        ",
        8,
        100_000,
    );
    assert!(
        matches!(status, ExitStatus::Trap(VmError::BadTid { .. })),
        "spawn beyond MAX_THREADS must refuse, got {status:?}"
    );
}
