//! Property tests for the assembler and executor:
//!
//! * every instruction's `Display` output parses back to the same
//!   instruction (disassembly ↔ assembly coherence);
//! * the executor is a deterministic function of (program, schedule,
//!   environment) — two identical live runs agree bit for bit.

use std::sync::Arc;

use proptest::prelude::*;

use minivm::{
    assemble, run, BinOp, Cond, Executor, Instr, LiveEnv, NullTool, RandomSched, Reg, SysCall,
};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg)
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Slt),
        Just(BinOp::Seq),
        Just(BinOp::Min),
        Just(BinOp::Max),
    ]
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
    ]
}

/// Instructions whose textual form is position-independent (jump targets
/// are small pcs that stay in range of the 3-instruction test image).
fn instr_strategy() -> impl Strategy<Value = Instr> {
    let r = reg_strategy;
    prop_oneof![
        (r(), any::<i64>()).prop_map(|(dst, imm)| Instr::MovI { dst, imm }),
        (r(), r()).prop_map(|(dst, src)| Instr::Mov { dst, src }),
        (r(), r(), -64i64..64).prop_map(|(dst, base, off)| Instr::Load { dst, base, off }),
        (r(), r(), -64i64..64).prop_map(|(src, base, off)| Instr::Store { src, base, off }),
        r().prop_map(|src| Instr::Push { src }),
        r().prop_map(|dst| Instr::Pop { dst }),
        (binop_strategy(), r(), r(), r()).prop_map(|(op, dst, a, b)| Instr::Bin { op, dst, a, b }),
        (binop_strategy(), r(), r(), any::<i32>()).prop_map(|(op, dst, a, imm)| Instr::BinI {
            op,
            dst,
            a,
            imm: i64::from(imm)
        }),
        (0u32..3).prop_map(|target| Instr::Jmp { target }),
        (cond_strategy(), r(), r(), 0u32..3).prop_map(|(cond, a, b, target)| Instr::Br {
            cond,
            a,
            b,
            target
        }),
        (cond_strategy(), r(), any::<i32>(), 0u32..3).prop_map(|(cond, a, imm, target)| {
            Instr::BrI {
                cond,
                a,
                imm: i64::from(imm),
                target,
            }
        }),
        r().prop_map(|src| Instr::JmpInd { src }),
        (0u32..3).prop_map(|target| Instr::Call { target }),
        r().prop_map(|src| Instr::CallInd { src }),
        Just(Instr::Ret),
        r().prop_map(|addr| Instr::Lock { addr }),
        r().prop_map(|addr| Instr::Unlock { addr }),
        (r(), r(), r(), r()).prop_map(|(dst, addr, expect, new)| Instr::Cas {
            dst,
            addr,
            expect,
            new
        }),
        (r(), r(), r()).prop_map(|(dst, addr, val)| Instr::AtomicAdd { dst, addr, val }),
        Just(Instr::Fence),
        (r(), 0u32..3, r()).prop_map(|(dst, entry, arg)| Instr::Spawn { dst, entry, arg }),
        r().prop_map(|tid| Instr::Join { tid }),
        (
            prop_oneof![
                Just(SysCall::ReadInput),
                Just(SysCall::Rand),
                Just(SysCall::Time)
            ],
            r()
        )
            .prop_map(|(call, dst)| Instr::Sys { call, dst }),
        r().prop_map(|dst| Instr::GetTid { dst }),
        r().prop_map(|src| Instr::Assert { src }),
        r().prop_map(|src| Instr::Print { src }),
        Just(Instr::Halt),
        Just(Instr::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `assemble(display(i))` reproduces `i` exactly.
    #[test]
    fn display_parse_roundtrip(ins in instr_strategy()) {
        let src = format!(".text\n.func main\n {ins}\n nop\n nop\n.endfunc\n");
        let p = assemble(&src).unwrap_or_else(|e| panic!("`{ins}` failed to parse: {e}"));
        prop_assert_eq!(p.code[0], ins, "textual form: `{}`", ins);
    }

    /// Two live runs with identical seeds are bit-identical — the executor
    /// itself is deterministic (this is what makes schedule logs sufficient
    /// for replay).
    #[test]
    fn executor_is_deterministic(sched_seed in any::<u64>(), env_seed in any::<u64>()) {
        let p = &workloads::all_parsec()[5]; // canneal: rand + CAS traffic
        let program = (p.build)(30);
        let run_once = || {
            let mut exec = Executor::new(Arc::clone(&program));
            let r = run(
                &mut exec,
                &mut RandomSched::new(sched_seed, 4),
                &mut LiveEnv::new(env_seed),
                &mut NullTool,
                1_000_000,
            );
            (r.status, r.steps, exec.snapshot(), exec.output().to_vec())
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(a.3, b.3);
    }
}
