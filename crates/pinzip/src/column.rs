//! Bulk varint column readers — the hot loops behind columnar payloads.
//!
//! A columnar events frame is a handful of long homogeneous runs of
//! varints (one per field). Decoding them element-at-a-time from an
//! unoptimized caller dominates load time, so the loops live here in the
//! codec crate next to [`varint`]: callers issue one call
//! per *column* and get the whole vector back. Errors carry the index of
//! the offending element so callers can produce precise diagnostics
//! without paying for per-element error plumbing on the happy path.

use crate::varint;

/// Why a column failed to decode, pointing at the element responsible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnError {
    /// The buffer ended while reading element `index`.
    Truncated {
        /// Index of the element that ran off the end of the buffer.
        index: usize,
    },
    /// Element `index` decoded to `value`, which does not fit the
    /// column's range (type width, cap, or running-sum bound).
    Range {
        /// Index of the out-of-range element.
        index: usize,
        /// The decoded value that violated the bound.
        value: u64,
    },
}

/// Reads `n` LEB128 values into a vector.
///
/// # Errors
///
/// [`ColumnError::Truncated`] naming the element the buffer ended in.
pub fn read_u64_column(buf: &[u8], pos: &mut usize, n: usize) -> Result<Vec<u64>, ColumnError> {
    let mut out = Vec::with_capacity(n);
    for index in 0..n {
        let v = varint::read_u64(buf, pos).ok_or(ColumnError::Truncated { index })?;
        out.push(v);
    }
    Ok(out)
}

/// Reads `n` LEB128 values that must each fit `u32`.
///
/// # Errors
///
/// [`ColumnError::Truncated`] on a short buffer, [`ColumnError::Range`]
/// naming the first element exceeding `u32::MAX`.
pub fn read_u32_column(buf: &[u8], pos: &mut usize, n: usize) -> Result<Vec<u32>, ColumnError> {
    let mut out = Vec::with_capacity(n);
    for index in 0..n {
        let v = varint::read_u64(buf, pos).ok_or(ColumnError::Truncated { index })?;
        let v = u32::try_from(v).map_err(|_| ColumnError::Range { index, value: v })?;
        out.push(v);
    }
    Ok(out)
}

/// Reads `n` zigzag-coded signed values.
///
/// # Errors
///
/// [`ColumnError::Truncated`] naming the element the buffer ended in.
pub fn read_i64_column(buf: &[u8], pos: &mut usize, n: usize) -> Result<Vec<i64>, ColumnError> {
    let mut out = Vec::with_capacity(n);
    for index in 0..n {
        let v = varint::read_i64(buf, pos).ok_or(ColumnError::Truncated { index })?;
        out.push(v);
    }
    Ok(out)
}

/// Reads `n` delta-coded values and returns their running (prefix) sums,
/// each bounded by `cap` — the shape of an exclusive-end-offset column.
///
/// # Errors
///
/// [`ColumnError::Truncated`] on a short buffer, [`ColumnError::Range`]
/// carrying the delta that pushed the running sum past `cap` (or past
/// `u64`).
pub fn read_prefix_sum_column(
    buf: &[u8],
    pos: &mut usize,
    n: usize,
    cap: u64,
) -> Result<Vec<u32>, ColumnError> {
    let mut out = Vec::with_capacity(n);
    let mut sum = 0u64;
    for index in 0..n {
        let d = varint::read_u64(buf, pos).ok_or(ColumnError::Truncated { index })?;
        sum = sum
            .checked_add(d)
            .filter(|s| *s <= cap)
            .ok_or(ColumnError::Range { index, value: d })?;
        out.push(sum as u32);
    }
    Ok(out)
}

/// Reads `n` raw bytes as a column, each at most `max`.
///
/// # Errors
///
/// [`ColumnError::Truncated`] if fewer than `n` bytes remain (index `0`),
/// [`ColumnError::Range`] naming the first byte exceeding `max`.
pub fn read_byte_column(
    buf: &[u8],
    pos: &mut usize,
    n: usize,
    max: u8,
) -> Result<Vec<u8>, ColumnError> {
    let bytes = buf
        .get(*pos..*pos + n)
        .ok_or(ColumnError::Truncated { index: 0 })?;
    if let Some(index) = bytes.iter().position(|b| *b > max) {
        return Err(ColumnError::Range {
            index,
            value: u64::from(bytes[index]),
        });
    }
    *pos += n;
    Ok(bytes.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_column_roundtrip() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 1 << 40, u64::MAX];
        for v in vals {
            varint::write_u64(&mut buf, v);
        }
        let mut pos = 0;
        assert_eq!(
            read_u64_column(&buf, &mut pos, vals.len()).unwrap(),
            vals.to_vec()
        );
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncation_names_the_element() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 7);
        varint::write_u64(&mut buf, 9);
        let mut pos = 0;
        assert_eq!(
            read_u64_column(&buf, &mut pos, 3),
            Err(ColumnError::Truncated { index: 2 })
        );
    }

    #[test]
    fn u32_column_rejects_wide_values() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 5);
        varint::write_u64(&mut buf, u64::from(u32::MAX) + 1);
        let mut pos = 0;
        assert_eq!(
            read_u32_column(&buf, &mut pos, 2),
            Err(ColumnError::Range {
                index: 1,
                value: u64::from(u32::MAX) + 1
            })
        );
    }

    #[test]
    fn i64_column_roundtrips_negatives() {
        let mut buf = Vec::new();
        let vals = [0i64, -1, 1, i64::MIN, i64::MAX];
        for v in vals {
            varint::write_i64(&mut buf, v);
        }
        let mut pos = 0;
        assert_eq!(
            read_i64_column(&buf, &mut pos, vals.len()).unwrap(),
            vals.to_vec()
        );
    }

    #[test]
    fn prefix_sums_accumulate_and_cap() {
        let mut buf = Vec::new();
        for d in [2u64, 0, 3, 1] {
            varint::write_u64(&mut buf, d);
        }
        let mut pos = 0;
        assert_eq!(
            read_prefix_sum_column(&buf, &mut pos, 4, 6).unwrap(),
            vec![2, 2, 5, 6]
        );
        let mut pos = 0;
        assert_eq!(
            read_prefix_sum_column(&buf, &mut pos, 4, 5),
            Err(ColumnError::Range { index: 3, value: 1 })
        );
    }

    #[test]
    fn byte_column_validates_range_and_length() {
        let buf = [0u8, 2, 1, 9];
        let mut pos = 0;
        assert_eq!(
            read_byte_column(&buf, &mut pos, 3, 2).unwrap(),
            vec![0, 2, 1]
        );
        assert_eq!(pos, 3);
        let mut pos = 0;
        assert_eq!(
            read_byte_column(&buf, &mut pos, 4, 2),
            Err(ColumnError::Range { index: 3, value: 9 })
        );
        let mut pos = 0;
        assert_eq!(
            read_byte_column(&buf, &mut pos, 5, 9),
            Err(ColumnError::Truncated { index: 0 })
        );
    }
}
