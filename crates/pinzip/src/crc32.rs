//! CRC-32 (ISO-HDLC / zlib polynomial) integrity checksums.
//!
//! Pinball container frames carry a CRC over their compressed payload so a
//! flipped bit or a truncated tail is detected *per chunk*: the loader can
//! name the damaged chunk and still recover the intact prefix, instead of
//! losing the whole recording the way a single-blob format does.

/// The reflected generator polynomial of CRC-32/ISO-HDLC (the zlib/PNG
/// variant).
const POLY: u32 = 0xedb8_8320;

/// Byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC-32 of `data` (initial value and final xor `0xffffffff`,
/// matching zlib's `crc32()`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0x5au8; 1024];
        let base = crc32(&data);
        for i in [0usize, 100, 1023] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn truncation_changes_crc() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let base = crc32(&data);
        assert_ne!(crc32(&data[..999]), base);
    }
}
