//! CRC-32 (ISO-HDLC / zlib polynomial) integrity checksums.
//!
//! Pinball container frames carry a CRC over their compressed payload so a
//! flipped bit or a truncated tail is detected *per chunk*: the loader can
//! name the damaged chunk and still recover the intact prefix, instead of
//! losing the whole recording the way a single-blob format does.
//!
//! The hot-path [`crc32`] uses *slicing-by-8*: eight precomputed 256-entry
//! tables let the loop consume eight input bytes per iteration instead of
//! one, with table `k` absorbing the byte that sits `k` positions ahead of
//! the running remainder. [`crc32_bytewise`] keeps the classic single-table
//! formulation as the differential-testing reference; both compute the
//! identical function.

/// The reflected generator polynomial of CRC-32/ISO-HDLC (the zlib/PNG
/// variant).
const POLY: u32 = 0xedb8_8320;

/// Slicing-by-8 lookup tables, built at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k][b]` is the remainder of byte
/// `b` followed by `k` zero bytes, so eight table lookups advance the CRC
/// over eight input bytes at once.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Computes the CRC-32 of `data` (initial value and final xor `0xffffffff`,
/// matching zlib's `crc32()`), eight bytes per step.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().expect("4-byte slice")) ^ crc;
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][chunk[4] as usize]
            ^ TABLES[2][chunk[5] as usize]
            ^ TABLES[1][chunk[6] as usize]
            ^ TABLES[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    crc ^ u32::MAX
}

/// The classic byte-at-a-time CRC-32 — the reference implementation the
/// slicing-by-8 [`crc32`] is differentially tested against.
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_eq!(crc32_bytewise(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32_bytewise(b""), 0);
        assert_eq!(crc32_bytewise(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length() {
        // Lengths straddling the 8-byte fast path, including every
        // remainder size.
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn sliced_matches_bytewise_on_random_inputs() {
        // A deterministic xorshift stream; checks long unaligned runs.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        for (start, len) in [(0, 10_000), (1, 9_993), (3, 4_097), (7, 11), (5, 0)] {
            let slice = &data[start..start + len];
            assert_eq!(
                crc32(slice),
                crc32_bytewise(slice),
                "start {start} len {len}"
            );
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0x5au8; 1024];
        let base = crc32(&data);
        for i in [0usize, 100, 1023] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn truncation_changes_crc() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let base = crc32(&data);
        assert_ne!(crc32(&data[..999]), base);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::{crc32, crc32_bytewise};

    proptest! {
        #[test]
        fn sliced_equals_bytewise(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            prop_assert_eq!(crc32(&data), crc32_bytewise(&data));
        }
    }
}
