//! Framed, checksummed streaming compression.
//!
//! A *frame* is the unit of the chunked pinball container: a one-byte kind
//! tag, the varint-coded length of the compressed payload, a CRC-32 of the
//! compressed payload, and the payload itself ([`crate::lzss`]
//! compressed independently of every other frame). Because each frame is
//! self-contained, a reader can verify and decode frames one at a time,
//! skip over payloads it does not need, and — when a frame fails its CRC or
//! the buffer ends mid-frame — report exactly which frame is damaged while
//! everything before it remains usable.
//!
//! Wire layout of one frame:
//!
//! ```text
//! +------+----------------+------------+----------------------+
//! | kind | varint(c_len)  | crc32 (LE) | payload (c_len bytes) |
//! | 1 B  | 1..10 B        | 4 B        | LZSS-compressed       |
//! +------+----------------+------------+----------------------+
//! ```

use std::fmt;

use crate::crc32::crc32;
use crate::lzss;
use crate::varint;

/// Why a frame could not be read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended inside the frame header or payload.
    Truncated,
    /// The stored CRC does not match the payload bytes.
    CrcMismatch {
        /// CRC recorded in the frame header.
        stored: u32,
        /// CRC computed over the payload actually present.
        computed: u32,
    },
    /// The payload failed to decompress.
    Payload(lzss::DecodeError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("frame truncated"),
            FrameError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "frame crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
            FrameError::Payload(e) => write!(f, "frame payload corrupt: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded frame: its kind tag and decompressed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Application-defined kind tag.
    pub kind: u8,
    /// Decompressed payload bytes.
    pub payload: Vec<u8>,
}

/// Compresses `payload` and appends a complete frame to `out`, returning
/// the byte offset at which the frame starts.
pub fn write_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) -> usize {
    let offset = out.len();
    let compressed = lzss::compress(payload);
    out.push(kind);
    varint::write_u64(out, compressed.len() as u64);
    out.extend_from_slice(&crc32(&compressed).to_le_bytes());
    out.extend_from_slice(&compressed);
    offset
}

/// Reads the frame starting at `*pos`, advancing `*pos` past it.
///
/// The CRC is verified against the compressed payload before decompression,
/// so any bit flip inside the frame is caught even when the flipped stream
/// still happens to decompress.
///
/// # Errors
///
/// Returns a [`FrameError`] on truncation, CRC mismatch, or a payload that
/// fails to decompress.
pub fn read_frame(buf: &[u8], pos: &mut usize) -> Result<Frame, FrameError> {
    let (frame, consumed) = read_frame_at(buf, *pos)?;
    *pos += consumed;
    Ok(frame)
}

/// Reads the frame starting at `offset` without a cursor, returning the
/// frame and its total encoded size.
///
/// # Errors
///
/// See [`read_frame`].
pub fn read_frame_at(buf: &[u8], offset: usize) -> Result<(Frame, usize), FrameError> {
    let mut pos = offset;
    let kind = *buf.get(pos).ok_or(FrameError::Truncated)?;
    pos += 1;
    let clen = varint::read_u64(buf, &mut pos).ok_or(FrameError::Truncated)? as usize;
    let crc_bytes: [u8; 4] = buf
        .get(pos..pos + 4)
        .ok_or(FrameError::Truncated)?
        .try_into()
        .expect("4-byte slice");
    let stored = u32::from_le_bytes(crc_bytes);
    pos += 4;
    let compressed = buf.get(pos..pos + clen).ok_or(FrameError::Truncated)?;
    pos += clen;
    let computed = crc32(compressed);
    if computed != stored {
        return Err(FrameError::CrcMismatch { stored, computed });
    }
    let payload = lzss::decompress(compressed).map_err(FrameError::Payload)?;
    Ok((Frame { kind, payload }, pos - offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        let off0 = write_frame(&mut buf, 1, b"hello hello hello hello");
        let off1 = write_frame(&mut buf, 2, b"");
        assert_eq!(off0, 0);
        assert!(off1 > 0);
        let mut pos = 0;
        let f0 = read_frame(&buf, &mut pos).unwrap();
        assert_eq!(f0.kind, 1);
        assert_eq!(f0.payload, b"hello hello hello hello");
        assert_eq!(pos, off1);
        let f1 = read_frame(&buf, &mut pos).unwrap();
        assert_eq!(f1.kind, 2);
        assert!(f1.payload.is_empty());
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn random_access_via_offsets() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, &vec![7u8; 500]);
        let off = write_frame(&mut buf, 9, b"target");
        let (f, len) = read_frame_at(&buf, off).unwrap();
        assert_eq!(f.kind, 9);
        assert_eq!(f.payload, b"target");
        assert_eq!(off + len, buf.len());
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"some payload with enough bytes to matter");
        // Flips in the length/crc/payload must all surface as errors; flips
        // in the kind byte change `kind` but keep the frame valid, so skip
        // byte 0.
        for i in 1..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[i] ^= 1 << bit;
                let mut pos = 0;
                match read_frame(&bad, &mut pos) {
                    Err(_) => {}
                    // A flipped length varint can shrink the payload; the
                    // CRC then fails. A flip that *grows* it truncates. The
                    // only acceptable Ok is a frame identical to the
                    // original (impossible here since bytes differ).
                    Ok(f) => panic!("flip at byte {i} bit {bit} went undetected: {f:?}"),
                }
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, &vec![42u8; 300]);
        for len in 0..buf.len() {
            let mut pos = 0;
            assert!(
                read_frame(&buf[..len], &mut pos).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }
}
