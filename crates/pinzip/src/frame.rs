//! Framed, checksummed streaming compression.
//!
//! A *frame* is the unit of the chunked pinball container: a one-byte kind
//! tag, the varint-coded length of the compressed payload, a CRC-32 of the
//! compressed payload, and the payload itself ([`crate::lzss`]
//! compressed independently of every other frame). Because each frame is
//! self-contained, a reader can verify and decode frames one at a time,
//! skip over payloads it does not need, and — when a frame fails its CRC or
//! the buffer ends mid-frame — report exactly which frame is damaged while
//! everything before it remains usable.
//!
//! Wire layout of one frame:
//!
//! ```text
//! +------+----------------+------------+----------------------+
//! | kind | varint(c_len)  | crc32 (LE) | payload (c_len bytes) |
//! | 1 B  | 1..10 B        | 4 B        | LZSS-compressed       |
//! +------+----------------+------------+----------------------+
//! ```
//!
//! *Coded* frames (the v3 pinball container) add one **codec byte** after
//! the kind, naming how the payload was serialized *before* compression —
//! so a reader can dispatch JSON vs [`crate::binser`] per frame:
//!
//! ```text
//! +------+-------+----------------+------------+----------------------+
//! | kind | codec | varint(c_len)  | crc32 (LE) | payload (c_len bytes) |
//! | 1 B  | 1 B   | 1..10 B        | 4 B        | LZSS-compressed       |
//! +------+-------+----------------+------------+----------------------+
//! ```
//!
//! Both layouts decode in two stages, which is what lets the container
//! pipeline multi-chunk work across threads: [`peek_frame`] walks frame
//! *headers* without touching payload bytes (cheap, strictly sequential),
//! and [`decode_payload`] does the expensive CRC verify + decompress for
//! one frame in isolation (freely parallel).

use std::fmt;
use std::ops::Range;

use crate::crc32::crc32;
use crate::lzss;
use crate::varint;

/// Why a frame could not be read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended inside the frame header or payload.
    Truncated,
    /// The stored CRC does not match the payload bytes.
    CrcMismatch {
        /// CRC recorded in the frame header.
        stored: u32,
        /// CRC computed over the payload actually present.
        computed: u32,
    },
    /// The payload failed to decompress.
    Payload(lzss::DecodeError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("frame truncated"),
            FrameError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "frame crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
            FrameError::Payload(e) => write!(f, "frame payload corrupt: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded frame: its kind tag and decompressed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Application-defined kind tag.
    pub kind: u8,
    /// Decompressed payload bytes.
    pub payload: Vec<u8>,
}

/// A decoded *coded* frame: kind, payload codec, and decompressed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedFrame {
    /// Application-defined kind tag.
    pub kind: u8,
    /// Application-defined payload codec tag.
    pub codec: u8,
    /// Decompressed payload bytes.
    pub payload: Vec<u8>,
}

/// A frame header scanned without decoding its payload: where the
/// compressed bytes sit and what CRC they must hash to. Produced by
/// [`peek_frame`]; consumed by [`decode_payload`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Application-defined kind tag.
    pub kind: u8,
    /// Payload codec byte (`None` for codec-less frames).
    pub codec: Option<u8>,
    /// CRC-32 the header records for the compressed payload.
    pub crc: u32,
    /// Byte range of the compressed payload within the scanned buffer.
    pub payload: Range<usize>,
    /// Total encoded frame size (header + payload).
    pub encoded_len: usize,
}

/// Compresses `payload` and appends a complete frame to `out`, returning
/// the byte offset at which the frame starts.
pub fn write_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) -> usize {
    let offset = out.len();
    let compressed = lzss::compress(payload);
    // Header is at most kind + codec + 10-byte varint + CRC; reserving
    // once keeps multi-frame writers from reallocating per frame.
    out.reserve(compressed.len() + 16);
    out.push(kind);
    varint::write_u64(out, compressed.len() as u64);
    out.extend_from_slice(&crc32(&compressed).to_le_bytes());
    out.extend_from_slice(&compressed);
    offset
}

/// Compresses `payload` and appends a complete coded frame (kind + codec
/// byte) to `out`, returning the byte offset at which the frame starts.
pub fn write_coded_frame(out: &mut Vec<u8>, kind: u8, codec: u8, payload: &[u8]) -> usize {
    write_coded_frame_with_dict(out, kind, codec, &[], payload)
}

/// Like [`write_coded_frame`], but compresses the payload against a shared
/// LZSS dictionary ([`lzss::compress_with_dict`]). The frame wire layout is
/// unchanged — which frames use which dictionary is a container-level
/// convention, recovered at read time via [`decode_payload_with_dict`]. An
/// empty dictionary degenerates to [`write_coded_frame`].
pub fn write_coded_frame_with_dict(
    out: &mut Vec<u8>,
    kind: u8,
    codec: u8,
    dict: &[u8],
    payload: &[u8],
) -> usize {
    let offset = out.len();
    let compressed = lzss::compress_with_dict(dict, payload);
    out.reserve(compressed.len() + 16);
    out.push(kind);
    out.push(codec);
    varint::write_u64(out, compressed.len() as u64);
    out.extend_from_slice(&crc32(&compressed).to_le_bytes());
    out.extend_from_slice(&compressed);
    offset
}

/// Scans one frame header starting at `offset` without verifying or
/// decompressing the payload. `has_codec` selects the coded layout (kind +
/// codec byte) over the plain one.
///
/// # Errors
///
/// Returns [`FrameError::Truncated`] when the buffer ends inside the
/// header or before the declared payload end.
pub fn peek_frame(buf: &[u8], offset: usize, has_codec: bool) -> Result<RawFrame, FrameError> {
    let mut pos = offset;
    let kind = *buf.get(pos).ok_or(FrameError::Truncated)?;
    pos += 1;
    let codec = if has_codec {
        let c = *buf.get(pos).ok_or(FrameError::Truncated)?;
        pos += 1;
        Some(c)
    } else {
        None
    };
    let clen = varint::read_u64(buf, &mut pos).ok_or(FrameError::Truncated)? as usize;
    let crc_bytes: [u8; 4] = buf
        .get(pos..pos + 4)
        .ok_or(FrameError::Truncated)?
        .try_into()
        .expect("4-byte slice");
    let crc = u32::from_le_bytes(crc_bytes);
    pos += 4;
    if buf.get(pos..pos + clen).is_none() {
        return Err(FrameError::Truncated);
    }
    let payload = pos..pos + clen;
    Ok(RawFrame {
        kind,
        codec,
        crc,
        payload: payload.clone(),
        encoded_len: payload.end - offset,
    })
}

/// Verifies a scanned frame's CRC against the buffer it was scanned from
/// and decompresses its payload.
///
/// The CRC is checked over the *compressed* bytes before decompression, so
/// any bit flip inside the frame is caught even when the flipped stream
/// still happens to decompress.
///
/// # Errors
///
/// Returns [`FrameError::CrcMismatch`] or a decompression failure.
pub fn decode_payload(buf: &[u8], raw: &RawFrame) -> Result<Vec<u8>, FrameError> {
    decode_payload_with_dict(buf, raw, &[])
}

/// Like [`decode_payload`], but decompresses against the shared LZSS
/// dictionary the frame was written with
/// ([`write_coded_frame_with_dict`]). The CRC covers the compressed bytes
/// and is dictionary-independent, so corruption detection is identical.
///
/// # Errors
///
/// Returns [`FrameError::CrcMismatch`] or a decompression failure.
pub fn decode_payload_with_dict(
    buf: &[u8],
    raw: &RawFrame,
    dict: &[u8],
) -> Result<Vec<u8>, FrameError> {
    let compressed = &buf[raw.payload.clone()];
    let computed = crc32(compressed);
    if computed != raw.crc {
        return Err(FrameError::CrcMismatch {
            stored: raw.crc,
            computed,
        });
    }
    lzss::decompress_with_dict(dict, compressed).map_err(FrameError::Payload)
}

/// Reads the frame starting at `*pos`, advancing `*pos` past it.
///
/// # Errors
///
/// Returns a [`FrameError`] on truncation, CRC mismatch, or a payload that
/// fails to decompress.
pub fn read_frame(buf: &[u8], pos: &mut usize) -> Result<Frame, FrameError> {
    let (frame, consumed) = read_frame_at(buf, *pos)?;
    *pos += consumed;
    Ok(frame)
}

/// Reads the frame starting at `offset` without a cursor, returning the
/// frame and its total encoded size.
///
/// # Errors
///
/// See [`read_frame`].
pub fn read_frame_at(buf: &[u8], offset: usize) -> Result<(Frame, usize), FrameError> {
    let raw = peek_frame(buf, offset, false)?;
    let payload = decode_payload(buf, &raw)?;
    Ok((
        Frame {
            kind: raw.kind,
            payload,
        },
        raw.encoded_len,
    ))
}

/// Reads the coded frame starting at `*pos`, advancing `*pos` past it.
///
/// # Errors
///
/// See [`read_frame`].
pub fn read_coded_frame(buf: &[u8], pos: &mut usize) -> Result<CodedFrame, FrameError> {
    let raw = peek_frame(buf, *pos, true)?;
    let payload = decode_payload(buf, &raw)?;
    *pos += raw.encoded_len;
    Ok(CodedFrame {
        kind: raw.kind,
        codec: raw.codec.expect("coded frame carries a codec byte"),
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        let off0 = write_frame(&mut buf, 1, b"hello hello hello hello");
        let off1 = write_frame(&mut buf, 2, b"");
        assert_eq!(off0, 0);
        assert!(off1 > 0);
        let mut pos = 0;
        let f0 = read_frame(&buf, &mut pos).unwrap();
        assert_eq!(f0.kind, 1);
        assert_eq!(f0.payload, b"hello hello hello hello");
        assert_eq!(pos, off1);
        let f1 = read_frame(&buf, &mut pos).unwrap();
        assert_eq!(f1.kind, 2);
        assert!(f1.payload.is_empty());
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn coded_frame_roundtrip() {
        let mut buf = Vec::new();
        let off0 = write_coded_frame(&mut buf, 1, 0, b"json-ish payload payload");
        let off1 = write_coded_frame(&mut buf, 2, 1, b"binary payload");
        assert_eq!(off0, 0);
        let mut pos = 0;
        let f0 = read_coded_frame(&buf, &mut pos).unwrap();
        assert_eq!((f0.kind, f0.codec), (1, 0));
        assert_eq!(f0.payload, b"json-ish payload payload");
        assert_eq!(pos, off1);
        let f1 = read_coded_frame(&buf, &mut pos).unwrap();
        assert_eq!((f1.kind, f1.codec), (2, 1));
        assert_eq!(f1.payload, b"binary payload");
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn peek_then_decode_equals_read() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, &vec![3u8; 900]);
        let raw = peek_frame(&buf, 0, false).unwrap();
        assert_eq!(raw.kind, 7);
        assert_eq!(raw.codec, None);
        assert_eq!(raw.encoded_len, buf.len());
        assert_eq!(decode_payload(&buf, &raw).unwrap(), vec![3u8; 900]);
    }

    #[test]
    fn random_access_via_offsets() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, &vec![7u8; 500]);
        let off = write_frame(&mut buf, 9, b"target");
        let (f, len) = read_frame_at(&buf, off).unwrap();
        assert_eq!(f.kind, 9);
        assert_eq!(f.payload, b"target");
        assert_eq!(off + len, buf.len());
    }

    #[test]
    fn dict_frame_roundtrip_and_corruption_detected() {
        let dict: Vec<u8> = b"column column column ".repeat(40);
        let payload: Vec<u8> = b"column ".repeat(30);
        let mut buf = Vec::new();
        write_coded_frame_with_dict(&mut buf, 2, 2, &dict, &payload);
        let mut plain = Vec::new();
        write_coded_frame(&mut plain, 2, 2, &payload);
        assert!(buf.len() < plain.len(), "dict compresses similar payloads");
        let raw = peek_frame(&buf, 0, true).unwrap();
        assert_eq!(
            decode_payload_with_dict(&buf, &raw, &dict).unwrap(),
            payload
        );
        for i in 2..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[i] ^= 1 << bit;
                let damaged = match peek_frame(&bad, 0, true) {
                    Err(_) => true,
                    Ok(r) => decode_payload_with_dict(&bad, &r, &dict).is_err(),
                };
                assert!(damaged, "flip at byte {i} bit {bit} went undetected");
            }
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"some payload with enough bytes to matter");
        // Flips in the length/crc/payload must all surface as errors; flips
        // in the kind byte change `kind` but keep the frame valid, so skip
        // byte 0.
        for i in 1..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[i] ^= 1 << bit;
                let mut pos = 0;
                match read_frame(&bad, &mut pos) {
                    Err(_) => {}
                    // A flipped length varint can shrink the payload; the
                    // CRC then fails. A flip that *grows* it truncates. The
                    // only acceptable Ok is a frame identical to the
                    // original (impossible here since bytes differ).
                    Ok(f) => panic!("flip at byte {i} bit {bit} went undetected: {f:?}"),
                }
            }
        }
    }

    #[test]
    fn every_coded_bit_flip_is_detected() {
        let mut buf = Vec::new();
        write_coded_frame(&mut buf, 3, 1, b"some payload with enough bytes to matter");
        // Skip kind (byte 0) and codec (byte 1): flips there change the
        // tags but keep the frame structurally valid.
        for i in 2..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[i] ^= 1 << bit;
                let mut pos = 0;
                match read_coded_frame(&bad, &mut pos) {
                    Err(_) => {}
                    Ok(f) => panic!("flip at byte {i} bit {bit} went undetected: {f:?}"),
                }
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, &vec![42u8; 300]);
        for len in 0..buf.len() {
            let mut pos = 0;
            assert!(
                read_frame(&buf[..len], &mut pos).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
        let mut coded = Vec::new();
        write_coded_frame(&mut coded, 1, 1, &vec![42u8; 300]);
        for len in 0..coded.len() {
            let mut pos = 0;
            assert!(
                read_coded_frame(&coded[..len], &mut pos).is_err(),
                "coded truncation to {len} bytes went undetected"
            );
        }
    }
}
