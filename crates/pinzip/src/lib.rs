//! # pinzip — pinball compression
//!
//! The paper's PinPlay logger compresses pinballs with bzip2 ("logging (with
//! bzip2 pinball compression) time", §7) and reports pinball sizes in MB.
//! This crate is the from-scratch stand-in: an [LZSS] byte compressor plus a
//! [varint] integer coder, so that (a) logging time genuinely includes a
//! compression cost that grows with log volume, and (b) pinball sizes on disk
//! reflect the redundancy of the logged access patterns — the two properties
//! the evaluation's time/space numbers depend on.
//!
//! [LZSS]: lzss::compress
//! [varint]: varint::write_u64

#![warn(missing_docs)]

pub mod lzss;
pub mod varint;

pub use lzss::{compress, decompress, DecodeError};
