//! # pinzip — pinball compression
//!
//! The paper's PinPlay logger compresses pinballs with bzip2 ("logging (with
//! bzip2 pinball compression) time", §7) and reports pinball sizes in MB.
//! This crate is the from-scratch stand-in: an [LZSS] byte compressor plus a
//! [varint] integer coder, so that (a) logging time genuinely includes a
//! compression cost that grows with log volume, and (b) pinball sizes on disk
//! reflect the redundancy of the logged access patterns — the two properties
//! the evaluation's time/space numbers depend on.
//!
//! [LZSS]: lzss::compress
//! [varint]: varint::write_u64
//!
//! The [`frame`] module layers a chunked, checksummed container on top:
//! each frame is independently compressed and carries a [`crc32()`] of
//! its compressed payload, which is what the chunked pinball container uses to
//! detect and localize corruption without losing the intact prefix.
//!
//! The [`binser`] module is the compact binary record codec (container
//! format v3, the drserve wire protocol, and slice files): the same
//! `Serialize`/`Deserialize` types, varint-coded and length-prefixed with
//! an interned string table instead of JSON text.

#![warn(missing_docs)]

pub mod binser;
pub mod column;
pub mod crc32;
pub mod frame;
pub mod lzss;
pub mod varint;

pub use column::ColumnError;
pub use crc32::{crc32, crc32_bytewise};
pub use frame::{
    decode_payload, decode_payload_with_dict, peek_frame, read_coded_frame, read_frame,
    read_frame_at, write_coded_frame, write_coded_frame_with_dict, write_frame, CodedFrame, Frame,
    FrameError, RawFrame,
};
pub use lzss::{
    compress, compress_with_dict, decompress, decompress_with_dict, DecodeError, DICT_MAX,
};
