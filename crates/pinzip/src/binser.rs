//! Compact binary serialization for every `Serialize`/`Deserialize` type.
//!
//! JSON is a fine interchange format but a poor hot-path one: integers
//! become decimal text, field names repeat at every occurrence, and both
//! directions walk the bytes one character at a time. `binser` encodes the
//! same [`serde::Value`] tree the JSON codec uses — so *any* type the
//! workspace serializes works unchanged — but as varint-coded,
//! length-prefixed binary with an interned string table:
//!
//! ```text
//! +------------------+--------------------------------+------------+
//! | varint n_strings | n × (varint len || utf-8 bytes) | value tree |
//! +------------------+--------------------------------+------------+
//! ```
//!
//! Every distinct string — field names above all — is stored once in the
//! table (first-appearance order, so encoding is byte-deterministic) and
//! referenced by varint index from the tree. Tree nodes are one tag byte
//! followed by their content:
//!
//! | tag | node  | content                                   |
//! |-----|-------|-------------------------------------------|
//! | 0   | null  | —                                         |
//! | 1   | false | —                                         |
//! | 2   | true  | —                                         |
//! | 3   | int   | zigzag varint (full `i128` range)         |
//! | 4   | str   | varint string-table index                 |
//! | 5   | seq   | varint count, then `count` nodes          |
//! | 6   | map   | varint count, then `count` × (key index, node) |
//!
//! The decoder treats its input as hostile: every count is bounded by the
//! bytes actually remaining before anything is allocated, string indices
//! are range-checked, nesting depth is capped, and trailing bytes are an
//! error — malformed input yields a typed [`Error`], never a panic.
//!
//! ```
//! let bytes = pinzip::binser::to_vec(&vec![(1u64, "tid".to_string()); 3]);
//! let back: Vec<(u64, String)> = pinzip::binser::from_slice(&bytes).unwrap();
//! assert_eq!(back.len(), 3);
//! ```

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize, Value};

use crate::varint;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_SEQ: u8 = 5;
const TAG_MAP: u8 = 6;

/// Maximum tree nesting the decoder accepts. The workspace's types nest a
/// handful of levels; the cap only exists so crafted input cannot recurse
/// the decoder off the stack.
const MAX_DEPTH: usize = 96;

/// Why a buffer could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A node carried an unknown tag byte.
    BadTag(u8),
    /// A string reference pointed past the string table.
    BadStringIndex(u64),
    /// A string table entry was not valid UTF-8.
    BadUtf8,
    /// A declared count exceeded what the remaining bytes could hold.
    BadCount,
    /// The tree nested deeper than the decoder depth limit.
    TooDeep,
    /// Bytes remained after the value tree ended.
    TrailingBytes,
    /// The tree decoded but did not match the requested type's shape.
    Shape(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => f.write_str("binser input truncated"),
            Error::BadTag(t) => write!(f, "binser unknown tag {t:#04x}"),
            Error::BadStringIndex(i) => write!(f, "binser string index {i} out of range"),
            Error::BadUtf8 => f.write_str("binser string table entry is not utf-8"),
            Error::BadCount => f.write_str("binser count exceeds remaining input"),
            Error::TooDeep => f.write_str("binser value nests too deeply"),
            Error::TrailingBytes => f.write_str("binser trailing bytes after value"),
            Error::Shape(e) => write!(f, "binser shape mismatch: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Serializes any [`Serialize`] type to compact binary bytes.
///
/// Encoding cannot fail: every `Value` shape has an encoding.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    value_to_vec(&value.to_value())
}

/// Deserializes any [`Deserialize`] type from [`to_vec`] bytes.
///
/// # Errors
///
/// Returns a typed [`Error`] on malformed input or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let v = value_from_slice(bytes)?;
    T::from_value(&v).map_err(|e| Error::Shape(e.0))
}

/// Encodes a [`Value`] tree directly.
pub fn value_to_vec(value: &Value) -> Vec<u8> {
    let mut enc = Encoder {
        table: Vec::new(),
        index: HashMap::new(),
        tree: Vec::new(),
    };
    enc.encode(value);
    // Assemble: string table first (the decoder needs it before the tree),
    // then the already-encoded tree.
    let strings_len: usize = enc.table.iter().map(|s| s.len() + 10).sum();
    let mut out = Vec::with_capacity(strings_len + enc.tree.len() + 10);
    varint::write_u64(&mut out, enc.table.len() as u64);
    for s in &enc.table {
        varint::write_u64(&mut out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
    out.extend_from_slice(&enc.tree);
    out
}

/// Decodes a [`Value`] tree from [`value_to_vec`] bytes.
///
/// # Errors
///
/// Returns a typed [`Error`] on malformed input.
pub fn value_from_slice(bytes: &[u8]) -> Result<Value, Error> {
    let mut pos = 0usize;
    let n = varint::read_u64(bytes, &mut pos).ok_or(Error::Truncated)? as usize;
    // Each table entry needs at least its one-byte length varint, so a
    // count beyond the remaining bytes is structurally impossible.
    if n > bytes.len() - pos {
        return Err(Error::BadCount);
    }
    let mut table: Vec<String> = Vec::with_capacity(n);
    for _ in 0..n {
        let len = varint::read_u64(bytes, &mut pos).ok_or(Error::Truncated)? as usize;
        let slice = bytes.get(pos..pos + len).ok_or(Error::Truncated)?;
        pos += len;
        table.push(String::from_utf8(slice.to_vec()).map_err(|_| Error::BadUtf8)?);
    }
    let v = decode_value(bytes, &mut pos, &table, 0)?;
    if pos != bytes.len() {
        return Err(Error::TrailingBytes);
    }
    Ok(v)
}

struct Encoder<'v> {
    table: Vec<&'v str>,
    index: HashMap<&'v str, u64>,
    tree: Vec<u8>,
}

impl<'v> Encoder<'v> {
    fn intern(&mut self, s: &'v str) -> u64 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.table.len() as u64;
        self.table.push(s);
        self.index.insert(s, i);
        i
    }

    fn encode(&mut self, value: &'v Value) {
        match value {
            Value::Null => self.tree.push(TAG_NULL),
            Value::Bool(false) => self.tree.push(TAG_FALSE),
            Value::Bool(true) => self.tree.push(TAG_TRUE),
            Value::Int(n) => {
                self.tree.push(TAG_INT);
                varint::write_i128(&mut self.tree, *n);
            }
            Value::Str(s) => {
                let i = self.intern(s);
                self.tree.push(TAG_STR);
                varint::write_u64(&mut self.tree, i);
            }
            Value::Seq(items) => {
                self.tree.push(TAG_SEQ);
                varint::write_u64(&mut self.tree, items.len() as u64);
                for item in items {
                    self.encode(item);
                }
            }
            Value::Map(entries) => {
                self.tree.push(TAG_MAP);
                varint::write_u64(&mut self.tree, entries.len() as u64);
                for (key, item) in entries {
                    let i = self.intern(key);
                    varint::write_u64(&mut self.tree, i);
                    self.encode(item);
                }
            }
        }
    }
}

fn decode_value(
    bytes: &[u8],
    pos: &mut usize,
    table: &[String],
    depth: usize,
) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error::TooDeep);
    }
    let tag = *bytes.get(*pos).ok_or(Error::Truncated)?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(
            varint::read_i128(bytes, pos).ok_or(Error::Truncated)?,
        )),
        TAG_STR => {
            let i = varint::read_u64(bytes, pos).ok_or(Error::Truncated)?;
            let s = table
                .get(i as usize)
                .ok_or(Error::BadStringIndex(i))?
                .clone();
            Ok(Value::Str(s))
        }
        TAG_SEQ => {
            let n = varint::read_u64(bytes, pos).ok_or(Error::Truncated)? as usize;
            // Every element costs at least one tag byte, so a count larger
            // than the remaining input is corrupt — reject it before the
            // allocation it would otherwise size.
            if n > bytes.len() - *pos {
                return Err(Error::BadCount);
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(bytes, pos, table, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let n = varint::read_u64(bytes, pos).ok_or(Error::Truncated)? as usize;
            if n > bytes.len() - *pos {
                return Err(Error::BadCount);
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let i = varint::read_u64(bytes, pos).ok_or(Error::Truncated)?;
                let key = table
                    .get(i as usize)
                    .ok_or(Error::BadStringIndex(i))?
                    .clone();
                entries.push((key, decode_value(bytes, pos, table, depth + 1)?));
            }
            Ok(Value::Map(entries))
        }
        other => Err(Error::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let bytes = value_to_vec(&v);
        assert_eq!(value_from_slice(&bytes).unwrap(), v);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Bool(false));
        for n in [0i128, 1, -1, i64::MAX as i128, i64::MIN as i128, 1 << 100] {
            roundtrip_value(Value::Int(n));
        }
        roundtrip_value(Value::Str(String::new()));
        roundtrip_value(Value::Str("hello".into()));
    }

    #[test]
    fn typed_roundtrips() {
        let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into()), (3, "a".into())];
        assert_eq!(from_slice::<Vec<(u64, String)>>(&to_vec(&v)).unwrap(), v);
        let opt: Option<i64> = None;
        assert_eq!(from_slice::<Option<i64>>(&to_vec(&opt)).unwrap(), opt);
        let nested: Vec<Vec<i64>> = vec![vec![], vec![1, -2, 3]];
        assert_eq!(
            from_slice::<Vec<Vec<i64>>>(&to_vec(&nested)).unwrap(),
            nested
        );
    }

    #[test]
    fn repeated_strings_are_interned_once() {
        let many: Vec<String> = vec!["needle".to_string(); 100];
        let once: Vec<String> = vec!["needle".to_string()];
        let d = to_vec(&many).len() - to_vec(&once).len();
        // 99 extra occurrences cost only a tag + index each, not 99 copies
        // of the string bytes.
        assert!(d < 100 * 3, "interning failed: {d} extra bytes");
    }

    #[test]
    fn smaller_than_json_on_structured_data() {
        let v: Vec<(String, u64, i64)> = (0..200)
            .map(|i| (format!("field{}", i % 4), i, -(i as i64) * 1000))
            .collect();
        let bin = to_vec(&v).len();
        let json = serde_json::to_vec(&v).unwrap().len();
        assert!(bin * 2 < json, "binser {bin} vs json {json}");
    }

    #[test]
    fn encoding_is_deterministic() {
        let v: Vec<(String, u64)> = vec![("b".into(), 1), ("a".into(), 2), ("b".into(), 3)];
        assert_eq!(to_vec(&v), to_vec(&v));
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let v: Vec<(String, i64)> = vec![("alpha".into(), -7), ("beta".into(), 1 << 40)];
        let bytes = to_vec(&v);
        for len in 0..bytes.len() {
            assert!(
                from_slice::<Vec<(String, i64)>>(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A seq claiming u64::MAX elements in a 12-byte buffer.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 0); // empty string table
        bytes.push(TAG_SEQ);
        varint::write_u64(&mut bytes, u64::MAX);
        assert_eq!(value_from_slice(&bytes), Err(Error::BadCount));
        // Same for the string table count.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, u64::MAX);
        assert_eq!(value_from_slice(&bytes), Err(Error::BadCount));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 0);
        for _ in 0..10_000 {
            bytes.push(TAG_SEQ);
            bytes.push(1); // one element, which is the next seq
        }
        bytes.push(TAG_NULL);
        assert_eq!(value_from_slice(&bytes), Err(Error::TooDeep));
    }

    #[test]
    fn bad_string_index_is_typed() {
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 1);
        varint::write_u64(&mut bytes, 2);
        bytes.extend_from_slice(b"hi");
        bytes.push(TAG_STR);
        varint::write_u64(&mut bytes, 5);
        assert_eq!(value_from_slice(&bytes), Err(Error::BadStringIndex(5)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_vec(&7u64);
        bytes.push(0);
        assert_eq!(from_slice::<u64>(&bytes), Err(Error::TrailingBytes));
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let bytes = to_vec(&"text");
        assert!(matches!(from_slice::<u64>(&bytes), Err(Error::Shape(_))));
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::{from_slice, to_vec, value_from_slice};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn roundtrip_vec_of_tuples(
            raw in proptest::collection::vec((any::<i64>(), any::<u64>(), any::<bool>()), 0..64)
        ) {
            // Derive strings from the u64 so the tuples exercise the
            // string table with a mix of repeats and fresh entries.
            let data: Vec<(i64, String, bool)> = raw
                .into_iter()
                .map(|(n, s, b)| (n, format!("s{}", s % 7), b))
                .collect();
            let bytes = to_vec(&data);
            prop_assert_eq!(from_slice::<Vec<(i64, String, bool)>>(&bytes).unwrap(), data);
        }

        #[test]
        fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = value_from_slice(&data); // may Err, must not panic
        }
    }
}
