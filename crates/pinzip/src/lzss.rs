//! LZSS compression with a hash-chain match finder.
//!
//! Format: the stream is a sequence of groups. Each group starts with a
//! control byte whose bits (LSB first) say whether the corresponding token is
//! a literal (`0`, one raw byte) or a match (`1`, two bytes:
//! `offset_hi:4 | len-MIN_MATCH:4` then `offset_lo:8`). Offsets are 1-based
//! distances back into the already-decoded output, at most `WINDOW` (4096).
//! The compressed stream is prefixed with the varint-coded original length.
//!
//! [`compress_with_dict`] / [`decompress_with_dict`] additionally seed the
//! sliding window with a shared **dictionary**: matches may reach back into
//! the dictionary bytes as if they had just been emitted, so short buffers
//! that resemble the dictionary compress as well as if they were appended
//! to one long stream. Both sides must present the same dictionary; only
//! its last [`DICT_MAX`] bytes participate (the window cannot reach
//! further back anyway).

use std::fmt;

use crate::varint;

/// Sliding-window size (12-bit offsets).
const WINDOW: usize = 1 << 12;
/// Longest usable dictionary: the window depth. Longer dictionaries are
/// trimmed to their last `DICT_MAX` bytes.
pub const DICT_MAX: usize = WINDOW;
/// Shortest match worth encoding (a match token costs 2 bytes + control bit).
const MIN_MATCH: usize = 3;
/// Longest encodable match (4-bit length field).
const MAX_MATCH: usize = MIN_MATCH + 15;
/// Hash-chain probe budget; bounds worst-case compression time.
const MAX_PROBES: usize = 32;

/// Compresses `input`, returning a self-describing buffer for
/// [`decompress`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    compress_seeded(input, 0)
}

/// Compresses `input` with the window pre-seeded by `dict` (the shared
/// dictionary): match offsets may reach back into the dictionary bytes.
/// Only the last [`DICT_MAX`] bytes of `dict` participate. The output
/// decodes only with [`decompress_with_dict`] under the same dictionary;
/// an empty dictionary degenerates to plain [`compress`].
pub fn compress_with_dict(dict: &[u8], input: &[u8]) -> Vec<u8> {
    let dict = &dict[dict.len().saturating_sub(DICT_MAX)..];
    if dict.is_empty() {
        return compress(input);
    }
    let mut ctx = Vec::with_capacity(dict.len() + input.len());
    ctx.extend_from_slice(dict);
    ctx.extend_from_slice(input);
    compress_seeded(&ctx, dict.len())
}

/// The shared encoder: compresses `input[start..]` with `input[..start]`
/// as an already-seen prefix (hash chains are seeded over it, and match
/// offsets may point into it). `start = 0` is plain compression.
fn compress_seeded(input: &[u8], start: usize) -> Vec<u8> {
    let body_len = input.len() - start;
    // Worst case (incompressible input) is all literals: one control byte
    // per 8 tokens plus the varint length header. Reserving that up front
    // means the output vector never reallocates, whatever the input.
    let mut out = Vec::with_capacity(body_len + body_len / 8 + 11);
    varint::write_u64(&mut out, body_len as u64);

    // head[h] = most recent position with hash h; prev[i % WINDOW] = previous
    // position with the same hash as position i.
    let mut head = vec![usize::MAX; 1 << 15];
    let mut prev = vec![usize::MAX; WINDOW];

    let hash = |data: &[u8], i: usize| -> usize {
        let a = data[i] as usize;
        let b = data[i + 1] as usize;
        let c = data[i + 2] as usize;
        (a.wrapping_mul(506_832_829) ^ b.wrapping_mul(2_654_435_761) ^ c) & 0x7fff
    };

    let mut i = 0;
    let mut group_ctrl_pos = 0usize;
    let mut group_bits = 0u8;
    let mut group_len = 0u8;

    // Seed the chains over the dictionary prefix without emitting tokens,
    // so the first body bytes can match straight into it.
    while i < start {
        if i + MIN_MATCH <= input.len() {
            let h = hash(input, i);
            prev[i % WINDOW] = head[h];
            head[h] = i;
        }
        i += 1;
    }

    macro_rules! begin_group_if_needed {
        () => {
            if group_len == 0 {
                group_ctrl_pos = out.len();
                out.push(0);
                group_bits = 0;
            }
        };
    }
    macro_rules! end_token {
        ($is_match:expr) => {
            if $is_match {
                group_bits |= 1 << group_len;
            }
            group_len += 1;
            if group_len == 8 {
                out[group_ctrl_pos] = group_bits;
                group_len = 0;
            }
        };
    }

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash(input, i);
            let mut cand = head[h];
            let mut probes = 0;
            while cand != usize::MAX && i - cand <= WINDOW && probes < MAX_PROBES {
                let limit = (input.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                let nxt = prev[cand % WINDOW];
                if nxt == usize::MAX || nxt >= cand {
                    break;
                }
                cand = nxt;
                probes += 1;
            }
        }

        begin_group_if_needed!();
        if best_len >= MIN_MATCH {
            debug_assert!((1..=WINDOW).contains(&best_off));
            let len_code = (best_len - MIN_MATCH) as u8;
            let off = (best_off - 1) as u16;
            out.push(((off >> 8) as u8) << 4 | len_code);
            out.push((off & 0xff) as u8);
            end_token!(true);
            // Insert all covered positions into the chains.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= input.len() {
                    let h = hash(input, i);
                    prev[i % WINDOW] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            out.push(input[i]);
            end_token!(false);
            if i + MIN_MATCH <= input.len() {
                let h = hash(input, i);
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    if group_len > 0 {
        out[group_ctrl_pos] = group_bits;
    }
    out
}

/// Errors from [`decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the declared length was produced.
    Truncated,
    /// A match referenced data before the start of the output.
    BadOffset,
    /// The output length header could not be read.
    BadHeader,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DecodeError::Truncated => "compressed stream is truncated",
            DecodeError::BadOffset => "match offset points before output start",
            DecodeError::BadHeader => "bad length header",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DecodeError {}

/// Decompresses a buffer produced by [`compress`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecodeError> {
    decompress_seeded(input, &[])
}

/// Decompresses a buffer produced by [`compress_with_dict`] under the
/// same dictionary. Only the last [`DICT_MAX`] bytes of `dict`
/// participate, mirroring the encoder.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn decompress_with_dict(dict: &[u8], input: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let dict = &dict[dict.len().saturating_sub(DICT_MAX)..];
    decompress_seeded(input, dict)
}

/// The shared decoder: output is seeded with `dict` (match offsets may
/// reach into it), which is stripped from the returned buffer.
fn decompress_seeded(input: &[u8], dict: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let mut pos = 0usize;
    let body = varint::read_u64(input, &mut pos).ok_or(DecodeError::BadHeader)? as usize;
    // The declared length is untrusted input: a corrupt header must not
    // trigger a huge up-front allocation. A compressed token produces at
    // most MAX_MATCH bytes, so any stream shorter than body/MAX_MATCH
    // tokens is truncated anyway; reject such headers before allocating.
    if body > input.len().saturating_mul(MAX_MATCH) {
        return Err(DecodeError::Truncated);
    }
    let total = dict.len() + body;
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(dict);
    while out.len() < total {
        let ctrl = *input.get(pos).ok_or(DecodeError::Truncated)?;
        pos += 1;
        if ctrl == 0 {
            // All eight tokens are literals: copy them in one slice move
            // (each remaining token produces exactly one byte).
            let n = 8.min(total - out.len());
            let lit = input.get(pos..pos + n).ok_or(DecodeError::Truncated)?;
            out.extend_from_slice(lit);
            pos += n;
            continue;
        }
        for bit in 0..8 {
            if out.len() >= total {
                break;
            }
            if ctrl & (1 << bit) != 0 {
                let b0 = *input.get(pos).ok_or(DecodeError::Truncated)?;
                let b1 = *input.get(pos + 1).ok_or(DecodeError::Truncated)?;
                pos += 2;
                let len = (b0 & 0x0f) as usize + MIN_MATCH;
                let off = ((b0 >> 4) as usize) << 8 | b1 as usize;
                let dist = off + 1;
                if dist > out.len() {
                    return Err(DecodeError::BadOffset);
                }
                let start = out.len() - dist;
                if dist >= len {
                    // Non-overlapping: one bulk copy out of the window.
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping (RLE-style) matches must copy bytewise —
                    // each byte may read one this match just produced.
                    for k in 0..len {
                        let byte = out[start + k];
                        out.push(byte);
                    }
                }
            } else {
                let b = *input.get(pos).ok_or(DecodeError::Truncated)?;
                pos += 1;
                out.push(b);
            }
        }
    }
    if dict.is_empty() {
        Ok(out)
    } else {
        Ok(out.split_off(dict.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<u8> = b"abcabcabcabc"
            .iter()
            .cycle()
            .take(10_000)
            .copied()
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // A simple xorshift stream — no LZ redundancy.
        let mut x = 0x9e3779b97f4a7c15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_runs_use_max_match() {
        let data = vec![7u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 12_000);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_match_semantics() {
        // "aaaa..." forces matches that overlap their own output.
        let data = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
        roundtrip(data);
    }

    #[test]
    fn window_boundary() {
        // Repetition spaced exactly at the window size.
        let mut data = vec![0u8; WINDOW];
        data.extend_from_slice(b"hello world hello world");
        data.extend(vec![0u8; WINDOW]);
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let data: Vec<u8> = b"abcabcabc".iter().cycle().take(300).copied().collect();
        let mut c = compress(&data);
        c.truncate(c.len() - 1);
        assert!(matches!(
            decompress(&c),
            Err(DecodeError::Truncated) | Err(DecodeError::BadOffset)
        ));
    }

    #[test]
    fn empty_input_is_bad_header() {
        assert_eq!(decompress(&[]), Err(DecodeError::BadHeader));
    }

    #[test]
    fn dict_roundtrip_and_shrinks_similar_data() {
        let dict: Vec<u8> = b"kind tid addr value kind tid addr value "
            .iter()
            .cycle()
            .take(2048)
            .copied()
            .collect();
        let data: Vec<u8> = b"kind tid addr value "
            .iter()
            .cycle()
            .take(400)
            .copied()
            .collect();
        let with = compress_with_dict(&dict, &data);
        let without = compress(&data);
        assert_eq!(decompress_with_dict(&dict, &with).unwrap(), data);
        assert!(
            with.len() < without.len(),
            "dict should help similar data: {} vs {}",
            with.len(),
            without.len()
        );
    }

    #[test]
    fn empty_dict_is_plain_compression() {
        let data = b"plain old data plain old data";
        assert_eq!(compress_with_dict(&[], data), compress(data));
        let c = compress(data);
        assert_eq!(decompress_with_dict(&[], &c).unwrap(), data.to_vec());
    }

    #[test]
    fn oversized_dict_trims_to_window() {
        let mut dict = vec![0u8; DICT_MAX + 500];
        dict[DICT_MAX + 100..].fill(7);
        let data = vec![7u8; 300];
        let c = compress_with_dict(&dict, &data);
        assert_eq!(decompress_with_dict(&dict, &c).unwrap(), data);
        // Only the tail participates: the same tail alone decodes it too.
        let tail = &dict[dict.len() - DICT_MAX..];
        assert_eq!(decompress_with_dict(tail, &c).unwrap(), data);
    }

    #[test]
    fn wrong_dict_does_not_silently_succeed() {
        let dict: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        // Data equal to a dict slice compresses to matches *into* the dict.
        let data: Vec<u8> = dict[100..400].to_vec();
        let c = compress_with_dict(&dict, &data);
        assert!(c.len() < data.len() / 2, "encoder matched into the dict");
        let wrong = vec![0u8; 1024];
        // Decoding under a different dictionary either errors or yields
        // different bytes — never the original data by accident.
        if let Ok(got) = decompress_with_dict(&wrong, &c) {
            assert_ne!(got, data);
        }
    }

    #[test]
    fn dict_decompress_never_panics_on_truncation() {
        let dict = vec![42u8; 512];
        let data: Vec<u8> = b"abcabcabc".iter().cycle().take(300).copied().collect();
        let c = compress_with_dict(&dict, &data);
        for len in 0..c.len() {
            let _ = decompress_with_dict(&dict, &c[..len]); // may Err, must not panic
        }
    }

    #[test]
    fn corrupt_offset_detected() {
        // Hand-built stream: declared length 3, one match token with a
        // 1-based distance into nothing.
        let mut buf = Vec::new();
        crate::varint::write_u64(&mut buf, 3);
        buf.push(0b0000_0001); // first token is a match
        buf.push(0x00); // len = MIN_MATCH, off hi = 0
        buf.push(0x05); // off lo = 5 -> dist 6 > out.len() 0
        assert_eq!(decompress(&buf), Err(DecodeError::BadOffset));
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::{compress, compress_with_dict, decompress, decompress_with_dict};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn dict_roundtrip_arbitrary(
            dict in proptest::collection::vec(any::<u8>(), 0..2048),
            data in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let c = compress_with_dict(&dict, &data);
            prop_assert_eq!(decompress_with_dict(&dict, &c).expect("valid stream"), data);
        }

        #[test]
        fn dict_decompress_never_panics_on_garbage(
            dict in proptest::collection::vec(any::<u8>(), 0..512),
            data in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let _ = decompress_with_dict(&dict, &data); // may Err, must not panic
        }

        #[test]
        fn roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).expect("valid stream"), data);
        }

        #[test]
        fn roundtrip_repetitive_bytes(
            unit in proptest::collection::vec(any::<u8>(), 1..16),
            reps in 1usize..512,
        ) {
            let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).expect("valid stream"), data);
        }

        #[test]
        fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decompress(&data); // may Err, must not panic
        }
    }
}
