//! LEB128-style variable-length integer coding.
//!
//! Pinball logs are streams of small integers (thread ids, run lengths,
//! deltas between addresses); varint coding before LZSS keeps them compact.

/// Appends `v` to `out` in LEB128 (7 bits per byte, high bit = continue).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a signed value using zigzag encoding.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Reads a LEB128 value from `buf` starting at `*pos`, advancing `*pos`.
///
/// Returns `None` on truncated input or a value overflowing 64 bits.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    // Fast path: values below 128 (the overwhelming majority in event
    // columns — thread ids, small run lengths, deltas) are one byte.
    let byte = *buf.get(*pos)?;
    if byte & 0x80 == 0 {
        *pos += 1;
        return Some(u64::from(byte));
    }
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Reads a zigzag-encoded signed value.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    read_u64(buf, pos).map(unzigzag)
}

/// Appends `v` to `out` in LEB128 (up to 19 bytes for a full `u128`).
pub fn write_u128(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a signed 128-bit value using zigzag encoding.
pub fn write_i128(out: &mut Vec<u8>, v: i128) {
    write_u128(out, zigzag128(v));
}

/// Reads a LEB128 `u128` from `buf` starting at `*pos`, advancing `*pos`.
///
/// Returns `None` on truncated input or a value overflowing 128 bits.
pub fn read_u128(buf: &[u8], pos: &mut usize) -> Option<u128> {
    let mut v: u128 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 128 {
            return None;
        }
        v |= u128::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Reads a zigzag-encoded signed 128-bit value.
pub fn read_i128(buf: &[u8], pos: &mut usize) -> Option<i128> {
    read_u128(buf, pos).map(unzigzag128)
}

/// Maps signed 128-bit to unsigned so small-magnitude values stay small.
pub fn zigzag128(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

/// Inverse of [`zigzag128`].
pub fn unzigzag128(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

/// Maps signed to unsigned so small-magnitude values stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_corners() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i64_roundtrip_corners() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn zigzag_keeps_small_values_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(-123456)), -123456);
    }

    #[test]
    fn u128_roundtrip_corners() {
        for v in [0u128, 1, 127, 128, u64::MAX as u128, u128::MAX] {
            let mut buf = Vec::new();
            write_u128(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u128(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i128_roundtrip_corners() {
        for v in [0i128, 1, -1, i64::MIN as i128, i128::MAX, i128::MIN] {
            let mut buf = Vec::new();
            write_i128(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i128(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn truncated_u128_returns_none() {
        let mut buf = Vec::new();
        write_u128(&mut buf, u128::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_u128(&buf, &mut pos), None);
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn sequential_reads_advance_position() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 5);
        write_u64(&mut buf, 1000);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Some(5));
        assert_eq!(read_u64(&buf, &mut pos), Some(1000));
        assert_eq!(read_u64(&buf, &mut pos), None);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #[test]
        fn u64_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_u64(&buf, &mut pos), Some(v));
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn i64_roundtrip(v in any::<i64>()) {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_i64(&buf, &mut pos), Some(v));
        }

        #[test]
        fn zigzag_is_bijective(v in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
