//! Synthetic SPEC OMP-like workloads (paper Fig. 13).
//!
//! The paper evaluates save/restore spurious-dependence pruning on five
//! SPEC OMP 2001 programs (ammp, apsi, galgel, mgrid, wupwise), reporting
//! 9.49% (6.31%) average slice-size reduction for 1M (10M) instruction
//! regions with `MaxSave = 10`.
//!
//! What that experiment needs from the workload is *structure*, not
//! physics: hot loops that call procedures which (a) save and restore
//! callee-saved registers on the stack, (b) are guarded by data-dependent
//! branches, and (c) carry live values *across* the calls in saved
//! registers — the exact §5.2 pattern where the unpruned slice of a value
//! flowing through a saved register drags in each call's guard and its
//! whole input chain. Each generator below varies the call depth, the
//! number of saved registers, and the guard density, so the five programs
//! prune differently (as the paper's five do).
//!
//! The programs run two threads (main + one worker) over disjoint
//! accumulators, standing in for the OpenMP parallel loops.

use std::sync::Arc;

use minivm::{assemble, Program};

/// A named SPEC OMP-analog generator.
#[derive(Clone, Copy)]
pub struct SpecOmpProgram {
    /// Benchmark name (paper's naming).
    pub name: &'static str,
    /// Builds the program with the given per-thread iteration count.
    pub build: fn(u64) -> Arc<Program>,
}

impl std::fmt::Debug for SpecOmpProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecOmpProgram")
            .field("name", &self.name)
            .finish()
    }
}

/// The five programs of paper Fig. 13.
pub fn all_specomp() -> Vec<SpecOmpProgram> {
    vec![
        SpecOmpProgram {
            name: "ammp",
            build: ammp,
        },
        SpecOmpProgram {
            name: "apsi",
            build: apsi,
        },
        SpecOmpProgram {
            name: "galgel",
            build: galgel,
        },
        SpecOmpProgram {
            name: "mgrid",
            build: mgrid,
        },
        SpecOmpProgram {
            name: "wupwise",
            build: wupwise,
        },
    ]
}

fn build(src: String) -> Arc<Program> {
    Arc::new(assemble(&src).expect("specomp workload assembles"))
}

/// Shared two-thread skeleton: both threads run `kernel` over `iters`
/// iterations; the per-program kernel and helpers are spliced in.
fn skeleton(iters: u64, kernel_and_helpers: &str) -> String {
    format!(
        r"
        .data
        acc0: .word 0
        acc1: .word 0
        .text
        .func main
            movi r1, {iters}
            spawn r10, worker, r1
            mov r0, r1
            la r9, acc0
            call kernel
            join r10
            halt
        .endfunc
        .func worker
            la r9, acc1
            call kernel
            halt
        .endfunc
        {kernel_and_helpers}
        "
    )
}

/// ammp: molecular dynamics — force evaluation with one guarded helper
/// saving two registers; moderate pruning opportunity.
pub fn ammp(iters: u64) -> Arc<Program> {
    build(skeleton(
        iters,
        r"
        .func kernel
            ; r0 = iters, r9 = accumulator address
        loop:
            rand r2
            andi r2, r2, 15      ; cutoff distance
            movi r1, 21          ; e: lives across the call in r1
            bgti r2, 7, apply    ; guard: inside cutoff?
            jmp tail
        apply:
            call force
        tail:
            addi r3, r1, 4       ; w = e + 4 (uses the saved register)
            load r4, r9, 0
            add r4, r4, r3
            store r4, r9, 0
            subi r0, r0, 1
            bgti r0, 0, loop
            ret
        .endfunc
        .func force
            push r1
            push r2
            muli r1, r2, 3       ; clobber the saved registers
            addi r2, r1, 9
            mul r2, r2, r2
            pop r2
            pop r1
            ret
        .endfunc
        ",
    ))
}

/// apsi: meteorology — two-deep guarded call chain, three saved registers;
/// the deepest chains, so pruning removes the most.
pub fn apsi(iters: u64) -> Arc<Program> {
    build(skeleton(
        iters,
        r"
        .func kernel
        loop:
            rand r2
            andi r2, r2, 31      ; air-column selector
            movi r1, 5           ; theta: live across the calls
            movi r3, 11          ; q: also live across
            blti r2, 24, advect  ; most columns take the guarded path
            jmp tail
        advect:
            call column
        tail:
            add r4, r1, r3       ; uses both saved registers
            muli r4, r4, 3
            load r5, r9, 0
            add r5, r5, r4
            store r5, r9, 0
            subi r0, r0, 1
            bgti r0, 0, loop
            ret
        .endfunc
        .func column
            push r1
            push r3
            push r4
            movi r1, 2           ; clobber
            muli r3, r1, 7
            call diffuse
            pop r4
            pop r3
            pop r1
            ret
        .endfunc
        .func diffuse
            push r1
            addi r1, r1, 1
            mul r1, r1, r1
            pop r1
            ret
        .endfunc
        ",
    ))
}

/// galgel: fluid dynamics with Galerkin bases — unguarded helper calls
/// (no spurious control context), so pruning removes little.
pub fn galgel(iters: u64) -> Arc<Program> {
    build(skeleton(
        iters,
        r"
        .func kernel
        loop:
            movi r1, 13          ; basis coefficient, live across the call
            call project         ; unconditional: no guard to prune
            addi r2, r1, 1
            muli r2, r2, 5
            load r3, r9, 0
            add r3, r3, r2
            store r3, r9, 0
            subi r0, r0, 1
            bgti r0, 0, loop
            ret
        .endfunc
        .func project
            push r1
            movi r1, 3
            mul r1, r1, r1
            addi r1, r1, 2
            pop r1
            ret
        .endfunc
        ",
    ))
}

/// mgrid: multigrid solver — guard depends on a computed residual chain,
/// so pruned slices drop a long input chain.
pub fn mgrid(iters: u64) -> Arc<Program> {
    build(skeleton(
        iters,
        r"
        .func kernel
        loop:
            ; residual computation feeding the guard
            rand r2
            andi r2, r2, 63
            muli r3, r2, 3
            addi r3, r3, 1
            shri r3, r3, 2
            movi r1, 8           ; correction term, live across the call
            blti r3, 40, smooth
            jmp tail
        smooth:
            call relaxation
        tail:
            addi r4, r1, 2
            load r5, r9, 0
            add r5, r5, r4
            store r5, r9, 0
            subi r0, r0, 1
            bgti r0, 0, loop
            ret
        .endfunc
        .func relaxation
            push r1
            push r3
            muli r1, r3, 5
            addi r3, r1, 1
            pop r3
            pop r1
            ret
        .endfunc
        ",
    ))
}

/// wupwise: lattice QCD — alternating guarded/unguarded calls with two
/// live-across values.
pub fn wupwise(iters: u64) -> Arc<Program> {
    build(skeleton(
        iters,
        r"
        .func kernel
        loop:
            rand r2
            andi r2, r2, 1       ; even/odd lattice site
            movi r1, 6           ; spinor component, live across
            call gamma           ; unconditional helper
            beqi r2, 0, even_site
            call dslash          ; guarded helper
        even_site:
            addi r3, r1, 3
            load r4, r9, 0
            add r4, r4, r3
            store r4, r9, 0
            subi r0, r0, 1
            bgti r0, 0, loop
            ret
        .endfunc
        .func gamma
            push r1
            muli r1, r1, 2
            pop r1
            ret
        .endfunc
        .func dslash
            push r1
            push r4
            addi r1, r1, 7
            muli r4, r1, 3
            pop r4
            pop r1
            ret
        .endfunc
        ",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{run, ExitStatus, LiveEnv, NullTool, RoundRobin};

    #[test]
    fn all_five_programs_run_to_completion() {
        for p in all_specomp() {
            let program = (p.build)(40);
            let mut exec = minivm::Executor::new(Arc::clone(&program));
            let r = run(
                &mut exec,
                &mut RoundRobin::new(11),
                &mut LiveEnv::new(3),
                &mut NullTool,
                2_000_000,
            );
            assert_eq!(r.status, ExitStatus::AllHalted, "{} must halt", p.name);
            assert_eq!(exec.num_threads(), 2);
        }
    }

    #[test]
    fn programs_contain_save_restore_pairs() {
        // The §5.2 detector must find candidates in every program.
        for p in all_specomp() {
            let program = (p.build)(4);
            let cands = slicer::PairCandidates::find(&program, 10);
            let has_pairs = program
                .code
                .iter()
                .enumerate()
                .any(|(pc, _)| cands.is_save(pc as u32));
            assert!(has_pairs, "{}: no save candidates found", p.name);
        }
    }

    #[test]
    fn accumulators_receive_work() {
        for p in all_specomp() {
            let program = (p.build)(10);
            let mut exec = minivm::Executor::new(Arc::clone(&program));
            run(
                &mut exec,
                &mut RoundRobin::new(11),
                &mut LiveEnv::new(3),
                &mut NullTool,
                2_000_000,
            );
            let acc0 = program.symbol("acc0").unwrap();
            let acc1 = program.symbol("acc1").unwrap();
            assert!(exec.read_mem(acc0) > 0, "{}: main accumulated", p.name);
            assert!(exec.read_mem(acc1) > 0, "{}: worker accumulated", p.name);
        }
    }
}
