//! # workloads — the programs the DrDebug evaluation runs on
//!
//! Mini-VM analogues of everything paper §7 executes:
//!
//! * [`bugs`] — the three real concurrency-bug case studies of Table 1
//!   (pbzip2, Aget, Mozilla), reproduced as schedule-dependent races with
//!   the same failure modes, plus their Table 2/3 region specifications;
//! * [`parsec`] — eight synthetic 4-threaded PARSEC 2.1 analogues (5 apps,
//!   3 kernels) with a work-size knob, for the logging/replay/execution-
//!   slicing curves of Figs. 11/12/14;
//! * [`specomp`] — five call-heavy SPEC OMP 2001 analogues whose functions
//!   save/restore registers on the hot path, for the pruning evaluation of
//!   Fig. 13;
//! * [`figures`] — the paper's worked examples (Figs. 5, 7, 8) as runnable
//!   programs with labelled program points.
//!
//! See `DESIGN.md` at the repository root for the substitution rationale:
//! the experiments need the workloads' *structural* properties (instruction
//! volume, sharing pattern, call/save density, race windows), which these
//! programs reproduce, not their numerical output.

pub mod bugs;
pub mod figures;
pub mod parsec;
pub mod specomp;

pub use bugs::{aget_like, all_bugs, mozilla_like, pbzip2_like, BugCase};
pub use figures::{fig5_exposing_iroot, fig5_race, fig7_switch, fig8_save_restore};
pub use parsec::{
    all_parsec, units_for_main_instructions, ParsecProgram, PARSEC_INSTRUCTIONS_PER_UNIT,
};
pub use specomp::{all_specomp, SpecOmpProgram};
