//! The paper's worked examples, as runnable programs.
//!
//! * [`fig5_race`] — the §3 example: two threads, shared variables, an
//!   atomicity violation whose backward slice pinpoints the racing write;
//! * [`fig7_switch`] — the §5.1 example: a switch lowered to an indirect
//!   jump, whose control dependence needs CFG refinement;
//! * [`fig8_save_restore`] — the §5.2 example: function `Q` saving and
//!   restoring a register, manufacturing spurious dependences the pruner
//!   removes.

use std::sync::Arc;

use maple::IRoot;
use minivm::{assemble, Program};

/// The Figure 5 scenario: thread T2 executes a region it believes is
/// atomic (`k = x; m = k*2; k2 = x; assert k == k2`), while thread T1's
/// write to `x` can land in the middle. The assertion failure's backward
/// slice captures T1's racing write and its whole chain (paper Fig. 5(d)).
///
/// Labels: `t1_store_x` (the racing write, line 6 of the paper),
/// `t2_load1`/`t2_load2` (the atomic region's reads), `t2_assert`.
pub fn fig5_race() -> Arc<Program> {
    let src = r"
        .data
        x: .word 0
        y: .word 0
        z: .word 0
        .text
        .func main
            ; main plays T2; the spawned thread plays T1.
            movi r1, 0
            spawn r10, t1, r1
            ; --- region assumed atomic (paper lines 11-13) ---
            la r2, x
        t2_load1:
            load r3, r2, 0       ; k = x
            muli r4, r3, 2       ; m = k * 2
        t2_load2:
            load r5, r2, 0       ; k2 = x
            seq r6, r3, r5
        t2_assert:
            assert r6            ; fails when T1 modified x in between
            ; --- end atomic region ---
            join r10
            halt
        .endfunc
        .func t1
            ; paper lines 1-6: z = 1; x = z + 1; y = x + 1; ...; x = y + 1
            la r1, z
            movi r2, 1
            store r2, r1, 0      ; z = 1
            la r3, x
            addi r4, r2, 1
            store r4, r3, 0      ; x = z + 1
            la r5, y
            addi r6, r4, 1
            store r6, r5, 0      ; y = x + 1
            addi r7, r6, 1
        t1_store_x:
            store r7, r3, 0      ; x = y + 1   <- the racing write
            halt
        .endfunc
        ";
    Arc::new(assemble(src).expect("fig5 assembles"))
}

/// The interleaving that makes Figure 5's assertion fail: T2's first read
/// of `x`, then T1's racing store, then T2's second read.
pub fn fig5_exposing_iroot(program: &Program) -> IRoot {
    IRoot {
        src_pc: program.label("t2_load1").expect("label"),
        dst_pc: program.label("t1_store_x").expect("label"),
    }
}

/// The Figure 7 scenario: a switch over an input character, lowered to a
/// jump table + indirect jump. Each case body is control dependent on the
/// dispatch — but only a CFG refined with the observed targets shows it.
///
/// The program reads two selectors from input so both cases execute
/// (giving refinement both edges). Labels: `switch_jmp`, `case_a`,
/// `case_b`, `use_w`.
pub fn fig7_switch() -> Arc<Program> {
    let src = r"
        .data
        table: .word @case_a, @case_b
        wsum:  .word 0
        .text
        .func main
            movi r7, 2           ; two P() invocations, as if called twice
        again:
            read r0              ; c = fgetc(fin), 0 or 1
            andi r0, r0, 1
            movi r1, 10          ; d
            la r2, table
            add r2, r2, r0
            load r3, r2, 0
        switch_jmp:
            jmpind r3            ; switch (c)
        case_a:
            addi r4, r1, 2       ; w = d + 2
            jmp done
        case_b:
            subi r4, r1, 2       ; w = d - 2
        done:
            la r5, wsum
            load r6, r5, 0
        use_w:
            add r6, r6, r4
            store r6, r5, 0
            subi r7, r7, 1
            bgti r7, 0, again
            halt
        .endfunc
        ";
    Arc::new(assemble(src).expect("fig7 assembles"))
}

/// The Figure 8/§5.2 scenario, transliterated: `main` reads `c`, sets
/// `e = 7` (living in `r1` across a call), conditionally calls `Q` — which
/// saves `r1`, clobbers it, and restores it — then computes `w = e + e`.
///
/// Without pruning, the slice of `w` includes the restore, the save, the
/// guard (`if (c)`), and the `read` — the spurious context of the paper's
/// third column. With pruning it collapses to `movi e` + the final add
/// (the fourth column). Labels: `read_c`, `set_e`, `guard`, `call_q`,
/// `q_save`, `q_restore`, `compute_w`.
pub fn fig8_save_restore() -> Arc<Program> {
    let src = r"
        .text
        .func main
        read_c:
            read r0              ; c = fgetc(fin)
        set_e:
            movi r1, 7           ; e = 7 (lives in r1 across the call)
        guard:
            beqi r0, 0, skip     ; if (c == 't') ...
        call_q:
            call q
        skip:
        compute_w:
            add r2, r1, r1       ; w = e + e
            print r2
            halt
        .endfunc
        .func q
        q_save:
            push r1              ; save eax
            movi r1, 5           ; Q's real work clobbers it
            muli r3, r1, 3
        q_restore:
            pop r1               ; restore eax
            ret
        .endfunc
        ";
    Arc::new(assemble(src).expect("fig8 assembles"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{run, ExitStatus, LiveEnv, NullTool, RoundRobin};

    #[test]
    fn fig5_passes_under_default_schedule() {
        let p = fig5_race();
        let mut exec = minivm::Executor::new(Arc::clone(&p));
        let r = run(
            &mut exec,
            &mut RoundRobin::new(60),
            &mut LiveEnv::new(0),
            &mut NullTool,
            100_000,
        );
        // With a coarse quantum, T2's "atomic" region completes before T1
        // is scheduled into it.
        assert_eq!(r.status, ExitStatus::AllHalted);
    }

    #[test]
    fn fig5_fails_under_forced_interleaving() {
        let p = fig5_race();
        let iroot = fig5_exposing_iroot(&p);
        let e = maple::expose_iroot(&p, iroot, maple::ExposeOptions::default());
        assert!(
            e.as_ref()
                .is_some_and(|e| matches!(e.error, minivm::VmError::AssertFailed { .. })),
            "forced interleaving must fail the atomicity assertion: {e:?}"
        );
    }

    #[test]
    fn fig7_executes_both_cases() {
        let p = fig7_switch();
        let mut exec = minivm::Executor::new(Arc::clone(&p));
        let r = run(
            &mut exec,
            &mut RoundRobin::new(8),
            &mut LiveEnv::with_inputs(0, [0, 1]),
            &mut NullTool,
            10_000,
        );
        assert_eq!(r.status, ExitStatus::AllHalted);
        let wsum = p.symbol("wsum").unwrap();
        assert_eq!(exec.read_mem(wsum), 12 + 8, "w = d+2 then w = d-2");
    }

    #[test]
    fn fig8_prints_w_14() {
        let p = fig8_save_restore();
        let mut exec = minivm::Executor::new(Arc::clone(&p));
        let r = run(
            &mut exec,
            &mut RoundRobin::new(8),
            &mut LiveEnv::with_inputs(0, [1]), // c != 0: Q is called
            &mut NullTool,
            10_000,
        );
        assert_eq!(r.status, ExitStatus::AllHalted);
        assert_eq!(
            exec.output(),
            &[14],
            "e survives Q's clobber via save/restore"
        );
    }

    #[test]
    fn labels_resolve() {
        let p5 = fig5_race();
        for l in ["t1_store_x", "t2_load1", "t2_load2", "t2_assert"] {
            assert!(p5.label(l).is_some(), "fig5 label {l}");
        }
        let p7 = fig7_switch();
        for l in ["switch_jmp", "case_a", "case_b", "use_w"] {
            assert!(p7.label(l).is_some(), "fig7 label {l}");
        }
        let p8 = fig8_save_restore();
        for l in [
            "read_c",
            "set_e",
            "guard",
            "q_save",
            "q_restore",
            "compute_w",
        ] {
            assert!(p8.label(l).is_some(), "fig8 label {l}");
        }
    }
}
