//! The three concurrency-bug case studies of paper Table 1.
//!
//! The paper studies real races in pbzip2, Aget, and Mozilla. Those exact
//! binaries cannot run on the mini-VM, so each case reproduces the *bug
//! pattern* with the same structure and failure mode:
//!
//! | case | original | pattern |
//! |------|----------|---------|
//! | `pbzip2_like` | race on `fifo->mut` between main and compressor threads | main frees (poisons) the queue mutex before the consumers are done; a consumer's use of the freed mutex crashes |
//! | `aget_like` | race on `bwritten` between downloader threads and the signal handler thread | unsynchronised read-modify-write of the progress counter; the final byte-count assertion fails |
//! | `mozilla_like` | one thread destroys `rt->scriptFilenameTable` while another sweeps it | the main thread tears down a hash table while the sweeper thread is still iterating; the sweeper trips over a destroyed entry |
//!
//! Each program is written so the bug needs an adverse interleaving: the
//! default round-robin schedule passes, and the Maple active scheduler
//! exposes the failure by forcing the case's [`BugCase::exposing_iroot`] —
//! the usage model of paper §6.

use std::sync::Arc;

use maple::IRoot;
use minivm::{assemble, Pc, Program, Tid};
use pinplay::{EndTrigger, RegionSpec, StartTrigger};

/// One Table 1 case study.
#[derive(Debug, Clone)]
pub struct BugCase {
    /// Short name (the paper's "Program Name" column).
    pub name: &'static str,
    /// The paper's "Bug Description" column, adapted.
    pub description: &'static str,
    /// The buggy program.
    pub program: Arc<Program>,
    /// Thread id of the root-cause access (spawn order is deterministic,
    /// so this is fixed).
    pub root_tid: Tid,
    /// Code label of the root-cause instruction.
    root_label: &'static str,
    /// Code labels of the interleaving that exposes the bug.
    iroot_labels: (&'static str, &'static str),
}

impl BugCase {
    /// Pc of the root-cause instruction.
    pub fn root_pc(&self) -> Pc {
        self.program
            .label(self.root_label)
            .expect("root-cause label exists")
    }

    /// The adverse interleaving Maple's active scheduler forces to expose
    /// the bug.
    pub fn exposing_iroot(&self) -> IRoot {
        let (s, d) = self.iroot_labels;
        IRoot {
            src_pc: self.program.label(s).expect("iroot src label"),
            dst_pc: self.program.label(d).expect("iroot dst label"),
        }
    }

    /// Exposes the bug: automatic profiling first, falling back to the
    /// case's known adverse interleaving.
    pub fn expose(&self) -> Option<maple::Exposure> {
        maple::expose(&self.program, maple::ExposeOptions::default()).or_else(|| {
            maple::expose_iroot(
                &self.program,
                self.exposing_iroot(),
                maple::ExposeOptions::default(),
            )
        })
    }

    /// The Table 2 buggy region: from the root cause to the failure point.
    pub fn buggy_region(&self) -> RegionSpec {
        RegionSpec {
            start: StartTrigger::AtPc {
                tid: self.root_tid,
                pc: self.root_pc(),
                instance: 1,
            },
            end: EndTrigger::ProgramEnd,
        }
    }

    /// The Table 3 whole-program region: program start to failure point.
    pub fn whole_region(&self) -> RegionSpec {
        RegionSpec::whole_program()
    }
}

/// The pbzip2 case: "a data race on variable `fifo->mut` between main
/// thread and the compressor threads" — the main thread frees the queue
/// mutex before the compressor threads have finished using it.
pub fn pbzip2_like() -> BugCase {
    let src = r"
        .data
        queue:   .space 8
        head:    .word 0
        tail:    .word 0
        qmutex:  .word 0      ; the fifo->mut analog
        sink:    .word 0
        .text
        .func main
            movi r1, 0
            spawn r10, consumer, r1
            spawn r11, consumer, r1
            movi r5, 200          ; produce 200 items
        prod_loop:
            la r1, qmutex
            lock r1
            la r2, tail
            load r3, r2, 0
            andi r4, r3, 7
            la r6, queue
            add r6, r6, r4
            store r5, r6, 0
            addi r3, r3, 1
            store r3, r2, 0
            unlock r1
            subi r5, r5, 1
            bgti r5, 0, prod_loop
            ; lengthy shutdown bookkeeping: consumers normally drain the
            ; queue and exit while this runs
            movi r7, 18000
        cleanup:
            muli r8, r7, 3
            addi r8, r8, 1
            subi r7, r7, 1
            bgti r7, 0, cleanup
            ; BUG (root cause): enter the early-free path without joining
            ; the consumers first
        free_path:
            movi r7, 800          ; release bookkeeping for the fifo
        free_work:
            muli r8, r7, 5
            addi r8, r8, 3
            subi r7, r7, 1
            bgti r7, 0, free_work
            la r1, qmutex
            movi r3, -1
        bug_root:
            store r3, r1, 0
            join r10
            join r11
            halt
        .endfunc
        .func consumer
        consume_loop:
            la r1, qmutex
        bug_lock:
            lock r1               ; crashes when qmutex has been freed
            la r2, head
            load r3, r2, 0
            la r4, tail
            load r5, r4, 0
            blt r3, r5, have_item
            unlock r1             ; (or traps here if freed mid-section)
            jmp exit_check
        have_item:
            andi r6, r3, 7
            la r7, queue
            add r7, r7, r6
            load r8, r7, 0
            addi r3, r3, 1
            store r3, r2, 0
            unlock r1
            muli r8, r8, 3        ; 'compress' the item
            addi r8, r8, 7
            la r9, sink
            store r8, r9, 0
        exit_check:
            la r2, head
            load r3, r2, 0
            blti r3, 200, consume_loop
            halt
        .endfunc
        ";
    BugCase {
        name: "pbzip2",
        description: "data race on fifo->mut between the main thread and the compressor threads: \
                      main frees the queue mutex before the consumers stop using it",
        program: Arc::new(assemble(src).expect("pbzip2_like assembles")),
        root_tid: 0,
        root_label: "free_path",
        iroot_labels: ("bug_lock", "bug_root"),
    }
}

/// The Aget case: "a data race on variable `bwritten` between downloader
/// threads and the signal handler thread".
pub fn aget_like() -> BugCase {
    let src = r"
        .data
        bwritten: .word 0
        .text
        .func main
            movi r1, 512
            spawn r10, downloader, r1
            spawn r11, downloader, r1
            movi r1, 0
            spawn r12, sighandler, r1
            join r10
            join r11
            join r12
            la r2, bwritten
            load r3, r2, 0
            seqi r4, r3, 1024     ; 2 downloaders x 512 chunks
            assert r4             ; fails when an update was lost
            halt
        .endfunc
        .func downloader
            ; 20-instruction loop body: under the default round-robin
            ; quantum (a multiple of 20) the read-modify-write is never
            ; split, so the race needs an adverse scheduler to manifest.
            la r1, bwritten
        dl_loop:
        dl_load:
            load r2, r1, 0        ; racy read-modify-write
            addi r2, r2, 1
        dl_store:
            store r2, r1, 0
            movi r3, 7            ; simulate per-chunk network latency
        net_wait:
            subi r3, r3, 1
            bgti r3, 0, net_wait
            subi r0, r0, 1
            bgti r0, 0, dl_loop
            halt
        .endfunc
        .func sighandler
            ; the SIGALRM progress handler: snapshot bwritten, compute the
            ; progress display, write the snapshot back (stale!)
            la r1, bwritten
        sig_load:
            load r2, r1, 0
            muli r3, r2, 100
            addi r3, r3, 1
        sig_store:
            store r2, r1, 0
            halt
        .endfunc
        ";
    BugCase {
        name: "Aget",
        description: "data race on bwritten between downloader threads and the signal handler \
                      thread: unsynchronised updates lose increments",
        program: Arc::new(assemble(src).expect("aget_like assembles")),
        root_tid: 1,
        root_label: "dl_load",
        iroot_labels: ("dl_load", "dl_load"),
    }
}

/// The Mozilla case: "one thread destroys a hash table, and another thread
/// crashes ... when accessing this hash table".
pub fn mozilla_like() -> BugCase {
    let src = r"
        .data
        table:  .space 64
        out:    .word 0
        .text
        .func main
            movi r1, 0
            spawn r10, sweeper, r1
            ; long shutdown path: the sweeper normally finishes first
            movi r7, 30000
        shutdown_work:
            muli r8, r7, 7
            addi r8, r8, 3
            subi r7, r7, 1
            bgti r7, 0, shutdown_work
            ; BUG (root cause): destroy the table without waiting for the
            ; sweeper (the js_SweepScriptFilenames race)
            movi r2, 0
            movi r3, -1
            la r4, table
        destroy_loop:
            add r5, r4, r2
        bug_root:
            store r3, r5, 0       ; destroy entry
            addi r2, r2, 1
            blti r2, 64, destroy_loop
            join r10
            halt
        .endfunc
        .func sweeper
            ; mark phase: long GC bookkeeping before the sweep proper
            movi r7, 15000
        mark_tick:
            subi r7, r7, 1
            bgti r7, 0, mark_tick
            movi r1, 0
        sweep_loop:
            la r2, table
            add r2, r2, r1
        sweep_load:
            load r3, r2, 0        ; crashes if the entry was destroyed
            slti r4, r3, 0
            seqi r4, r4, 0
            assert r4             ; entry must still be valid
            la r5, out
            load r6, r5, 0
            add r6, r6, r3
            store r6, r5, 0
            ; per-entry processing work
            movi r7, 12
        entry_work:
            mul r8, r6, r6
            andi r8, r8, 0xfff
            subi r7, r7, 1
            bgti r7, 0, entry_work
            addi r1, r1, 1
            blti r1, 64, sweep_loop
            halt
        .endfunc
        ";
    BugCase {
        name: "mozilla",
        description: "data race on rt->scriptFilenameTable: one thread destroys the hash table \
                      while another is sweeping it and crashes on a destroyed entry",
        program: Arc::new(assemble(src).expect("mozilla_like assembles")),
        root_tid: 0,
        root_label: "bug_root",
        iroot_labels: ("mark_tick", "bug_root"),
    }
}

/// All three Table 1 case studies.
pub fn all_bugs() -> Vec<BugCase> {
    vec![pbzip2_like(), aget_like(), mozilla_like()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{run, ExitStatus, LiveEnv, NullTool, RoundRobin};

    fn runs_clean_under_round_robin(case: &BugCase) {
        let mut exec = minivm::Executor::new(Arc::clone(&case.program));
        let r = run(
            &mut exec,
            &mut RoundRobin::new(60),
            &mut LiveEnv::new(0),
            &mut NullTool,
            2_000_000,
        );
        assert_eq!(
            r.status,
            ExitStatus::AllHalted,
            "{}: default schedule should not trip the bug",
            case.name
        );
    }

    fn exposes(case: &BugCase) -> maple::Exposure {
        case.expose()
            .unwrap_or_else(|| panic!("{}: bug must be exposable", case.name))
    }

    #[test]
    fn pbzip2_like_is_schedule_dependent() {
        let case = pbzip2_like();
        runs_clean_under_round_robin(&case);
        let e = exposes(&case);
        assert!(
            matches!(
                e.error,
                minivm::VmError::PoisonedLock { .. } | minivm::VmError::UnlockNotHeld { .. }
            ),
            "pbzip2 crash is a use-after-free of the mutex: {:?}",
            e.error
        );
    }

    #[test]
    fn aget_like_is_schedule_dependent() {
        let case = aget_like();
        runs_clean_under_round_robin(&case);
        let e = exposes(&case);
        assert!(matches!(e.error, minivm::VmError::AssertFailed { .. }));
    }

    #[test]
    fn mozilla_like_is_schedule_dependent() {
        let case = mozilla_like();
        runs_clean_under_round_robin(&case);
        let e = exposes(&case);
        assert!(matches!(e.error, minivm::VmError::AssertFailed { .. }));
    }

    #[test]
    fn explicit_iroots_expose_without_profiling() {
        for case in all_bugs() {
            let e = maple::expose_iroot(
                &case.program,
                case.exposing_iroot(),
                maple::ExposeOptions::default(),
            );
            assert!(
                e.is_some(),
                "{}: known adverse interleaving works",
                case.name
            );
        }
    }

    #[test]
    fn root_cause_labels_resolve() {
        for case in all_bugs() {
            let pc = case.root_pc();
            assert!((pc as usize) < case.program.len());
            assert!(matches!(
                case.buggy_region().start,
                StartTrigger::AtPc { .. }
            ));
        }
    }
}
