//! Synthetic PARSEC-like workloads (paper §7, Figs. 11/12/14).
//!
//! The paper evaluates logging/replay/execution-slicing on eight 4-threaded
//! PARSEC 2.1 programs (five "apps", three "kernels") with regions of 10M–1B
//! main-thread instructions. Real PARSEC binaries cannot run on the mini-VM,
//! so each program here is a synthetic 4-thread workload reproducing the
//! *structural* property that matters for those experiments — instruction
//! volume scaling and the program's sharing/synchronisation pattern:
//!
//! | program | category | sharing pattern |
//! |---|---|---|
//! | blackscholes | app | embarrassingly parallel, one final reduction |
//! | bodytrack | app | per-phase shared accumulator under a mutex |
//! | swaptions | app | independent Monte-Carlo with `rand` syscalls |
//! | fluidanimate | app | fine-grained neighbour cell reads |
//! | x264 | app | pipeline: frame counter claimed by CAS |
//! | canneal | kernel | random CAS swaps over a shared array |
//! | streamcluster | kernel | atomic-add reduction every iteration |
//! | dedup | kernel | lock-protected producer/consumer queue |
//!
//! Every generator takes `units`, a work-size knob roughly proportional to
//! main-thread instructions; [`PARSEC_INSTRUCTIONS_PER_UNIT`] gives the
//! approximate conversion, and [`units_for_main_instructions`] inverts it.
//! Region lengths are scaled ~1000× down from the paper (10k–1M instead of
//! 10M–1B) to laptop scale; the *shapes* of Figs. 11/12/14 are what the
//! bench harness reproduces.

use std::sync::Arc;

use minivm::{assemble, Program};

/// Approximate main-thread instructions executed per work unit.
pub const PARSEC_INSTRUCTIONS_PER_UNIT: u64 = 12;

/// Work units needed for the main thread to retire at least
/// `instructions` instructions inside its main loop.
pub fn units_for_main_instructions(instructions: u64) -> u64 {
    instructions.div_ceil(PARSEC_INSTRUCTIONS_PER_UNIT).max(1)
}

/// A named PARSEC-analog generator.
#[derive(Clone, Copy)]
pub struct ParsecProgram {
    /// Benchmark name (paper's naming).
    pub name: &'static str,
    /// "apps" or "kernels" (paper's grouping).
    pub category: &'static str,
    /// Builds the program with the given work size.
    pub build: fn(u64) -> Arc<Program>,
}

impl std::fmt::Debug for ParsecProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParsecProgram")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish()
    }
}

/// The eight programs used in the paper's figures: 5 apps + 3 kernels.
pub fn all_parsec() -> Vec<ParsecProgram> {
    vec![
        ParsecProgram {
            name: "blackscholes",
            category: "apps",
            build: blackscholes,
        },
        ParsecProgram {
            name: "bodytrack",
            category: "apps",
            build: bodytrack,
        },
        ParsecProgram {
            name: "swaptions",
            category: "apps",
            build: swaptions,
        },
        ParsecProgram {
            name: "fluidanimate",
            category: "apps",
            build: fluidanimate,
        },
        ParsecProgram {
            name: "x264",
            category: "apps",
            build: x264,
        },
        ParsecProgram {
            name: "canneal",
            category: "kernels",
            build: canneal,
        },
        ParsecProgram {
            name: "streamcluster",
            category: "kernels",
            build: streamcluster,
        },
        ParsecProgram {
            name: "dedup",
            category: "kernels",
            build: dedup,
        },
    ]
}

fn build(src: String) -> Arc<Program> {
    Arc::new(assemble(&src).expect("parsec workload assembles"))
}

/// Embarrassingly parallel option pricing: each thread evaluates a
/// polynomial over its private accumulator; one atomic reduction at the end.
pub fn blackscholes(units: u64) -> Arc<Program> {
    build(format!(
        r"
        .data
        result:  .word 0
        options: .word 17, 23, 31, 45
        .text
        .func main
            movi r1, {units}
            spawn r10, worker, r1
            spawn r11, worker, r1
            spawn r12, worker, r1
            mov r0, r1
            call price_loop
            la r2, result
            xadd r3, r2, r0
            join r10
            join r11
            join r12
            halt
        .endfunc
        .func worker
            call price_loop
            la r2, result
            xadd r3, r2, r0
            halt
        .endfunc
        .func price_loop
            ; r0 = iterations in, price accumulator out
            movi r2, 0
            movi r3, 0
            la r6, options
        loop:
            andi r7, r3, 3
            add r7, r6, r7
            load r4, r7, 0      ; read the option record
            muli r4, r4, 3      ; S * rate
            addi r4, r4, 5      ; + strike offset
            mul r5, r4, r4      ; vol^2 term
            shri r5, r5, 4
            add r2, r2, r5
            andi r2, r2, 0xffff
            addi r3, r3, 1
            subi r0, r0, 1
            bgti r0, 0, loop
            mov r0, r2
            ret
        .endfunc
        "
    ))
}

/// Phase-structured body tracking: threads accumulate into a shared
/// likelihood under a mutex once per chunk of work.
pub fn bodytrack(units: u64) -> Arc<Program> {
    build(format!(
        r"
        .data
        likelihood: .word 0
        lmutex:     .word 0
        .text
        .func main
            movi r1, {units}
            spawn r10, worker, r1
            spawn r11, worker, r1
            spawn r12, worker, r1
            mov r0, r1
            call track
            join r10
            join r11
            join r12
            halt
        .endfunc
        .func worker
            call track
            halt
        .endfunc
        .func track
            movi r2, 0
        chunk:
            ; 4 iterations of particle weight computation per lock
            movi r3, 4
        inner:
            muli r4, r2, 7
            addi r4, r4, 13
            andi r4, r4, 0xff
            add r2, r2, r4
            subi r3, r3, 1
            bgti r3, 0, inner
            la r5, lmutex
            lock r5
            la r6, likelihood
            load r7, r6, 0
            add r7, r7, r2
            store r7, r6, 0
            unlock r5
            subi r0, r0, 4
            bgti r0, 0, chunk
            ret
        .endfunc
        "
    ))
}

/// Monte-Carlo swaption pricing: `rand` syscalls drive each path, so the
/// pinball's syscall log grows with the region (a different log profile
/// from the other programs).
pub fn swaptions(units: u64) -> Arc<Program> {
    build(format!(
        r"
        .data
        prices: .space 4
        .text
        .func main
            movi r1, {units}
            spawn r10, worker, r1
            spawn r11, worker, r1
            spawn r12, worker, r1
            mov r0, r1
            movi r6, 0
            call simulate
            join r10
            join r11
            join r12
            halt
        .endfunc
        .func worker
            gettid r6
            call simulate
            halt
        .endfunc
        .func simulate
            la r5, prices
            add r5, r5, r6
            movi r2, 0
        path:
            rand r3
            andi r3, r3, 0xffff
            muli r4, r3, 3
            shri r4, r4, 2
            add r2, r2, r4
            load r7, r5, 0      ; running price for this swaption
            add r7, r7, r4
            store r7, r5, 0
            subi r0, r0, 1
            bgti r0, 0, path
            store r2, r5, 0
            ret
        .endfunc
        "
    ))
}

/// Grid-based fluid simulation: each thread updates its own cell but reads
/// a neighbour's, creating fine-grained cross-thread data flow without
/// locks.
pub fn fluidanimate(units: u64) -> Arc<Program> {
    build(format!(
        r"
        .data
        cells: .word 1, 2, 3, 4
        .text
        .func main
            movi r1, {units}
            spawn r10, worker1, r1
            spawn r11, worker2, r1
            spawn r12, worker3, r1
            mov r0, r1
            movi r6, 0
            call relax
            join r10
            join r11
            join r12
            halt
        .endfunc
        .func worker1
            mov r0, r0
            movi r6, 1
            call relax
            halt
        .endfunc
        .func worker2
            movi r6, 2
            call relax
            halt
        .endfunc
        .func worker3
            movi r6, 3
            call relax
            halt
        .endfunc
        .func relax
            ; own cell = cells[r6], neighbour = cells[(r6+1)%4]
            la r2, cells
            add r2, r2, r6
            addi r3, r6, 1
            andi r3, r3, 3
            la r4, cells
            add r4, r4, r3
        step:
            load r5, r4, 0      ; read neighbour
            load r7, r2, 0      ; read own
            add r7, r7, r5
            shri r7, r7, 1      ; average
            addi r7, r7, 1
            store r7, r2, 0     ; write own
            subi r0, r0, 1
            bgti r0, 0, step
            ret
        .endfunc
        "
    ))
}

/// Pipeline video encoding: frames are claimed from a shared counter by
/// CAS; each claimed frame dispatches on its type (I/P/B) through a jump
/// table — the indirect-jump idiom real encoders lower switches to, which
/// exercises the §5.1 CFG-refinement machinery inside a benchmark.
pub fn x264(units: u64) -> Arc<Program> {
    // Each frame is ~10 instructions of encode work + claim overhead.
    let frames = units.max(4);
    build(format!(
        r"
        .data
        next_frame: .word 0
        encoded:    .word 0
        ftype_tbl:  .word @enc_i, @enc_p, @enc_b
        .text
        .func main
            movi r1, {frames}
            spawn r10, worker, r1
            spawn r11, worker, r1
            spawn r12, worker, r1
            mov r0, r1
            call encode_loop
            join r10
            join r11
            join r12
            halt
        .endfunc
        .func worker
            call encode_loop
            halt
        .endfunc
        .func encode_loop
            la r2, next_frame
        claim:
            load r3, r2, 0
            bgei r3, {frames}, done
            addi r4, r3, 1
            cas r5, r2, r3, r4
            bne r5, r3, claim   ; lost the race: retry
            ; dispatch on frame type: switch (frame % 3)
            movi r9, 3
            rem r9, r3, r9
            la r6, ftype_tbl
            add r6, r6, r9
            load r6, r6, 0
            jmpind r6
        enc_i:
            mul r6, r3, r3      ; intra: full transform
            andi r6, r6, 0xfff
            jmp commit
        enc_p:
            muli r6, r3, 5      ; predicted: cheaper
            addi r6, r6, 3
            jmp commit
        enc_b:
            addi r6, r3, 1      ; bidirectional: cheapest
            shli r6, r6, 2
        commit:
            la r7, encoded
            xadd r8, r7, r6
            jmp claim
        done:
            ret
        .endfunc
        "
    ))
}

/// Simulated annealing on a netlist: threads CAS-swap random slots of a
/// shared array.
pub fn canneal(units: u64) -> Arc<Program> {
    build(format!(
        r"
        .data
        netlist: .word 5, 9, 2, 8, 1, 7, 4, 6
        .text
        .func main
            movi r1, {units}
            spawn r10, worker, r1
            spawn r11, worker, r1
            spawn r12, worker, r1
            mov r0, r1
            call anneal
            join r10
            join r11
            join r12
            halt
        .endfunc
        .func worker
            call anneal
            halt
        .endfunc
        .func anneal
        swap:
            rand r2
            andi r2, r2, 7
            la r3, netlist
            add r3, r3, r2
            load r4, r3, 0      ; current value
            addi r5, r4, 1      ; proposed value
            andi r5, r5, 0xff
            cas r6, r3, r4, r5  ; commit if unchanged
            subi r0, r0, 1
            bgti r0, 0, swap
            ret
        .endfunc
        "
    ))
}

/// Streaming clustering: every point contributes to a shared cost total by
/// atomic add (heavy inter-thread traffic on one cache line).
pub fn streamcluster(units: u64) -> Arc<Program> {
    build(format!(
        r"
        .data
        cost: .word 0
        .text
        .func main
            movi r1, {units}
            spawn r10, worker, r1
            spawn r11, worker, r1
            spawn r12, worker, r1
            mov r0, r1
            call cluster
            join r10
            join r11
            join r12
            halt
        .endfunc
        .func worker
            call cluster
            halt
        .endfunc
        .func cluster
            movi r2, 3
        point:
            mul r3, r2, r2     ; distance^2
            shri r3, r3, 3
            addi r3, r3, 1
            la r4, cost
            xadd r5, r4, r3
            addi r2, r2, 2
            andi r2, r2, 0x3f
            subi r0, r0, 1
            bgti r0, 0, point
            ret
        .endfunc
        "
    ))
}

/// Deduplicating compression pipeline: main produces chunks into a
/// lock-protected queue; workers consume and 'compress' them.
pub fn dedup(units: u64) -> Arc<Program> {
    let chunks = units.max(4);
    build(format!(
        r"
        .data
        queue:  .space 8
        head:   .word 0
        tail:   .word 0
        qmutex: .word 0
        done:   .word 0
        out:    .word 0
        .text
        .func main
            movi r1, 0
            spawn r10, consumer, r1
            spawn r11, consumer, r1
            spawn r12, consumer, r1
            movi r5, {chunks}
        produce:
            la r1, qmutex
            lock r1
            la r2, tail
            load r3, r2, 0
            la r6, head
            load r7, r6, 0
            sub r8, r3, r7
            bgei r8, 8, full    ; ring full: release and retry
            andi r4, r3, 7
            la r6, queue
            add r6, r6, r4
            store r5, r6, 0
            addi r3, r3, 1
            store r3, r2, 0
            unlock r1
            subi r5, r5, 1
            bgti r5, 0, produce
            jmp finish
        full:
            unlock r1
            jmp produce
        finish:
            la r2, done
            movi r3, 1
            store r3, r2, 0
            join r10
            join r11
            join r12
            halt
        .endfunc
        .func consumer
        consume:
            la r1, qmutex
            lock r1
            la r2, head
            load r3, r2, 0
            la r4, tail
            load r5, r4, 0
            blt r3, r5, have
            unlock r1
            la r6, done
            load r7, r6, 0
            beqi r7, 0, consume
            halt
        have:
            andi r6, r3, 7
            la r7, queue
            add r7, r7, r6
            load r8, r7, 0
            addi r3, r3, 1
            store r3, r2, 0
            unlock r1
            ; 'compress': hash the chunk
            muli r8, r8, 31
            addi r8, r8, 17
            andi r8, r8, 0xffff
            la r9, out
            xadd r2, r9, r8
            jmp consume
        .endfunc
        "
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minivm::{run, ExitStatus, LiveEnv, NullTool, RoundRobin};

    fn run_to_halt(p: &Arc<Program>, max: u64) -> (ExitStatus, u64, u64) {
        let mut exec = minivm::Executor::new(Arc::clone(p));
        let r = run(
            &mut exec,
            &mut RoundRobin::new(13),
            &mut LiveEnv::new(7),
            &mut NullTool,
            max,
        );
        (r.status, exec.icount(0), exec.total_icount())
    }

    #[test]
    fn all_eight_programs_run_to_completion() {
        for p in all_parsec() {
            let program = (p.build)(50);
            let (status, _, _) = run_to_halt(&program, 2_000_000);
            assert_eq!(status, ExitStatus::AllHalted, "{} must halt", p.name);
        }
    }

    #[test]
    fn four_threads_are_created() {
        for p in all_parsec() {
            let program = (p.build)(20);
            let mut exec = minivm::Executor::new(Arc::clone(&program));
            run(
                &mut exec,
                &mut RoundRobin::new(13),
                &mut LiveEnv::new(7),
                &mut NullTool,
                2_000_000,
            );
            assert_eq!(exec.num_threads(), 4, "{}: 4-threaded runs", p.name);
        }
    }

    #[test]
    fn work_scales_with_units() {
        for p in all_parsec() {
            let small = (p.build)(20);
            let big = (p.build)(200);
            let (_, _, t_small) = run_to_halt(&small, 10_000_000);
            let (_, _, t_big) = run_to_halt(&big, 10_000_000);
            assert!(
                t_big > t_small * 3,
                "{}: 10x units should give >3x instructions ({t_small} -> {t_big})",
                p.name
            );
        }
    }

    #[test]
    fn total_instructions_are_multiple_of_main_thread() {
        // Paper: "total instructions in the region from all threads were
        // 3-4 times more than the length in the main thread".
        for p in all_parsec() {
            let program = (p.build)(100);
            let (_, main, total) = run_to_halt(&program, 10_000_000);
            let ratio = total as f64 / main as f64;
            assert!(
                (2.0..8.0).contains(&ratio),
                "{}: total/main ratio {ratio:.1} out of plausible range",
                p.name
            );
        }
    }

    #[test]
    fn units_conversion_is_sane() {
        assert_eq!(units_for_main_instructions(0), 1);
        let u = units_for_main_instructions(10_000);
        assert!(u >= 10_000 / PARSEC_INSTRUCTIONS_PER_UNIT);
    }
}
