//! Parallel-vs-serial slicing pipeline comparison.
//!
//! Exercises the two tentpole parallelisations against their serial
//! baselines on a four-thread trace with >= 100k records:
//!
//! * `collection`: serial single-collector replay vs sharded streaming
//!   collectors (one per thread, fed over channels);
//! * `traversal`: the LP block-skipping scan vs the sparse index-guided
//!   scan that never touches irrelevant blocks.
//!
//! Both variants are byte-identical in output (enforced by
//! `tests/par_speedup.rs`); this bench only measures wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slicer::{compute_slice_lp, compute_slice_sparse, SliceOptions, SlicerOptions};

use bench::exp::needle_session;

const ITERS: u64 = 4_700; // 4 threads x ~6 records/iter => >= 100k records

fn serial_options() -> SlicerOptions {
    SlicerOptions {
        parallel: false,
        ..SlicerOptions::default()
    }
}

fn parallel_options() -> SlicerOptions {
    SlicerOptions {
        parallel: true,
        parallel_threshold: 0,
        ..SlicerOptions::default()
    }
}

fn bench_par_slicing(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_slicing");
    group.sample_size(10);

    for (label, opts) in [
        ("serial", serial_options as fn() -> SlicerOptions),
        ("parallel", parallel_options as fn() -> SlicerOptions),
    ] {
        group.bench_function(BenchmarkId::new("collection", label), |b| {
            b.iter(|| needle_session(ITERS, opts()).0)
        });
    }

    let (session, criterion) = needle_session(ITERS, SlicerOptions::default());
    assert!(
        session.trace().records().len() >= 100_000,
        "bench trace must hold >= 100k records, got {}",
        session.trace().records().len()
    );
    for (label, f) in [
        ("lp", compute_slice_lp as fn(_, _, _, _) -> _),
        ("sparse", compute_slice_sparse as fn(_, _, _, _) -> _),
    ] {
        group.bench_function(BenchmarkId::new("traversal", label), |b| {
            b.iter(|| {
                f(
                    session.trace(),
                    criterion,
                    session.pairs(),
                    SliceOptions::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par_slicing);
criterion_main!(benches);
