//! Execution-slice relogging: slice-pinball replay vs full-region
//! replay, plus the relog (exclusion regions → injection rewrite) cost
//! itself.
//!
//! The workload is the 100k-record
//! [`four_thread_churn`](bench::exp::four_thread_churn) region whose
//! slice excludes almost everything, so the slice pinball retires a tiny
//! fraction of the region — the paper's "execution slice" payoff that the
//! `relog_speedup` CI gate holds at ≥10×. Medians land in
//! `target/bench/relog.json` for the CI trend line.

use std::time::{Duration, Instant};

use bench::exp::{churn_parts, replay_time, slice_pinball_replay};
use criterion::{criterion_group, criterion_main, Criterion};
use slicer::{compute_slice_indexed, DepIndex, SliceOptions, SlicerOptions};

const ITERS: u64 = 4_000;

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_relog(c: &mut Criterion) {
    let (pinball, session, criterion) = churn_parts(ITERS, SlicerOptions::default());
    let opts = SliceOptions::default();
    let index = DepIndex::build(session.trace(), session.pairs(), &opts);
    let slice = compute_slice_indexed(&index, criterion);
    let program = session.program();
    let (slice_pb, _) = slice_pinball_replay(&session, &pinball, &slice);
    let full_instructions = pinball.logged_instructions();
    let kept = slice_pb.logged_instructions();

    let mut group = c.benchmark_group("relog");
    group.sample_size(10);
    group.bench_function("replay/full-region", |b| {
        b.iter(|| replay_time(program, &pinball))
    });
    group.bench_function("replay/slice-pinball", |b| {
        b.iter(|| replay_time(program, &slice_pb))
    });
    group.bench_function("relog/make-slice-pinball", |b| {
        b.iter(|| {
            let (pb, _, _) = session.make_slice_pinball(&pinball, &slice);
            pb.logged_instructions()
        })
    });
    group.finish();

    // Separately measured medians for the JSON record (the vendored
    // criterion prints but does not persist timings).
    let full = median_of(5, || {
        replay_time(program, &pinball);
    });
    let sliced = median_of(5, || {
        replay_time(program, &slice_pb);
    });
    let relog = median_of(5, || {
        session.make_slice_pinball(&pinball, &slice);
    });
    let replay_speedup = full.as_secs_f64() / sliced.as_secs_f64().max(1e-12);

    let report = format!(
        "{{\n  \"bench\": \"relog\",\n  \"workload\": \"four_thread_churn\",\n  \
         \"iters\": {ITERS},\n  \"full_instructions\": {full_instructions},\n  \
         \"kept_instructions\": {kept},\n  \"slice_records\": {},\n  \
         \"replay_full_ns\": {},\n  \"replay_slice_pinball_ns\": {},\n  \
         \"relog_ns\": {},\n  \"replay_speedup\": {:.2}\n}}\n",
        slice.records.len(),
        full.as_nanos(),
        sliced.as_nanos(),
        relog.as_nanos(),
        replay_speedup,
    );
    match bench::report::write_report("relog.json", &report) {
        Ok(path) => println!("relog bench report written to {}", path.display()),
        Err(e) => eprintln!("relog bench report not written: {e}"),
    }
}

criterion_group!(relog, bench_relog);
criterion_main!(relog);
