//! Streaming capture: chunked absorb throughput and the incremental
//! index-maintenance advantage.
//!
//! One recorded [`four_thread_churn`] trace is split into 16
//! self-delimiting chunks the way `drserve`'s streaming upload ships it.
//! Measured:
//!
//! * **absorb** — feeding all chunks through a [`StreamReader`] and
//!   sealing, i.e. the server-side cost of reassembly and validation.
//!   Measured for both stream generations: v3 chunks decode every event
//!   into an owned record (`absorb_v3_*`), v4 chunks bulk-append event
//!   columns (`absorb_*`) — the before/after of the columnar rewrite;
//! * **rebuild** — time to first slice after the final chunk when the
//!   trace and dependence index are rebuilt from scratch;
//! * **incremental** — the same first slice when the 15-chunk index
//!   already exists and the final chunk pays only `extend` + `append`.
//!
//! Medians land in `target/bench/stream.json` for the CI trend line.
//!
//! [`four_thread_churn`]: bench::exp::four_thread_churn

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::exp::churn_parts;
use criterion::{criterion_group, criterion_main, Criterion as Bencher};
use pinplay::{PinballContainer, StreamReader, StreamWriter};
use slicer::{
    compute_slice_indexed, DepIndex, GlobalTrace, SliceOptions, SliceSession, SlicerOptions,
};

const ITERS: u64 = 1_000;
const CHUNKS: usize = 16;

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_stream(c: &mut Bencher) {
    let collect = SlicerOptions {
        cluster: false,
        ..SlicerOptions::default()
    };
    let (pinball, session, criterion) = churn_parts(ITERS, collect);
    let program = Arc::clone(session.program());
    // A dense checkpoint interval guarantees enough chunk groups to
    // actually split 16 ways at this trace size.
    let container = PinballContainer::with_checkpoints(pinball, &program, 256);
    let writer = StreamWriter::new(&container).expect("container streams");
    let pieces = writer.chunks(CHUNKS);
    assert_eq!(
        pieces.len(),
        CHUNKS,
        "churn recording has >= 16 chunk groups"
    );
    let container_bytes = writer.sealed_bytes().len();

    let mut group = c.benchmark_group("stream");
    group.sample_size(10);
    group.bench_function("absorb-chunks-and-seal", |b| {
        b.iter(|| {
            let mut reader = StreamReader::default();
            for piece in &pieces {
                reader.absorb(piece).expect("chunk absorbs");
            }
            reader.absorb(writer.footer()).expect("footer absorbs");
            assert!(reader.is_sealed());
            reader.bytes_absorbed()
        })
    });
    group.finish();

    let absorb = median_of(5, || {
        let mut reader = StreamReader::default();
        for piece in &pieces {
            reader.absorb(piece).expect("chunk absorbs");
        }
        reader.absorb(writer.footer()).expect("footer absorbs");
        assert!(reader.is_sealed());
    });

    // The pre-columnar baseline: the same container shipped as a v3
    // stream, absorbed through the per-event decode path.
    let writer_v3 = StreamWriter::new_v3(&container).expect("container streams as v3");
    let pieces_v3 = writer_v3.chunks(CHUNKS);
    let container_bytes_v3 = writer_v3.sealed_bytes().len();
    let absorb_v3 = median_of(5, || {
        let mut reader = StreamReader::default();
        for piece in &pieces_v3 {
            reader.absorb(piece).expect("v3 chunk absorbs");
        }
        reader
            .absorb(writer_v3.footer())
            .expect("v3 footer absorbs");
        assert!(reader.is_sealed());
    });

    // The 15-chunk prefix state, collected the way the server collects it.
    let mut reader = StreamReader::default();
    for piece in &pieces[..CHUNKS - 1] {
        reader.absorb(piece).expect("prefix chunk absorbs");
    }
    let prefix = reader.partial_container().expect("prefix collects");
    let psession = SliceSession::collect(Arc::clone(&program), &prefix.pinball, collect);
    let done = psession.trace().records().len();
    let records = session.trace().records();
    let block = session.trace().block_size();
    let opts = SliceOptions::default();

    let rebuild = median_of(5, || {
        let trace = GlobalTrace::build_with(records.to_vec(), block, false, false);
        let index = DepIndex::build(&trace, session.pairs(), &opts);
        assert!(!compute_slice_indexed(&index, criterion).records.is_empty());
    });

    // Fresh prefix state per sample (untimed); the timed region is what a
    // streaming server pays per arriving chunk: extend + append + slice.
    let mut samples = Vec::new();
    for _ in 0..5 {
        let mut trace =
            GlobalTrace::build_with(psession.trace().records().to_vec(), block, false, false);
        let mut index = DepIndex::build(&trace, psession.pairs(), &opts);
        let started = Instant::now();
        trace.extend(records[done..].to_vec());
        index.append(&trace, session.pairs(), &opts);
        assert!(!compute_slice_indexed(&index, criterion).records.is_empty());
        samples.push(started.elapsed());
    }
    samples.sort_unstable();
    let incremental = samples[samples.len() / 2];

    let report = format!(
        "{{\n  \"bench\": \"stream\",\n  \"workload\": \"four_thread_churn\",\n  \
         \"iters\": {ITERS},\n  \"records\": {},\n  \"chunks\": {CHUNKS},\n  \
         \"container_bytes\": {container_bytes},\n  \"absorb_ns\": {},\n  \
         \"absorb_mb_per_s\": {:.2},\n  \"container_bytes_v3\": {container_bytes_v3},\n  \
         \"absorb_v3_ns\": {},\n  \"absorb_v3_mb_per_s\": {:.2},\n  \
         \"absorb_speedup\": {:.2},\n  \"rebuild_ns\": {},\n  \
         \"incremental_ns\": {},\n  \"incremental_speedup\": {:.2}\n}}\n",
        records.len(),
        absorb.as_nanos(),
        container_bytes as f64 / 1.0e6 / absorb.as_secs_f64().max(1e-12),
        absorb_v3.as_nanos(),
        container_bytes_v3 as f64 / 1.0e6 / absorb_v3.as_secs_f64().max(1e-12),
        absorb_v3.as_secs_f64() / absorb.as_secs_f64().max(1e-12),
        rebuild.as_nanos(),
        incremental.as_nanos(),
        rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-12),
    );
    match bench::report::write_report("stream.json", &report) {
        Ok(path) => println!("stream bench report written to {}", path.display()),
        Err(e) => eprintln!("stream bench report not written: {e}"),
    }
}

criterion_group!(stream, bench_stream);
criterion_main!(stream);
