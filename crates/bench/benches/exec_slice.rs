//! Criterion bench for Fig. 14: slice-pinball replay vs full-region
//! replay.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minivm::NullTool;
use pinplay::Replayer;
use slicer::SlicerOptions;

use bench::exp::{collect_session, last_read_criteria, record_parsec_region};
use workloads::all_parsec;

fn bench_exec_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_exec_slice");
    group.sample_size(10);
    for p in all_parsec() {
        let rr = record_parsec_region(&p, 500, 10_000);
        let (session, _) =
            collect_session(&rr.program, &rr.recording.pinball, SlicerOptions::default());
        let Some(&criterion) = last_read_criteria(&session, 1).first() else {
            continue;
        };
        let slice = session.slice(criterion);
        let (slice_pb, _, _) = session.make_slice_pinball(&rr.recording.pinball, &slice);
        group.bench_function(BenchmarkId::new(p.name, "region"), |b| {
            b.iter(|| {
                let mut rep = Replayer::new(Arc::clone(&rr.program), &rr.recording.pinball);
                rep.run(&mut NullTool)
            })
        });
        group.bench_function(BenchmarkId::new(p.name, "slice"), |b| {
            b.iter(|| {
                let mut rep = Replayer::new(Arc::clone(&rr.program), &slice_pb);
                rep.run(&mut NullTool)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exec_slice);
criterion_main!(benches);
