//! Criterion bench for §7 slicing overhead: trace collection, LP slicing,
//! and the LP-vs-naive traversal ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slicer::{compute_slice_lp, compute_slice_naive, SliceOptions, SlicerOptions};

use bench::exp::{collect_session, last_read_criteria, record_parsec_region};
use workloads::all_parsec;

fn bench_slicing(c: &mut Criterion) {
    let mut group = c.benchmark_group("slicing");
    group.sample_size(10);
    let p = &all_parsec()[1]; // bodytrack: locks + shared accumulator
    let rr = record_parsec_region(p, 500, 20_000);

    group.bench_function("trace_collection", |b| {
        b.iter(|| collect_session(&rr.program, &rr.recording.pinball, SlicerOptions::default()).0)
    });

    let (session, _) =
        collect_session(&rr.program, &rr.recording.pinball, SlicerOptions::default());
    let criterion = last_read_criteria(&session, 1)[0];
    for (label, f) in [
        ("lp", compute_slice_lp as fn(_, _, _, _) -> _),
        ("naive", compute_slice_naive as fn(_, _, _, _) -> _),
    ] {
        group.bench_function(BenchmarkId::new("traversal", label), |b| {
            b.iter(|| {
                f(
                    session.trace(),
                    criterion,
                    session.pairs(),
                    SliceOptions::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slicing);
criterion_main!(benches);
