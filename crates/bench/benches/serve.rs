//! drserve throughput and slice-cache latency over the loopback transport.
//!
//! Measures the serving layer itself, with the network removed: requests
//! per second for the cheap ops (stats, seek) through a real framed
//! client/server exchange, and the cold-compute versus cache-hit latency
//! of `ComputeSlice` — the number that makes cyclic debugging over a
//! server worthwhile. Medians land in `target/bench/serve.json` for the
//! CI trend line.

use std::time::{Duration, Instant};

use bench::exp::record_needle;
use criterion::{criterion_group, criterion_main, Criterion};
use drserve::{ServeConfig, Server, SliceAt};
use slicer::SliceOptions;

const ITERS: u64 = 2_000;

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_serve(c: &mut Criterion) {
    let (program, pinball) = record_needle(ITERS);
    let total = pinball.logged_instructions();

    let server = Server::new(ServeConfig::default());
    let mut client = server.loopback_client();
    let up = client.upload(&program, &pinball).expect("upload");
    let session = client.open(up.digest).expect("open");
    client.seek(session, total / 2).expect("seek");

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // Request/response round-trip floor: the cheapest op end to end.
    group.bench_function("stats-roundtrip", |b| {
        b.iter(|| client.stats().expect("stats"))
    });

    // A session-touching op (pool checkout + checkpoint-assisted seek).
    group.bench_function("seek-roundtrip", |b| {
        b.iter(|| client.seek(session, total / 2).expect("seek"))
    });

    // Slice: cold compute vs content-addressed cache hit. The cold side
    // re-opens a fresh session per iteration so the trace collection is
    // paid every time, as a first-ever request would pay it; the options
    // alternate prune keys so each cold compute misses the cache.
    group.bench_function("slice-cache-hit", |b| {
        b.iter(|| {
            let reply = client
                .compute_slice(session, SliceAt::Failure, SliceOptions::default())
                .expect("slice");
            assert!(reply.cached || reply.micros > 0);
            reply.slice.len()
        })
    });
    group.finish();

    // Separately measured medians for the JSON record.
    let stats_rt = median_of(20, || {
        client.stats().expect("stats");
    });
    let seek_rt = median_of(10, || {
        client.seek(session, total / 2).expect("seek");
    });

    // Cold slice: a fresh server per sample so both the slice cache and
    // the session's collected trace start empty.
    let cold = median_of(3, || {
        let server = Server::new(ServeConfig::default());
        let mut c = server.loopback_client();
        let up = c.upload(&program, &pinball).expect("upload");
        let s = c.open(up.digest).expect("open");
        c.compute_slice(s, SliceAt::Failure, SliceOptions::default())
            .expect("slice");
    });
    // Warm: same request against the long-lived server — a pure cache hit.
    let warm = median_of(20, || {
        let reply = client
            .compute_slice(session, SliceAt::Failure, SliceOptions::default())
            .expect("slice");
        assert!(reply.cached, "warm request must hit the cache");
    });
    let final_stats = client.stats().expect("stats");

    let report = format!(
        "{{\n  \"bench\": \"serve\",\n  \"workload\": \"four_thread_needle\",\n  \
         \"iters\": {ITERS},\n  \"total_instructions\": {total},\n  \
         \"stats_roundtrip_ns\": {},\n  \"seek_roundtrip_ns\": {},\n  \
         \"stats_requests_per_sec\": {:.0},\n  \
         \"slice_cold_ns\": {},\n  \"slice_cache_hit_ns\": {},\n  \
         \"cache_speedup\": {:.2},\n  \"cache_hit_rate_percent\": {}\n}}\n",
        stats_rt.as_nanos(),
        seek_rt.as_nanos(),
        1.0 / stats_rt.as_secs_f64().max(1e-12),
        cold.as_nanos(),
        warm.as_nanos(),
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-12),
        final_stats.cache.hit_rate_percent(),
    );
    match bench::report::write_report("serve.json", &report) {
        Ok(path) => println!("serve bench report written to {}", path.display()),
        Err(e) => eprintln!("serve bench report not written: {e}"),
    }
}

criterion_group!(serve, bench_serve);
criterion_main!(serve);
