//! Criterion bench for the compression substrate: pinball-shaped payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bench::exp::record_parsec_region;
use workloads::all_parsec;

fn bench_pinzip(c: &mut Criterion) {
    let mut group = c.benchmark_group("pinzip");
    group.sample_size(10);
    let p = &all_parsec()[0];
    let rr = record_parsec_region(p, 500, 20_000);
    let json = serde_json::to_vec(&rr.recording.pinball).expect("serializes");
    group.throughput(Throughput::Bytes(json.len() as u64));
    group.bench_function(BenchmarkId::new("compress", json.len()), |b| {
        b.iter(|| pinzip::compress(&json))
    });
    let compressed = pinzip::compress(&json);
    group.bench_function(BenchmarkId::new("decompress", compressed.len()), |b| {
        b.iter(|| pinzip::decompress(&compressed).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, bench_pinzip);
criterion_main!(benches);
