//! Criterion bench for Fig. 13: slicing with and without save/restore
//! pruning (the ablation of the §5.2 design choice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minivm::{LiveEnv, RoundRobin};
use pinplay::record_whole_program;
use slicer::{SliceOptions, SlicerOptions};

use bench::exp::{collect_session, last_read_criteria};
use workloads::all_specomp;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_pruning");
    group.sample_size(10);
    for p in all_specomp() {
        let program = (p.build)(200);
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(17),
            &mut LiveEnv::new(42),
            5_000_000,
            p.name,
        )
        .expect("records");
        let (session, _) = collect_session(&program, &rec.pinball, SlicerOptions::default());
        let criterion = last_read_criteria(&session, 1)[0];
        for (label, prune) in [("pruned", true), ("unpruned", false)] {
            group.bench_with_input(BenchmarkId::new(p.name, label), &prune, |b, &prune| {
                b.iter(|| {
                    session.slice_with(
                        criterion,
                        SliceOptions {
                            prune_save_restore: prune,
                            ..SliceOptions::new()
                        },
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
