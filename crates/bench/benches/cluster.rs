//! Fleet latency: cache-peer forwarding, local peer-cache repeats, and
//! the digest-aware one-hop path, against cold local recompute.
//!
//! Boots a real 3-node TCP fleet on loopback, uploads one hot pinball to
//! its ring owner, warms the owner's caches, and measures the paths a
//! fleet answer can take: a non-owner forwarding to the owner's warm
//! cache (first ask), the non-owner's own peer cache (repeat ask), and a
//! digest-aware [`FleetClient`] asking the owner directly (zero forward
//! hops). Medians land in `target/bench/cluster.json` for the CI trend
//! line; the hard gate lives in `tests/cluster_speedup.rs`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::exp::record_needle;
use criterion::{criterion_group, criterion_main, Criterion as Bencher};
use drdebug::DebugSession;
use drserve::{connect, FleetClient, ServeConfig, Server, ServerHandle, SliceAt};
use slicer::{Criterion, RecordId, SliceOptions};

const ITERS: u64 = 2_000;

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Node {
    server: Server,
    handle: ServerHandle,
}

impl Node {
    fn addr(&self) -> String {
        self.handle.addr().to_string()
    }
}

fn fleet() -> Vec<Node> {
    let base = ServeConfig {
        shards: 2,
        max_sessions: 16,
        gossip_interval: Duration::from_millis(50),
        peer_fail_after: Duration::from_millis(600),
        ..ServeConfig::default()
    };
    let first = Server::new(ServeConfig {
        cluster: true,
        ..base.clone()
    });
    let handle = first.listen("127.0.0.1:0").expect("bind node 0");
    let seed = handle.addr().to_string();
    let mut nodes = vec![Node {
        server: first,
        handle,
    }];
    for i in 1..3 {
        let server = Server::new(ServeConfig {
            peers: vec![seed.clone()],
            ..base.clone()
        });
        let handle = server
            .listen("127.0.0.1:0")
            .unwrap_or_else(|e| panic!("bind node {i}: {e}"));
        nodes.push(Node { server, handle });
    }
    let deadline = Instant::now() + Duration::from_secs(15);
    for (i, node) in nodes.iter().enumerate() {
        while node.server.stats().cluster.nodes_alive < 3 {
            assert!(
                Instant::now() < deadline,
                "node {i}: fleet failed to converge"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    nodes
}

fn at(id: RecordId) -> SliceAt {
    SliceAt::Criterion {
        criterion: Criterion::Record { id },
    }
}

fn bench_cluster(c: &mut Bencher) {
    let (program, pinball) = record_needle(ITERS);
    let hot_id = {
        let mut local = DebugSession::new(Arc::clone(&program), pinball.clone());
        local.slicer().failure_record().expect("trace non-empty").id
    };

    // Cold: a fresh single node computes the hot slice from scratch.
    let cold = median_of(3, || {
        let server = Server::new(ServeConfig::default());
        let mut client = server.loopback_client();
        let up = client.upload(&program, &pinball).expect("upload");
        let session = client.open(up.digest).expect("open");
        client
            .compute_slice(session, at(hot_id), SliceOptions::default())
            .expect("slice");
    });

    let nodes = fleet();
    let mut fc = FleetClient::connect(&nodes[0].addr()).expect("fleet connect");
    let up = fc.upload(&program, &pinball).expect("upload");
    let owner_addr = fc.owner_of(up.digest);
    let owner_ix = nodes
        .iter()
        .position(|n| n.addr() == owner_addr)
        .expect("owner in fleet");
    let non_owners: Vec<usize> = (0..nodes.len()).filter(|&i| i != owner_ix).collect();

    // Warm the owner (this is the fleet's one and only index build).
    let warm_session = fc.open(up.digest).expect("open at owner");
    fc.compute_slice(&warm_session, at(hot_id), SliceOptions::default())
        .expect("warm owner");

    // Forward: first ask at each non-owner hits the owner's warm cache
    // over the wire. One sample per node — the answer caches locally —
    // so record the slower of the two.
    let mut forward = Duration::ZERO;
    let mut repeat_client = None;
    for &ix in &non_owners {
        let mut client = connect(nodes[ix].addr()).expect("connect non-owner");
        let session = client.open(up.digest).expect("open");
        let started = Instant::now();
        client
            .compute_slice(session, at(hot_id), SliceOptions::default())
            .expect("forwarded slice");
        forward = forward.max(started.elapsed());
        repeat_client = Some((client, session));
    }
    let (mut bc, bs) = repeat_client.expect("at least one non-owner");

    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);

    // Repeat ask at a non-owner: answered from its local peer cache.
    group.bench_function("peer-cache-repeat", |b| {
        b.iter(|| {
            let reply = bc
                .compute_slice(bs, at(hot_id), SliceOptions::default())
                .expect("repeat");
            assert!(reply.cached);
            reply.slice.len()
        })
    });

    // Digest-aware client: straight to the owner, zero forward hops.
    group.bench_function("one-hop-owner-hit", |b| {
        b.iter(|| {
            let reply = fc
                .compute_slice(&warm_session, at(hot_id), SliceOptions::default())
                .expect("owner hit");
            assert!(reply.cached);
            reply.slice.len()
        })
    });
    group.finish();

    let peer_cache = median_of(20, || {
        bc.compute_slice(bs, at(hot_id), SliceOptions::default())
            .expect("repeat");
    });
    let one_hop = median_of(20, || {
        fc.compute_slice(&warm_session, at(hot_id), SliceOptions::default())
            .expect("owner hit");
    });
    fc.close(&warm_session).expect("close");

    let builds: u64 = nodes
        .iter()
        .map(|n| n.server.stats().index_cache.misses)
        .sum();
    let forwards: u64 = nodes
        .iter()
        .map(|n| n.server.stats().cluster.forwards)
        .sum();

    let report = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"workload\": \"four_thread_needle\",\n  \
         \"iters\": {ITERS},\n  \"nodes\": 3,\n  \
         \"slice_cold_local_ns\": {},\n  \"forward_warm_ns\": {},\n  \
         \"peer_cache_hit_ns\": {},\n  \"one_hop_owner_hit_ns\": {},\n  \
         \"forward_speedup\": {:.2},\n  \"fleet_index_builds\": {builds},\n  \
         \"fleet_forwards\": {forwards}\n}}\n",
        cold.as_nanos(),
        forward.as_nanos(),
        peer_cache.as_nanos(),
        one_hop.as_nanos(),
        cold.as_secs_f64() / forward.as_secs_f64().max(1e-12),
    );
    match bench::report::write_report("cluster.json", &report) {
        Ok(path) => println!("cluster bench report written to {}", path.display()),
        Err(e) => eprintln!("cluster bench report not written: {e}"),
    }
}

criterion_group!(cluster, bench_cluster);
criterion_main!(cluster);
