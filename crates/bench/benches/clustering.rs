//! Ablation bench: thread-clustering in the global trace (paper §3's LP
//! locality trick) on vs off — collection cost and slicing cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slicer::{SliceSession, SlicerOptions};

use bench::exp::{collect_session, last_read_criteria, record_parsec_region};
use workloads::all_parsec;

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_ablation");
    group.sample_size(10);
    // fluidanimate: fine-grained cross-thread sharing, where clustering
    // has the most order constraints to work around.
    let p = &all_parsec()[3];
    let rr = record_parsec_region(p, 500, 20_000);
    for (label, cluster) in [("clustered", true), ("unclustered", false)] {
        let options = SlicerOptions {
            cluster,
            block_size: 256,
            ..SlicerOptions::default()
        };
        group.bench_function(BenchmarkId::new("collect", label), |b| {
            b.iter(|| SliceSession::collect(rr.program.clone(), &rr.recording.pinball, options))
        });
        let (session, _) = collect_session(&rr.program, &rr.recording.pinball, options);
        let criterion = last_read_criteria(&session, 1)[0];
        group.bench_function(BenchmarkId::new("slice", label), |b| {
            b.iter(|| session.slice(criterion))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
