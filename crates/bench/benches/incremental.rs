//! Incremental slicing: how the one-time dependence index pays off as a
//! cyclic-debugging session asks more questions of the same pinball.
//!
//! For 1, 4, and 16 criteria against one recorded [`four_thread_churn`]
//! trace, measures three regimes:
//!
//! * **cold** — no index: every criterion runs the sparse traversal,
//!   re-chasing the save/restore bypass chain each time;
//! * **first session** — [`DepIndex::build`] once, then answer every
//!   criterion from it (what the first `slice` command in a debug
//!   session pays);
//! * **warm** — the index is already resident (every later `slice`
//!   command, and every drserve request after the first on a digest).
//!
//! The build cost amortizes across criteria; warm queries are
//! output-sensitive. Medians land in `target/bench/incremental.json`
//! for the CI trend line.
//!
//! [`four_thread_churn`]: bench::exp::four_thread_churn

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use bench::exp::{churn_session, last_read_criteria};
use criterion::{criterion_group, criterion_main, Criterion as Bencher};
use slicer::{compute_slice_indexed, compute_slice_sparse, DepIndex, SliceOptions, SlicerOptions};

const ITERS: u64 = 2_000;
const CRITERIA_COUNTS: [usize; 3] = [1, 4, 16];

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_incremental(c: &mut Bencher) {
    let (session, deep) = churn_session(ITERS, SlicerOptions::default());
    let trace = session.trace();
    let pairs = session.pairs();
    let opts = SliceOptions::default();

    // The deep-chain criterion first, then the paper's "last reads"
    // recipe for the rest — distinct questions about one execution, as a
    // debugging session asks them.
    let mut criteria = vec![deep];
    criteria.extend(last_read_criteria(&session, CRITERIA_COUNTS[2] - 1));
    assert!(criteria.len() >= CRITERIA_COUNTS[2], "enough criteria");

    let index = DepIndex::build(trace, pairs, &opts);

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.bench_function("cold-sparse-per-criterion", |b| {
        b.iter(|| {
            compute_slice_sparse(trace, deep, pairs, opts.clone())
                .records
                .len()
        })
    });
    group.bench_function("warm-indexed-per-criterion", |b| {
        b.iter(|| compute_slice_indexed(&index, deep).records.len())
    });
    group.finish();

    // Medians for the JSON record, per criteria count.
    let build = median_of(3, || {
        let idx = DepIndex::build(trace, pairs, &opts);
        assert!(idx.stats().edges > 0);
    });
    let mut rows = String::new();
    for (i, &count) in CRITERIA_COUNTS.iter().enumerate() {
        let batch = &criteria[..count];
        let cold = median_of(3, || {
            for &crit in batch {
                compute_slice_sparse(trace, crit, pairs, opts.clone());
            }
        });
        let warm = median_of(10, || {
            for &crit in batch {
                compute_slice_indexed(&index, crit);
            }
        });
        let first = build + warm;
        writeln!(
            rows,
            "    {{\"criteria\": {count}, \"cold_ns\": {}, \"first_session_ns\": {}, \
             \"warm_ns\": {}, \"warm_speedup\": {:.2}}}{}",
            cold.as_nanos(),
            first.as_nanos(),
            warm.as_nanos(),
            cold.as_secs_f64() / warm.as_secs_f64().max(1e-12),
            if i + 1 < CRITERIA_COUNTS.len() {
                ","
            } else {
                ""
            },
        )
        .expect("write to string");
    }
    let report = format!(
        "{{\n  \"bench\": \"incremental\",\n  \"workload\": \"four_thread_churn\",\n  \
         \"iters\": {ITERS},\n  \"records\": {},\n  \"index_build_ns\": {},\n  \
         \"index_edges\": {},\n  \"rows\": [\n{rows}  ]\n}}\n",
        trace.records().len(),
        build.as_nanos(),
        index.stats().edges,
    );
    match bench::report::write_report("incremental.json", &report) {
        Ok(path) => println!("incremental bench report written to {}", path.display()),
        Err(e) => eprintln!("incremental bench report not written: {e}"),
    }
}

criterion_group!(incremental, bench_incremental);
criterion_main!(incremental);
