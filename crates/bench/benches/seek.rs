//! Cold full-replay vs embedded-checkpoint seek on the pinball container.
//!
//! The paper's cyclic-debugging loop repeatedly re-executes the region
//! from its entry; the pinball container instead embeds serialized
//! replayer checkpoints every `checkpoint_interval` retired
//! instructions, so `Replayer::seek_to` restores the nearest preceding
//! checkpoint and replays only the tail chunk — O(chunk) rather than
//! O(region). This bench quantifies that on a ~100k-record
//! [`four_thread_needle`](bench::exp::four_thread_needle) trace at
//! 25/50/75% depth, and records the medians in
//! `target/bench/seek.json` for the CI trend line.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::exp::record_needle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minivm::NullTool;
use pinplay::{PinballContainer, Replayer, DEFAULT_CHECKPOINT_INTERVAL};

const ITERS: u64 = 4_200;

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_seek(c: &mut Criterion) {
    let (program, pinball) = record_needle(ITERS);
    let total = pinball.logged_instructions();
    let container =
        PinballContainer::with_checkpoints(pinball, &program, DEFAULT_CHECKPOINT_INTERVAL);

    let mut group = c.benchmark_group("seek");
    group.sample_size(10);
    let mut points = Vec::new();
    for pct in [25u64, 50, 75] {
        let target = total * pct / 100;
        group.bench_with_input(
            BenchmarkId::new("cold-full-replay", pct),
            &target,
            |b, &t| {
                b.iter(|| {
                    let mut r = Replayer::new(Arc::clone(&program), &container.pinball);
                    r.run_steps(t, &mut NullTool);
                    r.replayed_instructions()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("checkpoint-seek", pct),
            &target,
            |b, &t| {
                b.iter(|| {
                    let mut r = Replayer::new(Arc::clone(&program), &container.pinball);
                    r.seek_to(&container, t);
                    r.replayed_instructions()
                })
            },
        );

        // Separately measured medians for the JSON record (the vendored
        // criterion prints but does not persist timings).
        let full = median_of(5, || {
            let mut r = Replayer::new(Arc::clone(&program), &container.pinball);
            r.run_steps(target, &mut NullTool);
        });
        let seek = median_of(5, || {
            let mut r = Replayer::new(Arc::clone(&program), &container.pinball);
            r.seek_to(&container, target);
        });
        points.push(format!(
            "{{\"percent\": {pct}, \"target_instructions\": {target}, \
             \"full_replay_ns\": {}, \"checkpoint_seek_ns\": {}, \"speedup\": {:.2}}}",
            full.as_nanos(),
            seek.as_nanos(),
            full.as_secs_f64() / seek.as_secs_f64().max(1e-12),
        ));
    }
    group.finish();

    let report = format!(
        "{{\n  \"bench\": \"seek\",\n  \"workload\": \"four_thread_needle\",\n  \
         \"iters\": {ITERS},\n  \"total_instructions\": {total},\n  \
         \"checkpoint_interval\": {DEFAULT_CHECKPOINT_INTERVAL},\n  \
         \"embedded_checkpoints\": {},\n  \"points\": [\n    {}\n  ]\n}}\n",
        container.checkpoints.len(),
        points.join(",\n    "),
    );
    match bench::report::write_report("seek.json", &report) {
        Ok(path) => println!("seek bench report written to {}", path.display()),
        Err(e) => eprintln!("seek bench report not written: {e}"),
    }
}

criterion_group!(seek, bench_seek);
criterion_main!(seek);
