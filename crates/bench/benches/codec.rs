//! Container codec generations: serialize/deserialize throughput across
//! formats and pipelines.
//!
//! The v3 pinball container swaps the per-chunk JSON payloads for the
//! `pinzip::binser` varint codec and fans chunk encode/decode across a
//! worker pool with ordered reassembly; v4 re-encodes events as varint
//! columns behind a shared LZSS dictionary and loads without
//! materializing an owned event tree. This bench measures the corners —
//! {v2 JSON, v3 binser, v4 columnar} x {save, load} — plus the serial v4
//! reference (same bytes, no pool), the zero-copy
//! [`ContainerView`] load, and the paged `open_mapped` load, on a
//! quantum-1 [`four_thread_needle`](bench::exp::four_thread_needle)
//! recording where the event log dominates. Medians land in
//! `target/bench/codec.json` for the CI trend line.

use std::time::{Duration, Instant};

use bench::exp::{four_thread_needle, ENV_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use minivm::{LiveEnv, RoundRobin};
use pinplay::{record_whole_program, ContainerView, PinballContainer, DEFAULT_CHECKPOINT_INTERVAL};

const ITERS: u64 = 2_000;

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_codec(c: &mut Criterion) {
    let program = four_thread_needle(ITERS);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(1),
        &mut LiveEnv::new(ENV_SEED),
        ITERS * 60 + 200_000,
        "codec-bench",
    )
    .expect("codec workload records");
    let events = rec.pinball.events.len();
    let container =
        PinballContainer::with_checkpoints(rec.pinball, &program, DEFAULT_CHECKPOINT_INTERVAL);
    let v2 = container.to_bytes_v2().expect("v2 encodes");
    let v3 = container.to_bytes_v3().expect("v3 encodes");
    let v4 = container.to_bytes().expect("v4 encodes");
    let mapped_path =
        std::env::temp_dir().join(format!("pinplay-codec-bench-{}.drpb", std::process::id()));
    std::fs::write(&mapped_path, &v4).expect("writes mapped bench file");

    let mut group = c.benchmark_group("codec");
    group.sample_size(10);
    group.bench_function("save/v2-json", |b| {
        b.iter(|| container.to_bytes_v2().expect("v2 encodes").len())
    });
    group.bench_function("save/v3-binser", |b| {
        b.iter(|| container.to_bytes_v3().expect("v3 encodes").len())
    });
    group.bench_function("save/v4-columnar-serial", |b| {
        b.iter(|| container.to_bytes_serial().expect("v4 encodes").len())
    });
    group.bench_function("save/v4-columnar-parallel", |b| {
        b.iter(|| container.to_bytes().expect("v4 encodes").len())
    });
    group.bench_function("load/v2-json", |b| {
        b.iter(|| {
            PinballContainer::from_bytes(&v2)
                .expect("v2 loads")
                .pinball
                .events
                .len()
        })
    });
    group.bench_function("load/v3-binser", |b| {
        b.iter(|| {
            PinballContainer::from_bytes(&v3)
                .expect("v3 loads")
                .pinball
                .events
                .len()
        })
    });
    group.bench_function("load/v4-owned", |b| {
        b.iter(|| {
            PinballContainer::from_bytes(&v4)
                .expect("v4 loads")
                .pinball
                .events
                .len()
        })
    });
    group.bench_function("load/v4-view", |b| {
        b.iter(|| {
            ContainerView::from_bytes(&v4)
                .expect("v4 view loads")
                .num_events()
        })
    });
    group.bench_function("load/v4-mapped-open", |b| {
        b.iter(|| {
            PinballContainer::open_mapped(&mapped_path)
                .expect("v4 maps")
                .num_events()
        })
    });
    group.finish();

    // Separately measured medians for the JSON record (the vendored
    // criterion prints but does not persist timings).
    let save_v2 = median_of(5, || {
        container.to_bytes_v2().expect("v2 encodes");
    });
    let save_v3 = median_of(5, || {
        container.to_bytes_v3().expect("v3 encodes");
    });
    let save_v4_serial = median_of(5, || {
        container.to_bytes_serial().expect("v4 encodes");
    });
    let save_v4 = median_of(5, || {
        container.to_bytes().expect("v4 encodes");
    });
    let load_v2 = median_of(5, || {
        PinballContainer::from_bytes(&v2).expect("v2 loads");
    });
    let load_v3 = median_of(5, || {
        PinballContainer::from_bytes(&v3).expect("v3 loads");
    });
    let load_v4_owned = median_of(5, || {
        PinballContainer::from_bytes(&v4).expect("v4 loads");
    });
    let load_v4_view = median_of(5, || {
        ContainerView::from_bytes(&v4).expect("v4 view loads");
    });
    let load_v4_mapped = median_of(5, || {
        PinballContainer::open_mapped(&mapped_path).expect("v4 maps");
    });
    std::fs::remove_file(&mapped_path).ok();
    let roundtrip_speedup =
        (save_v2 + load_v2).as_secs_f64() / (save_v3 + load_v3).as_secs_f64().max(1e-12);
    let view_load_speedup = load_v3.as_secs_f64() / load_v4_view.as_secs_f64().max(1e-12);

    let report = format!(
        "{{\n  \"bench\": \"codec\",\n  \"workload\": \"four_thread_needle(quantum=1)\",\n  \
         \"iters\": {ITERS},\n  \"events\": {events},\n  \
         \"v2_bytes\": {},\n  \"v3_bytes\": {},\n  \"v4_bytes\": {},\n  \
         \"save_v2_json_ns\": {},\n  \"save_v3_binser_ns\": {},\n  \
         \"save_v4_columnar_serial_ns\": {},\n  \"save_v4_columnar_parallel_ns\": {},\n  \
         \"load_v2_json_ns\": {},\n  \"load_v3_binser_ns\": {},\n  \
         \"load_v4_owned_ns\": {},\n  \"load_v4_view_ns\": {},\n  \
         \"load_v4_mapped_open_ns\": {},\n  \
         \"roundtrip_speedup\": {:.2},\n  \"view_load_speedup\": {:.2}\n}}\n",
        v2.len(),
        v3.len(),
        v4.len(),
        save_v2.as_nanos(),
        save_v3.as_nanos(),
        save_v4_serial.as_nanos(),
        save_v4.as_nanos(),
        load_v2.as_nanos(),
        load_v3.as_nanos(),
        load_v4_owned.as_nanos(),
        load_v4_view.as_nanos(),
        load_v4_mapped.as_nanos(),
        roundtrip_speedup,
        view_load_speedup,
    );
    match bench::report::write_report("codec.json", &report) {
        Ok(path) => println!("codec bench report written to {}", path.display()),
        Err(e) => eprintln!("codec bench report not written: {e}"),
    }
}

criterion_group!(codec, bench_codec);
criterion_main!(codec);
