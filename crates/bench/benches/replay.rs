//! Criterion bench for Fig. 12: replay time vs region length.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minivm::NullTool;
use pinplay::Replayer;

use bench::exp::record_parsec_region;
use workloads::all_parsec;

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_replay");
    group.sample_size(10);
    for p in all_parsec() {
        for len in [2_000u64, 10_000, 50_000] {
            let rr = record_parsec_region(&p, 500, len);
            group.bench_with_input(BenchmarkId::new(p.name, len), &len, |b, _| {
                b.iter(|| {
                    let mut rep = Replayer::new(Arc::clone(&rr.program), &rr.recording.pinball);
                    rep.run(&mut NullTool)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
