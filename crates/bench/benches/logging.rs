//! Criterion bench for Fig. 11: logging time vs region length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::exp::record_parsec_region;
use workloads::all_parsec;

fn bench_logging(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_logging");
    group.sample_size(10);
    for p in all_parsec() {
        for len in [2_000u64, 10_000, 50_000] {
            group.bench_with_input(BenchmarkId::new(p.name, len), &len, |b, &len| {
                b.iter(|| record_parsec_region(&p, 500, len))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_logging);
criterion_main!(benches);
