//! Saturation throughput of the sharded drserve front end.
//!
//! Drives a fleet of pipelined raw loopback connections sending
//! stats-class requests at the server and compares the sustained
//! throughput to the single-client ping-pong baseline (one shard, one
//! dispatcher, no batching — functionally the pre-sharding server). The
//! ratio is the payoff of dispatcher multiplexing + per-shard batch
//! draining + shared pre-encoded response frames. The same driver backs
//! the CI gate in `tests/saturation_gate.rs`; this bench is the
//! measurement run, writing `saturation.json` to the canonical bench
//! report directory for the trend line.

use bench::serveload::{run_saturation, to_json};

const CONNECTIONS: usize = 32;
const PIPELINE_DEPTH: usize = 8;
const ROUNDS: usize = 50;

fn main() {
    let report = run_saturation(CONNECTIONS, PIPELINE_DEPTH, ROUNDS);
    println!(
        "saturation: baseline {:.0} req/s, fleet {:.0} req/s ({:.1}x), \
         p50 window {} us, p99 window {} us, {} shards, {} shed",
        report.baseline_rps,
        report.fleet_rps,
        report.speedup,
        report.p50.as_micros(),
        report.p99.as_micros(),
        report.stats.shards.len(),
        report.stats.shed,
    );
    match bench::report::write_report("saturation.json", &to_json(&report)) {
        Ok(path) => println!("saturation bench report written to {}", path.display()),
        Err(e) => eprintln!("saturation bench report not written: {e}"),
    }
}
