//! Saturation load driver for the sharded drserve front end.
//!
//! The question this answers: how many *stats-class* requests per second
//! does the server sustain when a fleet of connections keeps it saturated,
//! versus the single-client ping-pong number the `serve` bench reports?
//! The sharded server's whole design — dispatcher multiplexing, per-shard
//! queues, batch draining, shared pre-encoded `Stats` frames — exists for
//! this ratio, so both the `saturation` bench and the CI gate
//! (`tests/saturation_gate.rs`) run the same driver from this module.
//!
//! The fleet is raw on purpose: each connection is a bare
//! [`drserve::LoopbackStream`] speaking pre-encoded frames, with
//! `pipeline_depth` requests in flight per connection. A typed
//! [`drserve::Client`] would serialize one request per round trip and
//! measure the client, not the server.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use drserve::proto::{self, Request, Response, REQUEST_KIND, RESPONSE_KIND};
use drserve::{ServeConfig, ServeStats, Server};

/// What one saturation run measured.
#[derive(Debug, Clone)]
pub struct SaturationReport {
    /// Single-client, unbatched, single-shard round trips per second —
    /// the ping-pong number the `serve` bench also reports.
    pub baseline_rps: f64,
    /// Fleet throughput against the sharded, batching server.
    pub fleet_rps: f64,
    /// `fleet_rps / baseline_rps`.
    pub speedup: f64,
    /// Median window latency: one connection's `pipeline_depth` requests,
    /// write-to-last-reply.
    pub p50: Duration,
    /// 99th-percentile window latency.
    pub p99: Duration,
    /// Requests the fleet completed inside the measured rounds.
    pub total_requests: u64,
    /// Fleet connections driven.
    pub connections: usize,
    /// Requests in flight per connection.
    pub pipeline_depth: usize,
    /// Final stats snapshot of the saturated server (shard breakdown,
    /// batch counts, shed counts).
    pub stats: ServeStats,
}

/// Serving config for the baseline measurement: one shard, one
/// dispatcher, no batching — the pre-sharding server, functionally.
pub fn baseline_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        dispatchers: 1,
        batch_max: 1,
        ..ServeConfig::default()
    }
}

/// Serving config for the saturated fleet: machine-sized shards and
/// dispatchers, full batching, and a queue deep enough that the fleet's
/// entire in-flight volume is admitted (the gate asserts zero shed — the
/// speedup must come from batching, not from refusing work).
pub fn fleet_config(connections: usize, pipeline_depth: usize) -> ServeConfig {
    ServeConfig {
        queue_capacity: (4 * connections * pipeline_depth).max(1024),
        batch_max: 32,
        ..ServeConfig::default()
    }
}

/// Median single-client `Stats` round trip against `server`, as requests
/// per second.
pub fn baseline_stats_rps(server: &Server, samples: usize) -> f64 {
    let mut client = server.loopback_client();
    // Warm the dispatcher and the metrics path before sampling.
    for _ in 0..16 {
        client.stats().expect("baseline stats");
    }
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let started = Instant::now();
            client.stats().expect("baseline stats");
            started.elapsed()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    1.0 / median.as_secs_f64().max(1e-12)
}

/// Drives `connections` pipelined loopback connections against `server`
/// for `rounds` measured rounds (plus one warm-up round) and returns the
/// throughput and latency distribution.
///
/// Each round writes one burst of `pipeline_depth` pre-encoded `Stats`
/// frames per connection — a single `write_all`, so the dispatcher's read
/// loop sees the whole burst at once and the shard drains it as a batch —
/// then reads every reply back, sampling write-to-drained latency per
/// connection window.
pub fn run_fleet(
    server: &Server,
    connections: usize,
    pipeline_depth: usize,
    rounds: usize,
) -> (f64, Duration, Duration, u64) {
    let mut conns: Vec<drserve::LoopbackStream> = (0..connections)
        .map(|_| server.loopback_connect())
        .collect();

    // One request frame, encoded once; one burst = depth frames.
    let mut frame: Vec<u8> = Vec::new();
    proto::write_message(&mut frame, REQUEST_KIND, &Request::Stats).expect("encode stats");
    let burst: Vec<u8> = frame.repeat(pipeline_depth);

    // Warm-up round: populate caches, spin the dispatchers up — and fully
    // decode every reply once, proving the server answers the burst with
    // real `Stats` responses before the measured rounds stop looking.
    let wrote: Vec<Instant> = conns
        .iter_mut()
        .map(|c| {
            c.write_all(&burst).expect("fleet write");
            Instant::now()
        })
        .collect();
    for conn in conns.iter_mut() {
        for _ in 0..pipeline_depth {
            let response: Response =
                proto::read_message(conn, RESPONSE_KIND).expect("fleet response");
            assert!(
                matches!(response, Response::Stats(_)),
                "saturated server must answer every admitted request"
            );
        }
    }
    drop(wrote);

    // Measured rounds count reply *frames* structurally (kind byte and
    // length validated by `frame_extent`) without decoding the payloads:
    // the driver shares the machine with the server, and decoding every
    // `ServeStats` would bill client-side work to server throughput. The
    // gate separately asserts the server's error counter stayed zero.
    let mut scratch = vec![0u8; 64 * 1024];
    let mut leftovers: Vec<Vec<u8>> = (0..connections).map(|_| Vec::new()).collect();
    let mut samples: Vec<Duration> = Vec::with_capacity(rounds * connections);
    let started = Instant::now();
    for _ in 0..rounds {
        let wrote: Vec<Instant> = conns
            .iter_mut()
            .map(|c| {
                c.write_all(&burst).expect("fleet write");
                Instant::now()
            })
            .collect();
        for ((conn, buf), wrote_at) in conns.iter_mut().zip(&mut leftovers).zip(&wrote) {
            let mut got = 0usize;
            let mut at = 0usize;
            while got < pipeline_depth {
                match proto::frame_extent(&buf[at..], RESPONSE_KIND).expect("fleet frame") {
                    Some(total) => {
                        at += total;
                        got += 1;
                    }
                    None => {
                        buf.drain(..at);
                        at = 0;
                        let n = conn.read(&mut scratch).expect("fleet read");
                        assert!(n > 0, "server hung up mid-burst");
                        buf.extend_from_slice(&scratch[..n]);
                    }
                }
            }
            buf.drain(..at);
            samples.push(wrote_at.elapsed());
        }
    }
    let elapsed = started.elapsed();

    let total = (rounds * connections * pipeline_depth) as u64;
    let rps = total as f64 / elapsed.as_secs_f64().max(1e-12);
    samples.sort_unstable();
    let p50 = samples[samples.len() / 2];
    let p99 = samples[(samples.len() * 99) / 100..][0];
    (rps, p50, p99, total)
}

/// The full saturation experiment: baseline server, fleet server, ratio.
pub fn run_saturation(
    connections: usize,
    pipeline_depth: usize,
    rounds: usize,
) -> SaturationReport {
    let baseline_rps = {
        let server = Server::new(baseline_config());
        baseline_stats_rps(&server, 200)
    };
    let server = Server::new(fleet_config(connections, pipeline_depth));
    let (fleet_rps, p50, p99, total_requests) =
        run_fleet(&server, connections, pipeline_depth, rounds);
    let stats = server.stats();
    SaturationReport {
        baseline_rps,
        fleet_rps,
        speedup: fleet_rps / baseline_rps.max(1e-12),
        p50,
        p99,
        total_requests,
        connections,
        pipeline_depth,
        stats,
    }
}

/// Renders a report as the `saturation.json` payload.
pub fn to_json(r: &SaturationReport) -> String {
    format!(
        "{{\n  \"bench\": \"saturation\",\n  \"connections\": {},\n  \
         \"pipeline_depth\": {},\n  \"total_requests\": {},\n  \
         \"baseline_stats_rps\": {:.0},\n  \"fleet_stats_rps\": {:.0},\n  \
         \"saturation_speedup\": {:.2},\n  \"p50_window_us\": {},\n  \
         \"p99_window_us\": {},\n  \"shards\": {},\n  \"batches\": {},\n  \
         \"shed\": {}\n}}\n",
        r.connections,
        r.pipeline_depth,
        r.total_requests,
        r.baseline_rps,
        r.fleet_rps,
        r.speedup,
        r.p50.as_micros(),
        r.p99.as_micros(),
        r.stats.shards.len(),
        r.stats.shards.iter().map(|s| s.batches).sum::<u64>(),
        r.stats.shed,
    )
}
