//! Interactive DrDebug command-line debugger.
//!
//! Exposes one of the built-in buggy workloads with the Maple active
//! scheduler, records the failing run as a pinball, and drops into a
//! gdb-style read–eval–print loop over the deterministic replay:
//!
//! ```text
//! cargo run --release -p bench --bin drdebug_cli -- fig5
//! (drdebug) continue
//! trap reproduced: assertion failed (tid 0, pc 7)
//! (drdebug) slice-failure
//! slice computed: 12 statement instances ...
//! (drdebug) help
//! ```
//!
//! Cases: `pbzip2`, `aget`, `mozilla` (Table 1), `fig5` (the paper's §3
//! example), `fig8` (the §5.2 save/restore example — no bug, breaks at
//! `compute_w` instead).
//!
//! `--save <path>` writes the recorded container to disk; `--pinball
//! <path>` replays a saved container instead of recording. Loading never
//! panics: a missing file exits cleanly, and a damaged container names
//! the broken chunk and salvages the intact prefix when possible.
//!
//! `--emit-test <name>` promotes the recording into a committed golden
//! fixture under `crates/bench/tests/corpus/<name>/` (container bytes +
//! expected failure slice + replay state hash) that the `corpus_golden`
//! integration test re-verifies on every run.
//!
//! `--tail <stream> --addr <host:port>` live-tails a streaming upload
//! another process is writing to a drserve server (see `drserve_cli
//! stream`): it polls the server's `Tail` op, printing chunk/event
//! progress — and, with `--slice-live`, slicing the absorbed prefix
//! mid-upload — then fetches the sealed pinball and drops into the
//! replay debugger. `needle` is accepted as the case name in this mode
//! (the workload `drserve_cli stream` uploads; match its `--iters`).

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use drdebug::{CommandInterpreter, DebugSession, LiveSession, LiveStop};
use drserve::{ClientError, ServeError, SliceAt};
use maple::{expose_iroot, ExposeOptions, IRoot};
use minivm::{LiveEnv, Program, RoundRobin};
use pinplay::{
    record_whole_program, Pinball, PinballContainer, PinballError, DEFAULT_CHECKPOINT_INTERVAL,
};
use slicer::SliceOptions;

fn record_case(name: &str) -> Result<(Arc<Program>, Pinball), String> {
    let bug_case = |case: workloads::BugCase| -> Result<(Arc<Program>, Pinball), String> {
        let exposure = case
            .expose()
            .ok_or_else(|| format!("{}: bug not exposable", case.name))?;
        eprintln!(
            "[drdebug] exposed `{}` via interleaving {}: {}",
            case.name, exposure.iroot, exposure.error
        );
        Ok((case.program, exposure.recording.pinball))
    };
    match name {
        "pbzip2" => bug_case(workloads::pbzip2_like()),
        "aget" => bug_case(workloads::aget_like()),
        "mozilla" => bug_case(workloads::mozilla_like()),
        "fig5" => {
            let program = workloads::fig5_race();
            let iroot: IRoot = workloads::fig5_exposing_iroot(&program);
            let exposure = expose_iroot(&program, iroot, ExposeOptions::default())
                .ok_or("fig5: race not exposable")?;
            eprintln!("[drdebug] exposed the fig5 race: {}", exposure.error);
            Ok((program, exposure.recording.pinball))
        }
        "fig8" => {
            let program = workloads::fig8_save_restore();
            let rec = record_whole_program(
                &program,
                &mut RoundRobin::new(8),
                &mut LiveEnv::with_inputs(0, [1]),
                100_000,
                "fig8",
            )
            .map_err(|e| e.to_string())?;
            Ok((program, rec.pinball))
        }
        other => Err(format!(
            "unknown case `{other}`; expected pbzip2|aget|mozilla|fig5|fig8"
        )),
    }
}

/// The case's program without recording anything — for replaying a
/// pinball loaded from disk.
fn case_program(name: &str) -> Result<Arc<Program>, String> {
    match name {
        "pbzip2" => Ok(workloads::pbzip2_like().program),
        "aget" => Ok(workloads::aget_like().program),
        "mozilla" => Ok(workloads::mozilla_like().program),
        "fig5" => Ok(workloads::fig5_race()),
        "fig8" => Ok(workloads::fig8_save_restore()),
        other => Err(format!(
            "unknown case `{other}`; expected pbzip2|aget|mozilla|fig5|fig8"
        )),
    }
}

/// Loads a pinball container from disk without ever panicking: a missing
/// file or unrecognizable blob is a clean error, and chunk-level damage
/// is reported by chunk through the typed lossy decoder, salvaging the
/// intact prefix when there is one.
fn load_container(path: &str) -> Result<PinballContainer, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read pinball `{path}`: {e}"))?;
    match PinballContainer::from_bytes(&bytes) {
        Ok(container) => Ok(container),
        Err(first) => {
            let lossy = PinballContainer::from_bytes_lossy(&bytes)
                .map_err(|e| format!("pinball `{path}` is unreadable: {e}"))?;
            match &lossy.damage {
                Some(PinballError::Chunk {
                    chunk,
                    kind,
                    reason,
                }) => eprintln!(
                    "[drdebug] pinball `{path}`: chunk {chunk} ({kind}) is damaged: {reason}"
                ),
                Some(other) => eprintln!("[drdebug] pinball `{path}` is damaged: {other}"),
                None => eprintln!("[drdebug] pinball `{path}` failed to load: {first}"),
            }
            if lossy.events_recovered == 0 {
                return Err(format!(
                    "pinball `{path}`: nothing salvageable ({} events lost)",
                    lossy.events_expected
                ));
            }
            eprintln!(
                "[drdebug] continuing with the salvaged prefix: {}/{} events intact",
                lossy.events_recovered, lossy.events_expected
            );
            Ok(lossy.container)
        }
    }
}

/// Live-tails a stream another process is uploading to a drserve server:
/// polls `Tail` until the stream seals — optionally slicing the absorbed
/// prefix on each poll — then fetches the published pinball for replay.
fn tail_mode(
    program: Arc<Program>,
    stream: u64,
    addr: &str,
    poll_ms: u64,
    slice_live: bool,
) -> Result<(Arc<Program>, PinballContainer), String> {
    let mut client =
        drserve::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut last = (u32::MAX, u64::MAX);
    let digest = loop {
        match client.tail(stream) {
            Ok(t) => {
                if (t.chunks, t.events) != last {
                    last = (t.chunks, t.events);
                    let expected = if t.expected_events == 0 {
                        "?".to_string()
                    } else {
                        t.expected_events.to_string()
                    };
                    eprintln!(
                        "[tail] stream {stream}: {} chunks, {}/{expected} events, \
                         {} instructions{}",
                        t.chunks,
                        t.events,
                        t.instructions,
                        if t.sealed { ", sealed" } else { "" },
                    );
                    if slice_live && t.events > 0 && !t.sealed {
                        // Slices of the absorbed prefix are served from an
                        // incrementally-maintained index while the upload
                        // is still in flight.
                        match client.slice_stream(stream, SliceAt::Failure, SliceOptions::default())
                        {
                            Ok(reply) => eprintln!(
                                "[tail] live slice of the absorbed prefix: {} records ({} us)",
                                reply.slice.len(),
                                reply.micros
                            ),
                            Err(e) => eprintln!("[tail] live slice unavailable: {e}"),
                        }
                    }
                }
                if t.sealed {
                    break t.digest.ok_or("sealed stream reported no digest")?;
                }
            }
            Err(ClientError::Server(ServeError::UnknownStream { .. })) => {
                eprintln!("[tail] stream {stream} not started yet; waiting");
            }
            Err(e) => return Err(format!("tail: {e}")),
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
    };
    eprintln!("[tail] stream sealed as {digest}; fetching for replay");
    let bytes = client.fetch(digest).map_err(|e| format!("fetch: {e}"))?;
    let container = PinballContainer::from_bytes(&bytes)
        .map_err(|e| format!("fetched container does not parse: {e}"))?;
    Ok((program, container))
}

/// `drdebug_cli migrate --to v4 <in> <out>`: upgrade a container on disk
/// to the requested generation in place of debugging. The digest is
/// format-independent, so the upgraded file stays content-addressed to
/// the same recording; the CLI prints both sizes and the digest so the
/// caller can verify nothing drifted.
fn migrate_mode(args: &[String]) -> Result<(), String> {
    let to = flag_value(args, "--to").unwrap_or("v4");
    let mut paths = args
        .iter()
        .skip(1) // the `migrate` word itself
        .filter(|a| !a.starts_with("--"))
        .skip_while(|a| flag_value(args, "--to") == Some(a.as_str()));
    let (input, output) = match (paths.next(), paths.next()) {
        (Some(i), Some(o)) => (i.as_str(), o.as_str()),
        _ => return Err("usage: drdebug_cli migrate --to v4 <in> <out>".to_string()),
    };
    let bytes = std::fs::read(input).map_err(|e| format!("cannot read pinball `{input}`: {e}"))?;
    let from = pinplay::detect_version(&bytes);
    let upgraded = match to {
        "v4" => pinplay::migrate(&bytes).map_err(|e| format!("cannot migrate `{input}`: {e}"))?,
        "v3" => PinballContainer::from_bytes(&bytes)
            .and_then(|c| c.to_bytes_v3())
            .map_err(|e| format!("cannot migrate `{input}`: {e}"))?,
        other => return Err(format!("unknown target `{other}`; expected v3|v4")),
    };
    let container = PinballContainer::from_bytes(&upgraded)
        .map_err(|e| format!("migrated container does not parse: {e}"))?;
    std::fs::write(output, &upgraded)
        .map_err(|e| format!("cannot write pinball `{output}`: {e}"))?;
    eprintln!(
        "[drdebug] migrated `{input}` ({from:?}, {} bytes) -> `{output}` ({to}, {} bytes), \
         digest {}",
        bytes.len(),
        upgraded.len(),
        container.digest()
    );
    Ok(())
}

/// The value following `flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .zip(args.iter().skip(1))
        .find(|(f, _)| f.as_str() == flag)
        .map(|(_, v)| v.as_str())
}

/// Live-capture mode: run the case's program live with record on/off
/// commands; on `record off` (or a trap) drop into the replay debugger.
fn live_mode(program: Arc<Program>) -> Option<(Arc<Program>, Pinball)> {
    let mut live = LiveSession::new(
        Arc::clone(&program),
        RoundRobin::new(8),
        LiveEnv::new(0),
        "live",
    );
    eprintln!(
        "[drdebug --live] commands: break <pc> | delete <pc> | continue | record on | record off | state | quit"
    );
    let stdin = io::stdin();
    loop {
        print!("(live) ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => return None,
            Ok(_) => {}
        }
        let line = line.trim();
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("break"), Some(pc)) => {
                if let Ok(pc) = pc.parse() {
                    live.add_breakpoint(pc);
                    println!("live breakpoint at pc {pc}");
                } else {
                    println!("bad pc");
                }
            }
            (Some("delete"), Some(pc)) => {
                if let Ok(pc) = pc.parse::<u32>() {
                    println!("removed: {}", live.remove_breakpoint(pc));
                }
            }
            (Some("continue"), _) | (Some("c"), _) => {
                let stop = live.cont(10_000_000);
                println!("stopped: {stop:?}");
                if matches!(stop, LiveStop::Trapped(_)) {
                    if let Some(pb) = live.captured().cloned() {
                        println!("trap while recording: pinball finalised; switching to replay");
                        return Some((program, pb));
                    }
                }
            }
            (Some("record"), Some("on")) => {
                println!("recording: {}", live.record_on());
            }
            (Some("record"), Some("off")) => match live.record_off() {
                Some(pb) => {
                    println!(
                        "captured {} instructions; switching to replay debugger",
                        pb.logged_instructions()
                    );
                    return Some((program, pb));
                }
                None => println!("not recording"),
            },
            (Some("state"), _) => {
                for t in 0..live.exec().num_threads() as u32 {
                    let th = live.exec().thread(t);
                    println!("t{t}: pc={} runnable={}", th.pc, th.is_runnable());
                }
            }
            (Some("quit"), _) | (Some("exit"), _) => return None,
            (Some(other), _) => println!("unknown live command `{other}`"),
            (None, _) => {}
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(case) = args.first() else {
        eprintln!(
            "usage: drdebug_cli <pbzip2|aget|mozilla|fig5|fig8> [--live] [--ckpt <n>] \
             [--pinball <path>] [--save <path>] [--emit-test <name>] [--cmd '<command>']...\n\
             \x20      drdebug_cli <case|needle> --tail <stream> [--addr <host:port>] \
             [--poll-ms <n>] [--slice-live] [--iters <n>]\n\
             \x20      drdebug_cli migrate --to v4 <in> <out>"
        );
        std::process::exit(2);
    };
    if case == "migrate" {
        if let Err(e) = migrate_mode(&args) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let (program, container) = if let Some(stream) = flag_value(&args, "--tail") {
        // Live-tail a stream another process is uploading, then debug it.
        let Ok(stream) = stream.parse::<u64>() else {
            eprintln!("error: --tail takes a numeric stream id");
            std::process::exit(2);
        };
        let addr = flag_value(&args, "--addr").unwrap_or("127.0.0.1:7070");
        let poll_ms = flag_value(&args, "--poll-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        let program = if case == "needle" {
            // The workload `drserve_cli stream` uploads; the program is
            // parameterized by the writer's --iters.
            let iters = flag_value(&args, "--iters")
                .and_then(|v| v.parse().ok())
                .unwrap_or(400);
            bench::exp::four_thread_needle(iters)
        } else {
            match case_program(case) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        };
        let slice_live = args.iter().any(|a| a == "--slice-live");
        match tail_mode(program, stream, addr, poll_ms, slice_live) {
            Ok(pc) => pc,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else if let Some(path) = flag_value(&args, "--pinball") {
        // Replay a previously saved container: no recording. Missing and
        // damaged files exit cleanly with the damage named by chunk.
        let program = match case_program(case) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        match load_container(path) {
            Ok(container) => (program, container),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let (program, pinball) = if args.iter().any(|a| a == "--live") {
            // Live mode uses the case's program but captures interactively.
            let program = match record_case(case) {
                Ok((p, _)) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            match live_mode(program) {
                Some(captured) => captured,
                None => return,
            }
        } else {
            match record_case(case) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        };
        eprintln!(
            "[drdebug] pinball: {} instructions, {} bytes compressed",
            pinball.logged_instructions(),
            pinball.size_bytes().expect("pinball serializes")
        );
        // Embed checkpoints every `--ckpt N` retired instructions (default
        // DEFAULT_CHECKPOINT_INTERVAL) so `seek` restores in O(chunk).
        let interval = flag_value(&args, "--ckpt")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_CHECKPOINT_INTERVAL);
        let container = PinballContainer::with_checkpoints(pinball, &program, interval);
        eprintln!(
            "[drdebug] container: {} embedded checkpoints (interval {interval})",
            container.checkpoints.len()
        );
        (program, container)
    };
    if let Some(path) = flag_value(&args, "--save") {
        match container.save(std::path::Path::new(path)) {
            Ok(()) => eprintln!("[drdebug] container saved to `{path}`"),
            Err(e) => {
                eprintln!("error: cannot save pinball to `{path}`: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(name) = flag_value(&args, "--emit-test") {
        // Promote the recording into a committed golden fixture that the
        // corpus_golden test re-verifies: container bytes, expected
        // failure slice, and the replayer's end-of-log state digest.
        if bench::corpus::corpus_program(case).is_none() {
            eprintln!(
                "error: `{case}` recordings cannot be re-verified offline; \
                 corpus cases: pbzip2|aget|mozilla|fig5|fig8"
            );
            std::process::exit(1);
        }
        match bench::corpus::emit_fixture(name, case, &program, &container) {
            Ok(dir) => {
                eprintln!("[drdebug] golden fixture written to `{}`", dir.display());
                return;
            }
            Err(e) => {
                eprintln!("error: cannot emit fixture `{name}`: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "[drdebug] replaying {} instructions (digest {})",
        container.pinball.logged_instructions(),
        container.digest()
    );
    let mut dbg = CommandInterpreter::new(DebugSession::with_container(program, container));

    // Scripted mode: --cmd flags run in order, then exit.
    let cmds: Vec<&String> = args
        .iter()
        .zip(args.iter().skip(1))
        .filter(|(flag, _)| flag.as_str() == "--cmd")
        .map(|(_, cmd)| cmd)
        .collect();
    if !cmds.is_empty() {
        for cmd in cmds {
            println!("(drdebug) {cmd}");
            println!("{}", dbg.execute(cmd));
        }
        return;
    }

    // Interactive REPL over stdin.
    eprintln!("[drdebug] type `help` for commands, `quit` to exit");
    let stdin = io::stdin();
    loop {
        print!("(drdebug) ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        if line.is_empty() {
            continue;
        }
        println!("{}", dbg.execute(line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("drdebug_cli_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn missing_pinball_path_is_a_clean_error() {
        let err = load_container("/nonexistent/no-such-pinball.drpb").unwrap_err();
        assert!(err.contains("cannot read pinball"), "{err}");
    }

    #[test]
    fn unrecognizable_blob_is_a_clean_error() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"this is not a pinball at all").unwrap();
        let err = load_container(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("unreadable"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn migrate_mode_upgrades_v3_files_to_v4() {
        let program = workloads::fig8_save_restore();
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::with_inputs(0, [1]),
            100_000,
            "cli-migrate-test",
        )
        .expect("records");
        let container = PinballContainer::with_checkpoints(rec.pinball, &program, 64);
        let input = temp_path("migrate-in");
        let output = temp_path("migrate-out");
        std::fs::write(&input, container.to_bytes_v3().unwrap()).unwrap();

        let args: Vec<String> = [
            "migrate",
            "--to",
            "v4",
            input.to_str().unwrap(),
            output.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        migrate_mode(&args).expect("migrates");

        let upgraded = std::fs::read(&output).unwrap();
        assert_eq!(
            pinplay::detect_version(&upgraded),
            pinplay::ContainerVersion::V4
        );
        let loaded = PinballContainer::from_bytes(&upgraded).expect("v4 output loads");
        assert_eq!(loaded, container, "migration preserves the container");
        assert_eq!(loaded.digest(), container.digest(), "digest is format-free");
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn damaged_container_salvages_the_intact_prefix() {
        let program = workloads::fig8_save_restore();
        let rec = record_whole_program(
            &program,
            &mut RoundRobin::new(8),
            &mut LiveEnv::with_inputs(0, [1]),
            100_000,
            "cli-test",
        )
        .expect("records");
        let container = PinballContainer::with_checkpoints(rec.pinball, &program, 64);
        let mut bytes = container.to_bytes().expect("serializes");
        let cut = bytes.len() * 3 / 4;
        bytes.truncate(cut); // tail damage: prefix chunks stay intact
        let path = temp_path("damaged");
        std::fs::write(&path, &bytes).unwrap();
        let salvaged = load_container(path.to_str().unwrap()).expect("prefix salvaged");
        assert!(!salvaged.pinball.events.is_empty());
        assert!(salvaged.pinball.events.len() <= container.pinball.events.len());
        std::fs::remove_file(&path).ok();
    }
}
