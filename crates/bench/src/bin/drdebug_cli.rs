//! Interactive DrDebug command-line debugger.
//!
//! Exposes one of the built-in buggy workloads with the Maple active
//! scheduler, records the failing run as a pinball, and drops into a
//! gdb-style read–eval–print loop over the deterministic replay:
//!
//! ```text
//! cargo run --release -p bench --bin drdebug_cli -- fig5
//! (drdebug) continue
//! trap reproduced: assertion failed (tid 0, pc 7)
//! (drdebug) slice-failure
//! slice computed: 12 statement instances ...
//! (drdebug) help
//! ```
//!
//! Cases: `pbzip2`, `aget`, `mozilla` (Table 1), `fig5` (the paper's §3
//! example), `fig8` (the §5.2 save/restore example — no bug, breaks at
//! `compute_w` instead).

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use drdebug::{CommandInterpreter, DebugSession, LiveSession, LiveStop};
use maple::{expose_iroot, ExposeOptions, IRoot};
use minivm::{LiveEnv, Program, RoundRobin};
use pinplay::{record_whole_program, Pinball, PinballContainer, DEFAULT_CHECKPOINT_INTERVAL};

fn record_case(name: &str) -> Result<(Arc<Program>, Pinball), String> {
    let bug_case = |case: workloads::BugCase| -> Result<(Arc<Program>, Pinball), String> {
        let exposure = case
            .expose()
            .ok_or_else(|| format!("{}: bug not exposable", case.name))?;
        eprintln!(
            "[drdebug] exposed `{}` via interleaving {}: {}",
            case.name, exposure.iroot, exposure.error
        );
        Ok((case.program, exposure.recording.pinball))
    };
    match name {
        "pbzip2" => bug_case(workloads::pbzip2_like()),
        "aget" => bug_case(workloads::aget_like()),
        "mozilla" => bug_case(workloads::mozilla_like()),
        "fig5" => {
            let program = workloads::fig5_race();
            let iroot: IRoot = workloads::fig5_exposing_iroot(&program);
            let exposure = expose_iroot(&program, iroot, ExposeOptions::default())
                .ok_or("fig5: race not exposable")?;
            eprintln!("[drdebug] exposed the fig5 race: {}", exposure.error);
            Ok((program, exposure.recording.pinball))
        }
        "fig8" => {
            let program = workloads::fig8_save_restore();
            let rec = record_whole_program(
                &program,
                &mut RoundRobin::new(8),
                &mut LiveEnv::with_inputs(0, [1]),
                100_000,
                "fig8",
            )
            .map_err(|e| e.to_string())?;
            Ok((program, rec.pinball))
        }
        other => Err(format!(
            "unknown case `{other}`; expected pbzip2|aget|mozilla|fig5|fig8"
        )),
    }
}

/// Live-capture mode: run the case's program live with record on/off
/// commands; on `record off` (or a trap) drop into the replay debugger.
fn live_mode(program: Arc<Program>) -> Option<(Arc<Program>, Pinball)> {
    let mut live = LiveSession::new(
        Arc::clone(&program),
        RoundRobin::new(8),
        LiveEnv::new(0),
        "live",
    );
    eprintln!(
        "[drdebug --live] commands: break <pc> | delete <pc> | continue | record on | record off | state | quit"
    );
    let stdin = io::stdin();
    loop {
        print!("(live) ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => return None,
            Ok(_) => {}
        }
        let line = line.trim();
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("break"), Some(pc)) => {
                if let Ok(pc) = pc.parse() {
                    live.add_breakpoint(pc);
                    println!("live breakpoint at pc {pc}");
                } else {
                    println!("bad pc");
                }
            }
            (Some("delete"), Some(pc)) => {
                if let Ok(pc) = pc.parse::<u32>() {
                    println!("removed: {}", live.remove_breakpoint(pc));
                }
            }
            (Some("continue"), _) | (Some("c"), _) => {
                let stop = live.cont(10_000_000);
                println!("stopped: {stop:?}");
                if matches!(stop, LiveStop::Trapped(_)) {
                    if let Some(pb) = live.captured().cloned() {
                        println!("trap while recording: pinball finalised; switching to replay");
                        return Some((program, pb));
                    }
                }
            }
            (Some("record"), Some("on")) => {
                println!("recording: {}", live.record_on());
            }
            (Some("record"), Some("off")) => match live.record_off() {
                Some(pb) => {
                    println!(
                        "captured {} instructions; switching to replay debugger",
                        pb.logged_instructions()
                    );
                    return Some((program, pb));
                }
                None => println!("not recording"),
            },
            (Some("state"), _) => {
                for t in 0..live.exec().num_threads() as u32 {
                    let th = live.exec().thread(t);
                    println!("t{t}: pc={} runnable={}", th.pc, th.is_runnable());
                }
            }
            (Some("quit"), _) | (Some("exit"), _) => return None,
            (Some(other), _) => println!("unknown live command `{other}`"),
            (None, _) => {}
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(case) = args.first() else {
        eprintln!(
            "usage: drdebug_cli <pbzip2|aget|mozilla|fig5|fig8> [--live] [--ckpt <n>] [--cmd '<command>']..."
        );
        std::process::exit(2);
    };
    let (program, pinball) = if args.iter().any(|a| a == "--live") {
        // Live mode uses the case's program but captures interactively.
        let program = match record_case(case) {
            Ok((p, _)) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        match live_mode(program) {
            Some(captured) => captured,
            None => return,
        }
    } else {
        match record_case(case) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };
    eprintln!(
        "[drdebug] pinball: {} instructions, {} bytes compressed",
        pinball.logged_instructions(),
        pinball.size_bytes().expect("pinball serializes")
    );
    // Embed checkpoints every `--ckpt N` retired instructions (default
    // DEFAULT_CHECKPOINT_INTERVAL) so `seek` restores in O(chunk).
    let interval = args
        .iter()
        .zip(args.iter().skip(1))
        .find(|(flag, _)| flag.as_str() == "--ckpt")
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_CHECKPOINT_INTERVAL);
    let container = PinballContainer::with_checkpoints(pinball, &program, interval);
    eprintln!(
        "[drdebug] container: {} embedded checkpoints (interval {interval})",
        container.checkpoints.len()
    );
    let mut dbg = CommandInterpreter::new(DebugSession::with_container(program, container));

    // Scripted mode: --cmd flags run in order, then exit.
    let cmds: Vec<&String> = args
        .iter()
        .zip(args.iter().skip(1))
        .filter(|(flag, _)| flag.as_str() == "--cmd")
        .map(|(_, cmd)| cmd)
        .collect();
    if !cmds.is_empty() {
        for cmd in cmds {
            println!("(drdebug) {cmd}");
            println!("{}", dbg.execute(cmd));
        }
        return;
    }

    // Interactive REPL over stdin.
    eprintln!("[drdebug] type `help` for commands, `quit` to exit");
    let stdin = io::stdin();
    loop {
        print!("(drdebug) ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        if line.is_empty() {
            continue;
        }
        println!("{}", dbg.execute(line));
    }
}
