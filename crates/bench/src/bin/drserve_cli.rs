//! drserve command line: serve pinballs over TCP, or drive a server as a
//! client.
//!
//! ```text
//! # terminal 1: start a server
//! cargo run --release -p bench --bin drserve_cli -- serve --addr 127.0.0.1:7070
//!
//! # terminal 2: record a workload, upload it, seek, slice (twice)
//! cargo run --release -p bench --bin drserve_cli -- client --addr 127.0.0.1:7070
//!
//! # ask a running server for its stats block (caches, sessions) only
//! cargo run --release -p bench --bin drserve_cli -- client stats --addr 127.0.0.1:7070
//!
//! # or everything in one process over the in-memory loopback transport
//! cargo run --release -p bench --bin drserve_cli -- demo --clients 4
//!
//! # stream a recording up in chunks (resumable; pair with
//! # `drdebug_cli needle --tail <stream>` in another terminal)
//! cargo run --release -p bench --bin drserve_cli -- stream --addr 127.0.0.1:7070 \
//!     --stream 42 --chunks 8 --delay-ms 300
//!
//! # a 3-node fleet: one bootstrap, two joiners, then inspect the ring
//! cargo run --release -p bench --bin drserve_cli -- serve --addr 127.0.0.1:7070 --cluster
//! cargo run --release -p bench --bin drserve_cli -- serve --addr 127.0.0.1:7071 --peers 127.0.0.1:7070
//! cargo run --release -p bench --bin drserve_cli -- serve --addr 127.0.0.1:7072 --peers 127.0.0.1:7070
//! cargo run --release -p bench --bin drserve_cli -- cluster --addr 127.0.0.1:7070
//! ```
//!
//! The client records the four-thread needle workload, uploads it
//! (content-addressed — a second client uploading the same recording
//! dedupes), opens a pooled session, seeks to the middle of the region,
//! computes the failure slice twice to show the cold-compute versus
//! cache-hit latency, and relogs the slice into a server-stored slice
//! pinball whose digest it reopens and slices like any upload. It
//! finishes by printing the server's stats block and this connection's
//! wire counters (requests, bytes each way).

use std::io::{Read, Write};

use bench::exp::record_needle;
use drserve::{Client, FleetClient, ServeConfig, Server, SliceAt};
use pinplay::{PinballContainer, PinballDigest, StreamWriter, DEFAULT_CHECKPOINT_INTERVAL};
use slicer::SliceOptions;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .zip(args.iter().skip(1))
        .find(|(f, _)| f.as_str() == flag)
        .map(|(_, v)| v.as_str())
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn config_from(args: &[String]) -> ServeConfig {
    // `--peers a,b,c` seeds the gossip mesh; `--advertise` is the address
    // other fleet members dial back (defaults to the bound address).
    // `--cluster` turns fleet mode on with no seeds — the bootstrap node.
    let peers: Vec<String> = flag_value(args, "--peers")
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    ServeConfig {
        max_sessions: parsed_flag(args, "--max-sessions", 8),
        cache_capacity: parsed_flag(args, "--cache", 256),
        // 0 = auto-size to the machine (one shard per CPU, capped).
        shards: parsed_flag(args, "--shards", 0),
        dispatchers: parsed_flag(args, "--dispatchers", 0),
        queue_capacity: parsed_flag(args, "--queue", 512),
        batch_max: parsed_flag(args, "--batch", 32),
        cluster: args.iter().any(|a| a == "--cluster"),
        advertise: flag_value(args, "--advertise").map(str::to_string),
        peers,
        ..ServeConfig::default()
    }
}

/// One full debug iteration against a connected server; prints what the
/// cache did for the repeat request.
fn drive<S: Read + Write>(client: &mut Client<S>, iters: u64, tag: &str) -> Result<(), String> {
    let (program, pinball) = record_needle(iters);
    let up = client
        .upload(&program, &pinball)
        .map_err(|e| format!("upload: {e}"))?;
    println!(
        "[{tag}] uploaded {} instructions as {} ({})",
        up.instructions,
        up.digest,
        if up.deduped { "deduped" } else { "stored" }
    );
    let session = client.open(up.digest).map_err(|e| format!("open: {e}"))?;
    let (_, position) = client
        .seek(session, up.instructions / 2)
        .map_err(|e| format!("seek: {e}"))?;
    println!("[{tag}] session {session} seeked to instruction {position}");
    let cold = client
        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
        .map_err(|e| format!("slice: {e}"))?;
    let warm = client
        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
        .map_err(|e| format!("slice: {e}"))?;
    println!(
        "[{tag}] failure slice: {} records; cold {} us ({}), repeat {} us ({})",
        cold.slice.len(),
        cold.micros,
        if cold.cached { "cache hit" } else { "computed" },
        warm.micros,
        if warm.cached { "cache hit" } else { "computed" },
    );
    let relog = client
        .relog(session, SliceAt::Failure, SliceOptions::default())
        .map_err(|e| format!("relog: {e}"))?;
    println!(
        "[{tag}] relogged into slice pinball {} ({} of {} instructions kept, {} excluded; {} us, {})",
        relog.digest,
        relog.kept,
        up.instructions,
        relog.excluded,
        relog.micros,
        if relog.cached { "cache hit" } else { "built" },
    );
    client.close(session).map_err(|e| format!("close: {e}"))?;
    // The relogged digest is an ordinary stored pinball: open and slice it.
    let sliced = client
        .open(relog.digest)
        .map_err(|e| format!("open slice pinball: {e}"))?;
    let again = client
        .compute_slice(sliced, SliceAt::Failure, SliceOptions::default())
        .map_err(|e| format!("slice the slice pinball: {e}"))?;
    println!(
        "[{tag}] slice pinball slices like any upload: {} records",
        again.slice.len()
    );
    client.close(sliced).map_err(|e| format!("close: {e}"))?;
    Ok(())
}

/// Streams a recorded needle workload up in `chunks` self-delimiting
/// pieces with `delay_ms` between sends, so a tailing client in another
/// terminal (`drdebug_cli needle --tail <stream>`) can watch the prefix
/// grow. Resumable: rerunning with the same `--stream` id resends only
/// the chunks the server has not absorbed, and a digest probe on begin
/// skips the body entirely when the server already stores the pinball.
fn stream_up<S: Read + Write>(
    client: &mut Client<S>,
    iters: u64,
    stream_id: Option<u64>,
    chunks: usize,
    delay_ms: u64,
) -> Result<(), String> {
    let (program, pinball) = record_needle(iters);
    let container =
        PinballContainer::with_checkpoints(pinball, &program, DEFAULT_CHECKPOINT_INTERVAL);
    let writer = StreamWriter::new(&container).map_err(|e| format!("container encode: {e}"))?;
    let digest = writer.digest();
    let stream = stream_id.unwrap_or(digest.0);
    let ack = client
        .begin_stream(stream, &program, Some(digest))
        .map_err(|e| format!("begin: {e}"))?;
    if ack.already_have {
        println!("[stream] server already has {digest}; nothing to send (deduped)");
        return Ok(());
    }
    let pieces = writer.chunks(chunks);
    println!(
        "[stream] stream {stream}: {} chunks, {} bytes, {} instructions \
         (resuming from chunk {})",
        pieces.len(),
        writer.sealed_bytes().len(),
        writer.instructions(),
        ack.next_seq,
    );
    for (seq, piece) in pieces.iter().enumerate() {
        if (seq as u32) < ack.next_seq {
            continue; // absorbed before a reconnect: never resent
        }
        let ack = client
            .append_chunk(stream, seq as u32, piece.to_vec())
            .map_err(|e| format!("chunk {seq}: {e}"))?;
        println!(
            "[stream] chunk {seq} acked: {} events absorbed server-side",
            ack.events
        );
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
    }
    let up = client
        .seal_stream(stream, writer.footer().to_vec())
        .map_err(|e| format!("seal: {e}"))?;
    println!(
        "[stream] sealed: {} instructions published as {} ({})",
        up.instructions,
        up.digest,
        if up.deduped { "deduped" } else { "stored" }
    );
    Ok(())
}

fn print_stats<S: Read + Write>(client: &mut Client<S>) {
    match client.stats() {
        Ok(stats) => println!("--- server stats ---\n{stats}"),
        Err(e) => eprintln!("stats: {e}"),
    }
    let wire = client.wire_stats();
    println!(
        "--- wire (this connection) ---\n\
         requests        {:>8}\n\
         bytes sent      {:>8}\n\
         bytes received  {:>8}",
        wire.requests, wire.bytes_sent, wire.bytes_received
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let iters = parsed_flag(&args, "--iters", 400);
    match mode {
        Some("serve") => {
            let addr = flag_value(&args, "--addr").unwrap_or("127.0.0.1:7070");
            let server = Server::new(config_from(&args));
            let handle = match server.listen(addr) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("error: cannot listen on {addr}: {e}");
                    std::process::exit(1);
                }
            };
            let config = config_from(&args);
            if config.cluster || !config.peers.is_empty() {
                println!(
                    "[drserve] listening on {} ({} worker shards; fleet mode, seeds: {})",
                    handle.addr(),
                    server.service().shard_count(),
                    if config.peers.is_empty() {
                        "none — bootstrap".to_string()
                    } else {
                        config.peers.join(", ")
                    }
                );
            } else {
                println!(
                    "[drserve] listening on {} ({} worker shards)",
                    handle.addr(),
                    server.service().shard_count()
                );
            }
            // Serve until the process is killed.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Some("client") => {
            let addr = flag_value(&args, "--addr").unwrap_or("127.0.0.1:7070");
            let mut client = match drserve::connect(addr) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot connect to {addr}: {e}");
                    std::process::exit(1);
                }
            };
            // `client stats` only queries the server: print the stats
            // block (slice cache, index cache, sessions) and exit.
            if args.get(1).map(String::as_str) != Some("stats") {
                if let Err(e) = drive(&mut client, iters, "client") {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
            print_stats(&mut client);
        }
        Some("stream") => {
            let addr = flag_value(&args, "--addr").unwrap_or("127.0.0.1:7070");
            let chunks: usize = parsed_flag(&args, "--chunks", 8);
            let delay_ms: u64 = parsed_flag(&args, "--delay-ms", 200);
            let stream_id = flag_value(&args, "--stream").and_then(|v| v.parse().ok());
            let mut client = match drserve::connect(addr) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot connect to {addr}: {e}");
                    std::process::exit(1);
                }
            };
            if let Err(e) = stream_up(&mut client, iters, stream_id, chunks, delay_ms) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Some("cluster") => {
            let addr = flag_value(&args, "--addr").unwrap_or("127.0.0.1:7070");
            let mut fc = match FleetClient::connect(addr) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot reach fleet via {addr}: {e}");
                    std::process::exit(1);
                }
            };
            println!("--- peer map (via {addr}) ---");
            for node in fc.nodes() {
                println!(
                    "{:<21} {:<5} incarnation {:<20} heartbeat {:<8} pinballs {}",
                    node.addr,
                    if node.alive { "alive" } else { "dead" },
                    node.incarnation,
                    node.heartbeat,
                    node.pinballs,
                );
            }
            println!("--- ring shares ---");
            for (node, share) in fc.ring().shares() {
                println!("{node:<21} {:>5.1}% of the keyspace", share * 100.0);
            }
            // `--digest <hex>` prints which node owns that pinball.
            if let Some(raw) = flag_value(&args, "--digest") {
                let raw = raw.trim_start_matches("0x");
                match u64::from_str_radix(raw, 16) {
                    Ok(bits) => {
                        let digest = PinballDigest(bits);
                        println!(
                            "--- ownership ---\n{digest} is owned by {}",
                            fc.owner_of(digest)
                        );
                    }
                    Err(e) => eprintln!("error: --digest wants hex ({e})"),
                }
            }
            match fc.stats_all() {
                Ok(all) => {
                    println!("--- per-node cache stats ---");
                    for (node, stats) in all {
                        println!(
                            "{node:<21} slice cache {}/{} hits ({}% on {} entries), \
                             index builds {}, forwards {}, peer-cache hits {}, \
                             redirects {}, peer fetches {}",
                            stats.cache.hits,
                            stats.cache.hits + stats.cache.misses,
                            stats.cache.hit_rate_percent(),
                            stats.cache.entries,
                            stats.index_cache.misses,
                            stats.cluster.forwards,
                            stats.cluster.peer_cache_hits,
                            stats.cluster.redirects,
                            stats.cluster.peer_fetches,
                        );
                    }
                }
                Err(e) => eprintln!("stats: {e}"),
            }
        }
        Some("demo") => {
            let clients: usize = parsed_flag(&args, "--clients", 4);
            let server = Server::new(config_from(&args));
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|i| {
                        let mut client = server.loopback_client();
                        scope.spawn(move || drive(&mut client, iters, &format!("demo-{i}")))
                    })
                    .collect();
                for handle in handles {
                    if let Err(e) = handle.join().expect("client thread") {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            });
            let mut client = server.loopback_client();
            print_stats(&mut client);
        }
        _ => {
            eprintln!(
                "usage: drserve_cli serve [--addr <host:port>] [--max-sessions <n>] [--cache <n>]\n\
                 \x20                     [--shards <n>] [--dispatchers <n>] [--queue <n>] [--batch <n>]\n\
                 \x20                     [--peers <addr,...>] [--advertise <host:port>] [--cluster]\n\
                 \x20      drserve_cli client [--addr <host:port>] [--iters <n>]\n\
                 \x20      drserve_cli client stats [--addr <host:port>]\n\
                 \x20      drserve_cli cluster [--addr <host:port>] [--digest <hex>]\n\
                 \x20      drserve_cli stream [--addr <host:port>] [--iters <n>] [--chunks <n>]\n\
                 \x20                         [--delay-ms <n>] [--stream <id>]\n\
                 \x20      drserve_cli demo [--clients <n>] [--iters <n>] [--shards <n>]\n\
                 \n\
                 --shards 0 (default) sizes one worker shard per CPU; each shard owns its\n\
                 own session pool and caches. --queue bounds each shard's admission queue\n\
                 (overload answers Busy with a backlog-scaled retry hint); --batch caps how\n\
                 many queued requests one worker wakeup drains. The stats block printed by\n\
                 `client stats` and `demo` includes the per-shard breakdown.\n\
                 \n\
                 Fleet mode: `serve --peers` joins an existing fleet (gossip seeds);\n\
                 `serve --cluster` bootstraps a seedless first node; `--advertise` is the\n\
                 address peers dial back when the bind address is not reachable as-is.\n\
                 `cluster` prints the gossiped peer map, consistent-hash ring shares,\n\
                 the owner of --digest, and each node's cache/forwarding counters."
            );
            std::process::exit(2);
        }
    }
}
