//! Renders the bench JSON reports as one markdown summary.
//!
//! CI runs this after the bench smokes and appends the output to
//! `$GITHUB_STEP_SUMMARY`, so every run shows its headline numbers —
//! throughput, latency, cache hit rates, speedups — without anyone
//! downloading an artifact. Reads every `*.json` in the canonical bench
//! report directory ([`bench::report::bench_report_dir`]), or in the
//! directory given as the first argument.
//!
//! The reports are flat JSON objects written by the benches themselves,
//! so the extraction here is a small structural scan (string-aware,
//! depth-counting) rather than a full JSON parser: the vendored offline
//! `serde_json` stand-in deliberately rejects floats, and the reports are
//! full of them. A bench can add fields without touching this binary —
//! unknown keys simply land in that report's key/value table.

use std::collections::BTreeMap;
use std::path::PathBuf;

/// Headline metrics: (report, key, label, unit).
const HEADLINES: &[(&str, &str, &str, &str)] = &[
    (
        "stream",
        "incremental_speedup",
        "Streaming incremental-index speedup",
        "x",
    ),
    (
        "stream",
        "absorb_mb_per_s",
        "Stream absorb throughput",
        "MB/s",
    ),
    (
        "stream",
        "absorb_speedup",
        "Stream absorb speedup (v4 columnar vs v3)",
        "x",
    ),
    (
        "saturation",
        "saturation_speedup",
        "Saturation speedup (fleet vs ping-pong)",
        "x",
    ),
    (
        "saturation",
        "fleet_stats_rps",
        "Fleet stats throughput",
        "req/s",
    ),
    (
        "saturation",
        "p99_window_us",
        "Saturation p99 window latency",
        "us",
    ),
    (
        "serve",
        "stats_requests_per_sec",
        "Single-client stats throughput",
        "req/s",
    ),
    (
        "serve",
        "cache_speedup",
        "Slice cache speedup (cold vs hit)",
        "x",
    ),
    (
        "serve",
        "cache_hit_rate_percent",
        "Slice cache hit rate",
        "%",
    ),
    (
        "incremental",
        "warm_speedup",
        "Warm dependence-index speedup",
        "x",
    ),
    (
        "relog",
        "replay_speedup",
        "Slice-pinball replay speedup",
        "x",
    ),
    ("codec", "roundtrip_speedup", "Binary codec speedup", "x"),
    (
        "codec",
        "view_load_speedup",
        "v4 zero-copy load speedup (view vs v3)",
        "x",
    ),
    (
        "codec",
        "load_v4_mapped_open_ns",
        "v4 mapped container open",
        "ns",
    ),
    (
        "cluster",
        "forward_speedup",
        "Fleet forward speedup (warm owner vs cold recompute)",
        "x",
    ),
    (
        "cluster",
        "peer_cache_hit_ns",
        "Fleet peer-cache repeat latency",
        "ns",
    ),
    (
        "cluster",
        "fleet_index_builds",
        "DepIndex builds fleet-wide (hot digest)",
        "builds",
    ),
];

/// Splits the top level of a JSON object into `(key, raw value text)`
/// pairs. Values are kept verbatim (numbers, strings, nested arrays);
/// nesting is skipped structurally, with strings and escapes respected.
fn top_level_pairs(json: &str) -> Vec<(String, String)> {
    let bytes = json.as_bytes();
    let mut pairs = Vec::new();
    let mut i = match json.find('{') {
        Some(at) => at + 1,
        None => return pairs,
    };
    loop {
        // Key: the next string literal.
        let Some(key_start) = json[i..].find('"').map(|at| i + at + 1) else {
            return pairs;
        };
        let Some(key_end) = scan_string(bytes, key_start) else {
            return pairs;
        };
        let key = json[key_start..key_end].to_string();
        // Separator.
        let Some(colon) = json[key_end..].find(':').map(|at| key_end + at + 1) else {
            return pairs;
        };
        // Value: everything up to the comma or brace that closes it at
        // depth zero.
        let mut depth = 0i32;
        let mut at = colon;
        let value_end = loop {
            if at >= bytes.len() {
                break at;
            }
            match bytes[at] {
                b'"' => {
                    let Some(close) = scan_string(bytes, at + 1) else {
                        break bytes.len();
                    };
                    at = close;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' if depth > 0 => depth -= 1,
                b'}' => break at,
                b',' if depth == 0 => break at,
                _ => {}
            }
            at += 1;
        };
        let value = json[colon..value_end].trim().to_string();
        let closed = value_end >= bytes.len() || bytes[value_end] == b'}';
        pairs.push((key, value));
        if closed {
            return pairs;
        }
        i = value_end + 1;
    }
}

/// Index just past the closing quote of a string starting at `from`
/// (first byte after the opening quote).
fn scan_string(bytes: &[u8], from: usize) -> Option<usize> {
    let mut at = from;
    while at < bytes.len() {
        match bytes[at] {
            b'\\' => at += 2,
            b'"' => return Some(at),
            _ => at += 1,
        }
    }
    None
}

fn render_value(raw: &str) -> String {
    let trimmed = raw.trim();
    let unquoted = trimmed
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(trimmed);
    if unquoted.len() > 60 {
        format!("{}…", &unquoted[..60].trim_end())
    } else {
        unquoted.to_string()
    }
}

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(bench::report::bench_report_dir);

    let mut reports: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            match std::fs::read_to_string(&path) {
                Ok(json) => {
                    reports.insert(stem.to_string(), top_level_pairs(&json));
                }
                Err(e) => eprintln!("skipping {}: {e}", path.display()),
            }
        }
    }

    println!("## Bench reports");
    println!();
    if reports.is_empty() {
        println!("_No bench reports found in `{}`._", dir.display());
        return;
    }

    let lookup = |report: &str, key: &str| -> Option<String> {
        reports
            .get(report)?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| render_value(v))
    };
    let headline: Vec<(&str, String, &str)> = HEADLINES
        .iter()
        .filter_map(|(report, key, label, unit)| {
            lookup(report, key).map(|value| (*label, value, *unit))
        })
        .collect();
    if !headline.is_empty() {
        println!("| Metric | Value |");
        println!("| --- | ---: |");
        for (label, value, unit) in headline {
            println!("| {label} | {value} {unit} |");
        }
        println!();
    }

    for (name, pairs) in &reports {
        println!("<details><summary><code>{name}.json</code></summary>");
        println!();
        println!("| Key | Value |");
        println!("| --- | ---: |");
        for (key, value) in pairs {
            println!("| `{key}` | {} |", render_value(value));
        }
        println!();
        println!("</details>");
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_reports_split_into_pairs() {
        let json = "{\n  \"bench\": \"serve\",\n  \"cache_speedup\": 12.34,\n  \
                    \"n\": 19000\n}\n";
        let pairs = top_level_pairs(json);
        assert_eq!(
            pairs,
            vec![
                ("bench".to_string(), "\"serve\"".to_string()),
                ("cache_speedup".to_string(), "12.34".to_string()),
                ("n".to_string(), "19000".to_string()),
            ]
        );
        assert_eq!(render_value(&pairs[0].1), "serve");
    }

    #[test]
    fn nested_values_are_kept_verbatim() {
        let json = r#"{"points": [{"percent": 25, "speedup": 3.1}], "tail": 7}"#;
        let pairs = top_level_pairs(json);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, "points");
        assert!(pairs[0].1.starts_with('['));
        assert_eq!(pairs[1], ("tail".to_string(), "7".to_string()));
    }

    #[test]
    fn escaped_quotes_do_not_desync_the_scan() {
        let json = r#"{"a": "say \"hi\", ok", "b": 1}"#;
        let pairs = top_level_pairs(json);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1], ("b".to_string(), "1".to_string()));
    }
}
