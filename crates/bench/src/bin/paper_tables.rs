//! Regenerates the DrDebug paper's tables and figures.
//!
//! ```text
//! paper_tables [table1|table2|table3|fig11|fig12|fig13|fig14|slicing|all]
//!              [--quick]
//! ```
//!
//! `--quick` shrinks the region-length sweeps for smoke runs; without it,
//! the full (laptop-scaled) sweeps run — use a release build.

use bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let fig11_lengths: &[u64] = if quick {
        &[2_000, 10_000, 50_000]
    } else {
        tables::FIG11_LENGTHS
    };
    let fig13_lengths: &[u64] = if quick { &[5_000] } else { &[10_000, 100_000] };
    let fig14_length: u64 = if quick { 5_000 } else { 50_000 };
    let slicing_length: u64 = if quick { 5_000 } else { 50_000 };

    let run = |name: &str| what == "all" || what == name;
    let mut ran = false;
    if run("table1") {
        tables::table1();
        println!();
        ran = true;
    }
    if run("table2") {
        tables::table2();
        println!();
        ran = true;
    }
    if run("table3") {
        tables::table3();
        println!();
        ran = true;
    }
    if run("fig11") {
        tables::fig11(fig11_lengths);
        println!();
        ran = true;
    }
    if run("fig12") {
        tables::fig12(fig11_lengths);
        println!();
        ran = true;
    }
    if run("fig13") {
        tables::fig13(fig13_lengths);
        println!();
        ran = true;
    }
    if run("fig14") {
        tables::fig14(fig14_length);
        println!();
        ran = true;
    }
    if run("slicing") {
        tables::slicing_overhead(slicing_length);
        println!();
        ran = true;
    }
    if run("ablations") {
        tables::ablations(slicing_length);
        println!();
        ran = true;
    }
    if run("sizes") {
        tables::pinball_sizes(fig11_lengths);
        println!();
        ran = true;
    }
    if !ran {
        eprintln!(
            "unknown experiment `{what}`; expected one of: table1 table2 table3 fig11 fig12 fig13 fig14 slicing ablations sizes all"
        );
        std::process::exit(2);
    }
}
