//! Shared machinery for regenerating the paper's tables and figures.
//!
//! The `paper_tables` binary drives [`tables`]; the criterion benches under
//! `benches/` reuse the same helpers at smaller sizes. See `EXPERIMENTS.md`
//! at the repository root for the paper-vs-measured record.

pub mod corpus;
pub mod exp;
pub mod report;
pub mod serveload;
pub mod tables;

use std::time::{Duration, Instant};

/// Times a closure.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Formats a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count in KB.
pub fn kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}
