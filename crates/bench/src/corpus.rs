//! Golden-fixture corpus: promoting a deterministic recording into a
//! committed regression fixture.
//!
//! A fixture directory under `crates/bench/tests/corpus/<name>/` holds
//! three files:
//!
//! - `pinball.drpb` — the recorded container, byte for byte;
//! - `slice.bin` — the canonical wire encoding of the failure slice
//!   ([`WireSlice::canonical_bytes`]), computed exactly the way drserve's
//!   streaming path computes it;
//! - `state.txt` — `key=value` lines naming the source case, the content
//!   digest, the retired-instruction count, the replayer's end-of-log
//!   [`state digest`](Replayer::state_digest), and an FNV-1a fold of the
//!   slice bytes.
//!
//! `drdebug_cli <case> --emit-test <name>` writes one; the
//! `corpus_golden` integration test replays and re-slices every committed
//! fixture and fails on any byte that moved. Because replay and slicing
//! are deterministic, a fixture pins three independent layers at once:
//! the container codec (the committed bytes must still parse), the
//! replayer (the state digest must come back), and the slicer (the
//! canonical slice bytes must come back).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use drserve::WireSlice;
use minivm::{NullTool, Program};
use pinplay::{PinballContainer, Replayer};
use slicer::{
    compute_slice_indexed, Criterion, DepIndex, SliceOptions, SliceSession, SlicerOptions,
};

/// Root of the committed corpus: `crates/bench/tests/corpus`.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

/// FNV-1a over `bytes` — the same fold [`Replayer::state_digest`] uses,
/// here applied to fixture artifacts so `state.txt` can pin them.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The program a committed fixture's `case=` line refers to. Fixtures
/// only name cases whose program is reconstructible without recording.
pub fn corpus_program(case: &str) -> Option<Arc<Program>> {
    match case {
        "pbzip2" => Some(workloads::pbzip2_like().program),
        "aget" => Some(workloads::aget_like().program),
        "mozilla" => Some(workloads::mozilla_like().program),
        "fig5" => Some(workloads::fig5_race()),
        "fig8" => Some(workloads::fig8_save_restore()),
        _ => None,
    }
}

/// Replays the container to the end of its log and returns the replay
/// state digest plus the retired-instruction count.
pub fn replay_state(program: &Arc<Program>, container: &PinballContainer) -> (u64, u64) {
    let mut replayer = Replayer::new(Arc::clone(program), &container.pinball);
    replayer.run(&mut NullTool);
    (replayer.state_digest(), replayer.replayed_instructions())
}

/// The canonical failure-slice bytes for a container: collect with
/// clustering off (the stream path's stable-position options), index,
/// slice at the failure record, and encode canonically. An empty trace
/// yields empty bytes.
pub fn expected_slice_bytes(program: &Arc<Program>, container: &PinballContainer) -> Vec<u8> {
    let collect_opts = SlicerOptions {
        cluster: false,
        ..SlicerOptions::default()
    };
    let session = SliceSession::collect(Arc::clone(program), &container.pinball, collect_opts);
    let Some(id) = session.failure_record().map(|r| r.id) else {
        return Vec::new();
    };
    let options = SliceOptions::default();
    let index = DepIndex::build(session.trace(), session.pairs(), &options);
    let slice = compute_slice_indexed(&index, Criterion::Record { id });
    WireSlice::from_slice(&slice).canonical_bytes()
}

/// Writes the three fixture files for `name` under `base`, recording
/// `case` as the program the verifier should rebuild. Returns the
/// fixture directory.
///
/// # Errors
///
/// Any filesystem error, or a container that fails to serialize.
pub fn emit_fixture_in(
    base: &Path,
    name: &str,
    case: &str,
    program: &Arc<Program>,
    container: &PinballContainer,
) -> io::Result<PathBuf> {
    let dir = base.join(name);
    fs::create_dir_all(&dir)?;
    let bytes = container
        .to_bytes()
        .map_err(|e| io::Error::other(format!("container does not serialize: {e}")))?;
    fs::write(dir.join("pinball.drpb"), &bytes)?;
    let slice = expected_slice_bytes(program, container);
    fs::write(dir.join("slice.bin"), &slice)?;
    let (state_digest, instructions) = replay_state(program, container);
    let state = format!(
        "name={name}\ncase={case}\ndigest={}\ninstructions={instructions}\n\
         state_digest=0x{state_digest:016x}\nslice_fnv=0x{:016x}\n",
        container.digest(),
        fnv1a(&slice),
    );
    fs::write(dir.join("state.txt"), state)?;
    Ok(dir)
}

/// [`emit_fixture_in`] into the committed [`corpus_dir`].
///
/// # Errors
///
/// Any filesystem error, or a container that fails to serialize.
pub fn emit_fixture(
    name: &str,
    case: &str,
    program: &Arc<Program>,
    container: &PinballContainer,
) -> io::Result<PathBuf> {
    emit_fixture_in(&corpus_dir(), name, case, program, container)
}

/// One `key=value` line from a fixture's `state.txt`.
fn state_field<'a>(state: &'a str, key: &str) -> Result<&'a str, String> {
    state
        .lines()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| format!("state.txt is missing `{key}=`"))
}

/// Recomputes everything for the fixture at `base/name` — parse the
/// committed container, replay it, re-slice it — and returns an error
/// naming the first artifact that no longer matches.
///
/// # Errors
///
/// A human-readable description of the first mismatch: unreadable file,
/// unknown case, digest/instruction/state/slice drift.
pub fn verify_fixture_in(base: &Path, name: &str) -> Result<(), String> {
    let dir = base.join(name);
    let read = |file: &str| {
        fs::read(dir.join(file)).map_err(|e| format!("{name}: cannot read {file}: {e}"))
    };
    let state = String::from_utf8(read("state.txt")?)
        .map_err(|_| format!("{name}: state.txt is not UTF-8"))?;
    let case = state_field(&state, "case")?;
    let program =
        corpus_program(case).ok_or_else(|| format!("{name}: unknown corpus case `{case}`"))?;
    let bytes = read("pinball.drpb")?;
    let container = PinballContainer::from_bytes(&bytes)
        .map_err(|e| format!("{name}: committed container no longer parses: {e}"))?;
    if format!("{}", container.digest()) != state_field(&state, "digest")? {
        return Err(format!("{name}: container digest drifted"));
    }
    let (state_digest, instructions) = replay_state(&program, &container);
    if instructions.to_string() != state_field(&state, "instructions")? {
        return Err(format!(
            "{name}: replay retired {instructions} instructions, \
             state.txt says {}",
            state_field(&state, "instructions")?
        ));
    }
    if format!("0x{state_digest:016x}") != state_field(&state, "state_digest")? {
        return Err(format!("{name}: replay state digest drifted"));
    }
    let expected = read("slice.bin")?;
    let recomputed = expected_slice_bytes(&program, &container);
    if recomputed != expected {
        return Err(format!(
            "{name}: failure slice drifted ({} bytes recomputed vs {} committed)",
            recomputed.len(),
            expected.len()
        ));
    }
    if format!("0x{:016x}", fnv1a(&expected)) != state_field(&state, "slice_fnv")? {
        return Err(format!(
            "{name}: slice.bin does not match its state.txt hash"
        ));
    }
    Ok(())
}
