//! One canonical location for bench JSON reports.
//!
//! Every bench that emits a machine-readable report (`codec.json`,
//! `serve.json`, `saturation.json`, …) writes it through
//! [`write_report`], so the reports land in a single directory no matter
//! which crate directory cargo happens to run the bench from:
//!
//! - `$CARGO_TARGET_DIR/bench/` when the variable is set (CI sets it), or
//! - `<workspace>/target/bench/` otherwise, resolved from this crate's
//!   manifest directory — **not** from the process working directory,
//!   which differs between `cargo bench` invocations and was the cause of
//!   reports scattering across `crates/bench/target/` and `target/`.
//!
//! CI consumes exactly [`bench_report_dir`]: the artifact upload and the
//! step-summary table both read `target/bench/*.json` and nothing else.

use std::io;
use std::path::PathBuf;

/// The canonical bench-report directory (not yet created).
pub fn bench_report_dir() -> PathBuf {
    match std::env::var_os("CARGO_TARGET_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir).join("bench"),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join("bench"),
    }
}

/// Writes one report into [`bench_report_dir`], creating the directory,
/// and returns the path it landed at.
///
/// # Errors
///
/// Propagates directory-creation and write failures; benches treat those
/// as "report not written", never as a bench failure.
pub fn write_report(name: &str, contents: &str) -> io::Result<PathBuf> {
    let dir = bench_report_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_dir_honors_cargo_target_dir_else_workspace_target() {
        // The env-var branch is what CI exercises; assert the fallback
        // resolves inside the workspace target, independent of cwd.
        let dir = bench_report_dir();
        assert!(dir.ends_with("bench"), "{dir:?}");
        if std::env::var_os("CARGO_TARGET_DIR").is_none() {
            assert!(
                dir.to_string_lossy().contains("target"),
                "fallback must be the workspace target dir: {dir:?}"
            );
        }
    }

    #[test]
    fn write_report_round_trips() {
        let path =
            write_report("report-helper-selftest.json", "{\"ok\":true}\n").expect("report written");
        let back = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(back, "{\"ok\":true}\n");
        let _ = std::fs::remove_file(path);
    }
}
