//! Regeneration of every table and figure in the paper's evaluation (§7).
//!
//! Each function prints rows in the same shape as the paper's artifact.
//! Region lengths are scaled ~1000× down (the substrate is an interpreter,
//! not a Xeon pool); `EXPERIMENTS.md` records paper-vs-measured shapes.

use slicer::{SliceOptions, SlicerOptions};
use workloads::{all_bugs, all_parsec, all_specomp};

use crate::exp::{
    collect_session, last_read_criteria, record_bug_region, record_parsec_region, replay_time,
    slice_pinball_replay, slice_timed,
};
use crate::{kb, secs};

/// Region lengths (main-thread instructions) for the Fig. 11/12 sweeps —
/// the paper's 10M..1B scaled down ~1000x.
pub const FIG11_LENGTHS: &[u64] = &[10_000, 50_000, 100_000, 500_000, 1_000_000];

/// Table 1: the bug inventory, with verification that each bug is
/// exposable and deterministically replayable.
pub fn table1() {
    println!("Table 1: Data race bugs used in our experiments");
    println!("{:-<100}", "");
    println!(
        "{:<10} {:<6} {:<28} {:<}",
        "Program", "Type", "Exposed via (iRoot)", "Bug Description"
    );
    for case in all_bugs() {
        let exposure = case.expose().expect("bug exposable");
        println!(
            "{:<10} {:<6} {:<28} {}",
            case.name,
            "Real*",
            format!("{} [{}]", exposure.iroot, exposure.error),
            case.description
        );
    }
    println!("(*) reproduced bug pattern; see DESIGN.md for the substitution mapping.");
}

fn bug_overhead_table(title: &str, whole: bool) {
    println!("{title}");
    println!("{:-<110}", "");
    println!(
        "{:<10} {:>12} {:>24} {:>12} {:>10} {:>12} {:>12}",
        "Program",
        "#executed",
        "#instr in slice pinball",
        "Logging(s)",
        "Space(KB)",
        "Replay(s)",
        "Slicing(s)"
    );
    for case in all_bugs() {
        let region = if whole {
            case.whole_region()
        } else {
            case.buggy_region()
        };
        let rr = record_bug_region(&case, region);
        let executed = rr.recording.region_instructions;
        let rep_t = replay_time(&rr.program, &rr.recording.pinball);
        let (session, _collect_t) =
            collect_session(&rr.program, &rr.recording.pinball, SlicerOptions::default());
        let failure = session.failure_record().expect("non-empty region").id;
        let (slice, slice_t) = slice_timed(&session, slicer::Criterion::Record { id: failure });
        let (slice_pb, _) = slice_pinball_replay(&session, &rr.recording.pinball, &slice);
        let kept = slice_pb.logged_instructions();
        println!(
            "{:<10} {:>12} {:>15} ({:>5.1}%) {:>12} {:>10} {:>12} {:>12}",
            case.name,
            executed,
            kept,
            100.0 * kept as f64 / executed as f64,
            secs(rr.log_time),
            kb(rr.space_bytes),
            secs(rep_t),
            secs(slice_t),
        );
    }
}

/// Table 2: time and space overhead with the buggy execution region
/// (root cause → failure point).
pub fn table2() {
    bug_overhead_table(
        "Table 2: Time and Space overhead for data race bugs with buggy execution region",
        false,
    );
}

/// Table 3: the same with the whole-program execution region.
pub fn table3() {
    bug_overhead_table(
        "Table 3: Time and Space overhead for data race bugs with whole program execution region",
        true,
    );
}

/// Figure 11: logging times for regions of varying sizes (8 PARSEC
/// programs, 'native'-like input, 4 threads).
pub fn fig11(lengths: &[u64]) {
    println!("Figure 11: Logging times (seconds, wall clock) vs region length (main thread)");
    println!("{:-<100}", "");
    print!("{:<15}", "program");
    for l in lengths {
        print!("{:>12}", format_len(*l));
    }
    println!();
    for p in all_parsec() {
        print!("{:<15}", format!("{} ({})", p.name, p.category));
        for &len in lengths {
            let rr = record_parsec_region(&p, 1_000, len);
            print!("{:>12}", secs(rr.log_time));
        }
        println!();
    }
}

/// Figure 12: replay times for the same pinballs.
pub fn fig12(lengths: &[u64]) {
    println!("Figure 12: Replay times (seconds, wall clock) vs region length (main thread)");
    println!("{:-<100}", "");
    print!("{:<15}", "program");
    for l in lengths {
        print!("{:>12}", format_len(*l));
    }
    println!();
    for p in all_parsec() {
        print!("{:<15}", format!("{} ({})", p.name, p.category));
        for &len in lengths {
            let rr = record_parsec_region(&p, 1_000, len);
            let t = replay_time(&rr.program, &rr.recording.pinball);
            print!("{:>12}", secs(t));
        }
        println!();
    }
}

/// Figure 13: reduction in slice sizes from pruning spurious save/restore
/// dependences (5 SPEC OMP analogs, 10 slices each, MaxSave = 10).
pub fn fig13(region_lengths: &[u64]) {
    println!(
        "Figure 13: Removal of spurious dependences - % reduction in slice sizes (10 slices, MaxSave=10)"
    );
    println!("{:-<80}", "");
    print!("{:<12}", "program");
    for l in region_lengths {
        print!("{:>16}", format!("{} instrs", format_len(*l)));
    }
    println!();
    let mut grand = vec![0.0f64; region_lengths.len()];
    for p in all_specomp() {
        print!("{:<12}", p.name);
        for (col, &len) in region_lengths.iter().enumerate() {
            // Iterations sized so each thread retires ~len instructions.
            let iters = (len / 20).max(10);
            let program = (p.build)(iters);
            let rec = pinplay::record_whole_program(
                &program,
                &mut minivm::RoundRobin::new(17),
                &mut minivm::LiveEnv::new(crate::exp::ENV_SEED),
                len * 40 + 1_000_000,
                p.name,
            )
            .expect("specomp records");
            let (session, _) = collect_session(&program, &rec.pinball, SlicerOptions::default());
            let mut total_pruned = 0usize;
            let mut total_unpruned = 0usize;
            for criterion in last_read_criteria(&session, 10) {
                let pruned = session.slice_with(
                    criterion,
                    SliceOptions {
                        prune_save_restore: true,
                        ..SliceOptions::new()
                    },
                );
                let unpruned = session.slice_with(
                    criterion,
                    SliceOptions {
                        prune_save_restore: false,
                        ..SliceOptions::new()
                    },
                );
                total_pruned += pruned.len();
                total_unpruned += unpruned.len();
            }
            let reduction = 100.0 * (1.0 - total_pruned as f64 / total_unpruned as f64);
            grand[col] += reduction;
            print!("{:>16}", format!("{reduction:.2}%"));
        }
        println!();
    }
    print!("{:<12}", "average");
    for g in &grand {
        print!("{:>16}", format!("{:.2}%", g / all_specomp().len() as f64));
    }
    println!();
}

/// Figure 14: execution slicing — average replay times for 10 slice
/// pinballs vs the full region pinball, and the average % of dynamic
/// instructions kept in the slice pinballs.
pub fn fig14(region_length: u64) {
    println!(
        "Figure 14: Execution slicing - avg replay times for 10 slices (regions of {} main-thread instructions)",
        format_len(region_length)
    );
    println!("{:-<100}", "");
    println!(
        "{:<15} {:>16} {:>16} {:>14} {:>16}",
        "program", "region replay(s)", "slice replay(s)", "% instrs kept", "replay speedup"
    );
    let mut sum_kept = 0.0;
    let mut sum_speedup = 0.0;
    let programs = all_parsec();
    for p in &programs {
        let rr = record_parsec_region(p, 1_000, region_length);
        let full_t = replay_time(&rr.program, &rr.recording.pinball);
        let (session, _) =
            collect_session(&rr.program, &rr.recording.pinball, SlicerOptions::default());
        let total = rr.recording.region_instructions;
        let mut kept_sum = 0u64;
        let mut slice_t_sum = 0.0f64;
        let criteria = last_read_criteria(&session, 10);
        let n = criteria.len().max(1) as f64;
        for criterion in criteria {
            let (slice, _) = slice_timed(&session, criterion);
            let (pb, t) = slice_pinball_replay(&session, &rr.recording.pinball, &slice);
            kept_sum += pb.logged_instructions();
            slice_t_sum += t.as_secs_f64();
        }
        let kept_pct = 100.0 * (kept_sum as f64 / n) / total as f64;
        let slice_t = slice_t_sum / n;
        let speedup = 100.0 * (1.0 - slice_t / full_t.as_secs_f64());
        sum_kept += kept_pct;
        sum_speedup += speedup;
        println!(
            "{:<15} {:>16} {:>16} {:>13.1}% {:>15.1}%",
            p.name,
            secs(full_t),
            format!("{slice_t:.3}"),
            kept_pct,
            speedup
        );
    }
    let n = programs.len() as f64;
    println!(
        "{:<15} {:>16} {:>16} {:>13.1}% {:>15.1}%",
        "average",
        "",
        "",
        sum_kept / n,
        sum_speedup / n
    );
}

/// §7 "Slicing overhead and precision": dynamic-information tracing time,
/// average slice size, and average slicing time for the PARSEC programs.
pub fn slicing_overhead(region_length: u64) {
    println!(
        "Slicing overhead (regions of {} main-thread instructions, 10 slices of last reads)",
        format_len(region_length)
    );
    println!("{:-<95}", "");
    println!(
        "{:<15} {:>14} {:>16} {:>18} {:>16}",
        "program", "trace time(s)", "avg slice size", "avg slice time(s)", "LP blocks skipped"
    );
    let mut trace_sum = 0.0;
    let mut size_sum = 0.0;
    let mut time_sum = 0.0;
    let programs = all_parsec();
    for p in &programs {
        let rr = record_parsec_region(p, 1_000, region_length);
        let (session, collect_t) =
            collect_session(&rr.program, &rr.recording.pinball, SlicerOptions::default());
        let criteria = last_read_criteria(&session, 10);
        let n = criteria.len().max(1) as f64;
        let mut sz = 0usize;
        let mut st = 0.0f64;
        let mut skipped = 0usize;
        for criterion in criteria {
            let (slice, t) = slice_timed(&session, criterion);
            sz += slice.len();
            st += t.as_secs_f64();
            skipped += slice.stats.blocks_skipped;
        }
        trace_sum += collect_t.as_secs_f64();
        size_sum += sz as f64 / n;
        time_sum += st / n;
        println!(
            "{:<15} {:>14} {:>16.0} {:>18.4} {:>16.0}",
            p.name,
            secs(collect_t),
            sz as f64 / n,
            st / n,
            skipped as f64 / n
        );
    }
    let n = programs.len() as f64;
    println!(
        "{:<15} {:>14.3} {:>16.0} {:>18.4}",
        "average",
        trace_sum / n,
        size_sum / n,
        time_sum / n
    );
}

fn format_len(l: u64) -> String {
    if l >= 1_000_000 {
        format!("{}M", l / 1_000_000)
    } else if l >= 1_000 {
        format!("{}k", l / 1_000)
    } else {
        l.to_string()
    }
}

/// Design-choice ablations called out in DESIGN.md: CFG refinement (§5.1),
/// thread clustering (§3), and LP block skipping, measured on the x264
/// analog (the one with indirect-jump dispatch).
pub fn ablations(region_length: u64) {
    use crate::timed;

    println!(
        "Ablations (x264 analog, region of {} main-thread instructions, slice at last read)",
        format_len(region_length)
    );
    println!("{:-<90}", "");
    let p = all_parsec()
        .into_iter()
        .find(|p| p.name == "x264")
        .expect("x264 present");
    let rr = record_parsec_region(&p, 1_000, region_length);
    let encoded = rr.program.symbol("encoded").expect("x264 has `encoded`");

    // 1. Indirect-jump CFG refinement on/off: slice the encoded total,
    //    whose chain crosses the frame-type dispatch (the §5.1 switch).
    for refine in [true, false] {
        let (session, collect_t) = collect_session(
            &rr.program,
            &rr.recording.pinball,
            SlicerOptions {
                refine_indirect: refine,
                ..SlicerOptions::default()
            },
        );
        let criterion = crate::exp::last_read_of_addr(&session, encoded).expect("encoded is read");
        let (slice, slice_t) = slice_timed(&session, criterion);
        println!(
            "refine_indirect={refine:<5}  slice size {:>8}  collect {:>8}s  slice {:>8}s",
            slice.len(),
            crate::secs(collect_t),
            crate::secs(slice_t),
        );
    }

    // 2. Clustering on/off: LP skip effectiveness and slice time.
    for cluster in [true, false] {
        let (session, _) = collect_session(
            &rr.program,
            &rr.recording.pinball,
            SlicerOptions {
                cluster,
                block_size: 256,
                ..SlicerOptions::default()
            },
        );
        let criterion = crate::exp::last_read_of_addr(&session, encoded).expect("encoded is read");
        let (slice, slice_t) = slice_timed(&session, criterion);
        println!(
            "cluster={cluster:<5}           slice size {:>8}  blocks skipped {:>6}  slice {:>8}s",
            slice.len(),
            slice.stats.blocks_skipped,
            crate::secs(slice_t),
        );
    }

    // 3. LP vs naive traversal.
    {
        let (session, _) =
            collect_session(&rr.program, &rr.recording.pinball, SlicerOptions::default());
        let criterion = crate::exp::last_read_of_addr(&session, encoded).expect("encoded is read");
        let (lp, lp_t) = timed(|| {
            slicer::compute_slice(
                session.trace(),
                criterion,
                session.pairs(),
                slicer::SliceOptions::default(),
            )
        });
        let (naive, naive_t) = timed(|| {
            slicer::compute_slice_naive(
                session.trace(),
                criterion,
                session.pairs(),
                slicer::SliceOptions::default(),
            )
        });
        assert_eq!(lp.records, naive.records, "LP must not change the slice");
        println!(
            "LP traversal: {:>8}s ({} blocks skipped)   naive: {:>8}s   (identical slices)",
            crate::secs(lp_t),
            lp.stats.blocks_skipped,
            crate::secs(naive_t),
        );
    }
}

/// §7's pinball-size observation: "The pinball size is *not* directly a
/// function of region length but depends on memory access pattern and
/// amount of thread interaction." Prints compressed pinball sizes across
/// region lengths for each program.
pub fn pinball_sizes(lengths: &[u64]) {
    println!("Pinball sizes (KB, compressed) vs region length (main thread)");
    println!("{:-<100}", "");
    print!("{:<15}", "program");
    for l in lengths {
        print!("{:>12}", format_len(*l));
    }
    println!();
    for p in all_parsec() {
        print!("{:<15}", p.name);
        for &len in lengths {
            let rr = record_parsec_region(&p, 1_000, len);
            print!("{:>12}", kb(rr.space_bytes));
        }
        println!();
    }
    println!(
        "(sizes track context switches and syscall volume, not raw length: compare\n\
         swaptions' syscall-heavy log against blackscholes' at the same length)"
    );
}
