//! Experiment primitives: record, replay, slice, relog — with timings.

use std::sync::Arc;
use std::time::Duration;

use maple::ActiveScheduler;
use minivm::{assemble, LiveEnv, NullTool, Program, RoundRobin};
use pinplay::{record_region, record_whole_program, Pinball, Recording, RegionSpec, Replayer};
use slicer::{Criterion, Slice, SliceSession, SlicerOptions};
use workloads::{BugCase, ParsecProgram};

use crate::timed;

/// Environment seed used throughout the experiments (fixed so reruns are
/// reproducible).
pub const ENV_SEED: u64 = 42;

/// A recorded region with capture-time measurements.
#[derive(Debug)]
pub struct RecordedRegion {
    /// The program the pinball belongs to.
    pub program: Arc<Program>,
    /// The capture result.
    pub recording: Recording,
    /// Wall-clock logging time, including pinball compression
    /// (the paper's "Logging Overhead Time").
    pub log_time: Duration,
    /// Compressed pinball size in bytes (the paper's "Space" column).
    pub space_bytes: usize,
}

/// Records a region of a PARSEC-analog program under round-robin
/// scheduling.
///
/// # Panics
///
/// Panics when the region cannot be captured (program too short for the
/// requested skip/length — callers size `units` with margin).
pub fn record_parsec_region(p: &ParsecProgram, skip: u64, length: u64) -> RecordedRegion {
    let units = workloads::units_for_main_instructions(skip + length + length / 2 + 1_000);
    let program = (p.build)(units);
    let region = RegionSpec::skip_length(skip, length);
    let max_steps = (skip + length) * 12 + 1_000_000;
    let ((recording, space_bytes), log_time) = timed(|| {
        let rec = record_region(
            &program,
            &mut RoundRobin::new(17),
            &mut LiveEnv::new(ENV_SEED),
            region,
            max_steps,
            p.name,
        )
        .expect("parsec region capture succeeds");
        // Logging time includes compression, as in the paper ("logging
        // (with bzip2 pinball compression) time").
        let bytes = rec.pinball.to_bytes().expect("pinball serializes").len();
        (rec, bytes)
    });
    RecordedRegion {
        program,
        recording,
        log_time,
        space_bytes,
    }
}

/// Records a region of a bug case under the Maple active scheduler that
/// exposes it.
///
/// # Panics
///
/// Panics when the bug cannot be exposed or the region not captured.
pub fn record_bug_region(case: &BugCase, region: RegionSpec) -> RecordedRegion {
    let iroot = case.exposing_iroot();
    let ((recording, space_bytes), log_time) = timed(|| {
        let rec = record_region(
            &case.program,
            &mut ActiveScheduler::new(iroot),
            &mut LiveEnv::new(0),
            region,
            10_000_000,
            case.name,
        )
        .expect("bug region capture succeeds");
        let bytes = rec.pinball.to_bytes().expect("pinball serializes").len();
        (rec, bytes)
    });
    RecordedRegion {
        program: Arc::clone(&case.program),
        recording,
        log_time,
        space_bytes,
    }
}

/// Replays a pinball to completion, returning the wall time.
pub fn replay_time(program: &Arc<Program>, pinball: &Pinball) -> Duration {
    let (_, t) = timed(|| {
        let mut rep = Replayer::new(Arc::clone(program), pinball);
        rep.run(&mut NullTool)
    });
    t
}

/// Collects the slicing session for a pinball, returning the collection
/// (dynamic-information tracing) time.
pub fn collect_session(
    program: &Arc<Program>,
    pinball: &Pinball,
    options: SlicerOptions,
) -> (SliceSession, Duration) {
    timed(|| SliceSession::collect(Arc::clone(program), pinball, options))
}

/// Criteria for "the last `n` read instructions (spread across threads)"
/// — the paper's slice-criterion recipe (§7).
pub fn last_read_criteria(session: &SliceSession, n: usize) -> Vec<Criterion> {
    let mut reads: Vec<_> = session
        .trace()
        .records()
        .iter()
        .filter(|r| {
            matches!(
                r.instr,
                minivm::Instr::Load { .. }
                    | minivm::Instr::Pop { .. }
                    | minivm::Instr::Cas { .. }
                    | minivm::Instr::AtomicAdd { .. }
            )
        })
        .map(|r| r.id)
        .collect();
    reads.sort_unstable();
    reads
        .into_iter()
        .rev()
        .take(n)
        .map(|id| Criterion::Record { id })
        .collect()
}

/// The last record that read the given memory address — for slicing a
/// specific shared variable (the GUI's "Variable" field).
pub fn last_read_of_addr(session: &SliceSession, addr: minivm::Addr) -> Option<Criterion> {
    session
        .trace()
        .records()
        .iter()
        .filter(|r| {
            r.use_keys(false)
                .any(|(k, _)| k == slicer::LocKey::Mem(addr))
        })
        .max_by_key(|r| r.id)
        .map(|r| Criterion::Record { id: r.id })
}

/// Computes a slice and the time it took.
pub fn slice_timed(session: &SliceSession, criterion: Criterion) -> (Slice, Duration) {
    timed(|| session.slice(criterion))
}

/// A four-thread "needle" workload: every thread spins `iters` iterations
/// of private arithmetic, while a six-record def chain threads a value
/// through the `needle` word to the final instruction. The backward slice
/// at the end touches a handful of records out of hundreds of thousands —
/// LP's worst case (it scans every block) and the sparse index's best.
pub fn four_thread_needle(iters: u64) -> Arc<Program> {
    Arc::new(
        assemble(&format!(
            r"
            .data
            needle: .word 0
            .text
            .func main
                movi r1, 3          ; chain: constant
                muli r2, r1, 5      ; chain: derived value
                la r3, needle
                store r2, r3, 0     ; chain: publish
                movi r1, {iters}
                spawn r10, worker, r1
                spawn r11, worker, r1
                spawn r12, worker, r1
                mov r0, r1
                call spin
                join r10
                join r11
                join r12
                load r4, r3, 0      ; chain: read back
                addi r5, r4, 7      ; chain: criterion
                halt
            .endfunc
            .func worker
                call spin
                halt
            .endfunc
            .func spin
                movi r2, 0
            loop:
                muli r4, r2, 7
                addi r4, r4, 13
                andi r4, r4, 0xff
                add r2, r2, r4
                subi r0, r0, 1
                bgti r0, 0, loop
                ret
            .endfunc
            ",
        ))
        .expect("needle workload assembles"),
    )
}

/// Records a [`four_thread_needle`] run and returns the raw pinball,
/// for experiments that replay the region directly (seek benchmarks)
/// rather than slicing it.
///
/// # Panics
///
/// Panics when the recording exceeds its step budget (never for sane
/// `iters`).
pub fn record_needle(iters: u64) -> (Arc<Program>, Pinball) {
    let program = four_thread_needle(iters);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(13),
        &mut LiveEnv::new(ENV_SEED),
        iters * 50 + 100_000,
        "needle",
    )
    .expect("needle capture succeeds");
    (program, rec.pinball)
}

/// Records and collects a [`four_thread_needle`] trace, returning the
/// session and the criterion at the final chain instruction.
///
/// # Panics
///
/// Panics when the recording exceeds its step budget (never for sane
/// `iters`).
pub fn needle_session(iters: u64, options: SlicerOptions) -> (SliceSession, Criterion) {
    let program = four_thread_needle(iters);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(13),
        &mut LiveEnv::new(ENV_SEED),
        iters * 50 + 100_000,
        "needle",
    )
    .expect("needle capture succeeds");
    let session = SliceSession::collect(Arc::clone(&program), &rec.pinball, options);
    let id = session
        .trace()
        .records()
        .last()
        .expect("trace not empty")
        .id;
    (session, Criterion::Record { id })
}

/// A four-thread "churn" workload: every thread loops `iters` calls to a
/// helper that saves r1, clobbers it, and restores it — a deep chain of
/// §5.2 save/restore pairs. The final instruction uses r1, whose real
/// definition precedes the loop, so resolving it must bypass all `iters`
/// pairs. The resulting slice is tiny, but an index-free traversal
/// re-walks the whole bypass chain on every query — the dependence
/// index's precomputed resolution collapses it to one lookup.
pub fn four_thread_churn(iters: u64) -> Arc<Program> {
    Arc::new(
        assemble(&format!(
            r"
            .text
            .func main
                movi r1, 3          ; the real definition the slice chases to
                movi r2, {iters}
                spawn r10, worker, r2
                spawn r11, worker, r2
                spawn r12, worker, r2
                mov r0, r2
                call churn_loop
                join r10
                join r11
                join r12
                addi r5, r1, 7      ; criterion: bypasses {iters} pairs
                halt
            .endfunc
            .func worker
                call churn_loop
                halt
            .endfunc
            .func churn_loop
            loop:
                call helper
                subi r0, r0, 1
                bgti r0, 0, loop
                ret
            .endfunc
            .func helper
                push r1
                movi r1, 9
                pop r1
                ret
            .endfunc
            ",
        ))
        .expect("churn workload assembles"),
    )
}

/// Records and collects a [`four_thread_churn`] trace, returning the
/// session and the criterion at main's final r1 use (the `addi` whose
/// resolution bypasses every save/restore pair).
///
/// # Panics
///
/// Panics when the recording exceeds its step budget (never for sane
/// `iters`).
pub fn churn_session(iters: u64, options: SlicerOptions) -> (SliceSession, Criterion) {
    let (_, session, criterion) = churn_parts(iters, options);
    (session, criterion)
}

/// Like [`churn_session`], but also returns the region pinball the
/// session was collected from — the full-replay baseline that relogging
/// (slice-pinball replay) is measured against.
///
/// # Panics
///
/// Panics when the recording exceeds its step budget (never for sane
/// `iters`).
pub fn churn_parts(iters: u64, options: SlicerOptions) -> (Pinball, SliceSession, Criterion) {
    let program = four_thread_churn(iters);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(13),
        &mut LiveEnv::new(ENV_SEED),
        iters * 50 + 100_000,
        "churn",
    )
    .expect("churn capture succeeds");
    let session = SliceSession::collect(Arc::clone(&program), &rec.pinball, options);
    let id = session
        .trace()
        .records()
        .iter()
        .rev()
        .find(|r| {
            r.tid == 0
                && r.use_keys(false)
                    .any(|(k, _)| k == slicer::LocKey::Reg(0, minivm::Reg(1)))
        })
        .expect("main uses r1 after the churn loop")
        .id;
    (rec.pinball, session, Criterion::Record { id })
}

/// Full execution-slice pipeline for one slice: exclusion regions →
/// relogging → slice pinball, returning the pinball and its replay time.
pub fn slice_pinball_replay(
    session: &SliceSession,
    region: &Pinball,
    slice: &Slice,
) -> (Pinball, Duration) {
    let (pb, _, _) = session.make_slice_pinball(region, slice);
    let t = replay_time(session.program(), &pb);
    (pb, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsec_region_capture_and_replay() {
        let p = &workloads::all_parsec()[0];
        let rr = record_parsec_region(p, 500, 2_000);
        assert!(rr.recording.region_instructions >= 2_000);
        assert!(rr.space_bytes > 0);
        let t = replay_time(&rr.program, &rr.recording.pinball);
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn bug_region_capture_reproduces_trap() {
        let case = workloads::pbzip2_like();
        let rr = record_bug_region(&case, case.buggy_region());
        assert!(matches!(
            rr.recording.pinball.exit,
            pinplay::RecordedExit::Trap(_)
        ));
        // Region starts at the root cause, so it is much shorter than the
        // whole execution.
        let whole = record_bug_region(&case, case.whole_region());
        assert!(rr.recording.region_instructions < whole.recording.region_instructions);
    }

    #[test]
    fn last_read_criteria_finds_loads() {
        let p = &workloads::all_parsec()[1];
        let rr = record_parsec_region(p, 100, 1_000);
        let (session, _) =
            collect_session(&rr.program, &rr.recording.pinball, SlicerOptions::default());
        let crits = last_read_criteria(&session, 10);
        assert_eq!(crits.len(), 10);
        let (slice, _) = slice_timed(&session, crits[0]);
        assert!(!slice.is_empty());
    }
}
