//! Fleet acceptance gate: cache-peer forwarding beats local recompute
//! and the whole fleet builds the dependence index exactly once.
//!
//! The scenario from the issue: 3 nodes, one hot digest owned by node A.
//! The hot question — the failure slice, whose *compute* is expensive
//! (trace collection + index build + traversal) but whose *answer* is
//! small — asked of a non-owner must answer via forwarding to A's warm
//! caches at least 10× faster than recomputing locally from scratch, and
//! come back byte-identical to a local [`DebugSession`]. Then 8 clients
//! fan 8 distinct criteria across all 3 nodes — and the fleet-wide count
//! of `DepIndex` builds must still be exactly one, because every
//! non-owner forwards criterion-keyed work to the owner instead of
//! collecting and indexing its own copy.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::exp::record_needle;
use drdebug::DebugSession;
use drserve::{connect, FleetClient, ServeConfig, Server, ServerHandle, SliceAt, WireSlice};
use minivm::Program;
use pinplay::Pinball;
use slicer::{Criterion, RecordId, SliceOptions};

const ITERS: u64 = 3_000;
const CRITERIA: usize = 8;
const CLIENTS: usize = 8;
const REQUIRED_SPEEDUP: f64 = 10.0;

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Node {
    server: Server,
    handle: ServerHandle,
}

impl Node {
    fn addr(&self) -> String {
        self.handle.addr().to_string()
    }
}

/// Boots a 3-node TCP fleet and blocks until gossip has melded the mesh.
fn fleet() -> Vec<Node> {
    let base = ServeConfig {
        shards: 2,
        max_sessions: 16,
        gossip_interval: Duration::from_millis(50),
        peer_fail_after: Duration::from_millis(600),
        ..ServeConfig::default()
    };
    let first = Server::new(ServeConfig {
        cluster: true,
        ..base.clone()
    });
    let handle = first.listen("127.0.0.1:0").expect("bind node 0");
    let seed = handle.addr().to_string();
    let mut nodes = vec![Node {
        server: first,
        handle,
    }];
    for i in 1..3 {
        let server = Server::new(ServeConfig {
            peers: vec![seed.clone()],
            ..base.clone()
        });
        let handle = server
            .listen("127.0.0.1:0")
            .unwrap_or_else(|e| panic!("bind node {i}: {e}"));
        nodes.push(Node { server, handle });
    }
    let deadline = Instant::now() + Duration::from_secs(15);
    for (i, node) in nodes.iter().enumerate() {
        while node.server.stats().cluster.nodes_alive < 3 {
            assert!(
                Instant::now() < deadline,
                "node {i}: fleet failed to converge"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    nodes
}

/// `CRITERIA` distinct record ids — the failure record (the hot
/// question) plus early-trace records — each with its locally computed
/// canonical slice bytes, the truth every fleet answer must match.
fn local_truth(program: &Arc<Program>, pinball: &Pinball) -> Vec<(RecordId, Vec<u8>)> {
    let mut local = DebugSession::new(Arc::clone(program), pinball.clone());
    let records = local.slicer().trace().records();
    let n = records.len();
    assert!(n > CRITERIA * 32, "trace too short for {CRITERIA} criteria");
    let step = n / 32;
    let mut ids: Vec<RecordId> = vec![records[n - 1].id];
    ids.extend((1..CRITERIA).map(|i| records[i * step].id));
    ids.into_iter()
        .map(|id| {
            let slice = local.slice_criterion(Criterion::Record { id }, SliceOptions::default());
            (id, WireSlice::from_slice(&slice).canonical_bytes())
        })
        .collect()
}

fn at(id: RecordId) -> SliceAt {
    SliceAt::Criterion {
        criterion: Criterion::Record { id },
    }
}

#[test]
fn forwarded_slice_beats_local_recompute_and_fleet_builds_one_index() {
    let (program, pinball) = record_needle(ITERS);
    let truth = local_truth(&program, &pinball);
    let (hot_id, hot_bytes) = (truth[0].0, truth[0].1.clone());

    // Cold baseline: what a node pays to answer the hot question locally
    // from scratch — fresh server per sample, so the request carries
    // trace collection, the DepIndex build, and the traversal.
    let cold = median_of(3, || {
        let server = Server::new(ServeConfig::default());
        let mut client = server.loopback_client();
        let up = client.upload(&program, &pinball).expect("upload");
        let session = client.open(up.digest).expect("open");
        let reply = client
            .compute_slice(session, at(hot_id), SliceOptions::default())
            .expect("slice");
        assert!(!reply.cached, "fresh server cannot have this cached");
    });

    let nodes = fleet();
    let mut fc = FleetClient::connect(&nodes[0].addr()).expect("fleet connect");
    let up = fc.upload(&program, &pinball).expect("upload");
    let owner_addr = fc.owner_of(up.digest);
    let owner_ix = nodes
        .iter()
        .position(|n| n.addr() == owner_addr)
        .expect("owner in fleet");
    let non_owners: Vec<usize> = (0..nodes.len()).filter(|&i| i != owner_ix).collect();

    // Warm the owner for every criterion — the fleet's one index build.
    let session = fc.open(up.digest).expect("open at owner");
    for (id, expected) in &truth {
        let reply = fc
            .compute_slice(&session, at(*id), SliceOptions::default())
            .expect("warm owner");
        assert_eq!(&reply.slice.canonical_bytes(), expected);
    }
    fc.close(&session).expect("close");

    // The hot question asked of each non-owner: the first ask forwards
    // to the owner's warm cache. Every sample — even the slowest — must
    // clear the bar against cold local recompute.
    let mut slowest = Duration::ZERO;
    for &ix in &non_owners {
        let mut client = connect(nodes[ix].addr()).expect("connect non-owner");
        let session = client.open(up.digest).expect("open (fetch-through)");
        let started = Instant::now();
        let reply = client
            .compute_slice(session, at(hot_id), SliceOptions::default())
            .expect("forwarded slice");
        let forwarded = started.elapsed();
        slowest = slowest.max(forwarded);
        assert!(!reply.cached, "first ask at node {ix} forwards");
        assert_eq!(
            reply.slice.canonical_bytes(),
            hot_bytes,
            "forwarded slice differs from the local computation"
        );
        // Repeats answer from this node's own peer cache, no wire hop.
        let forwards_before = nodes[ix].server.stats().cluster.forwards;
        let repeat = client
            .compute_slice(session, at(hot_id), SliceOptions::default())
            .expect("repeat");
        assert!(repeat.cached, "repeat must hit the local peer cache");
        assert_eq!(repeat.slice.canonical_bytes(), hot_bytes);
        assert_eq!(
            nodes[ix].server.stats().cluster.forwards,
            forwards_before,
            "repeat must not forward"
        );
        client.close(session).expect("close");
    }
    let speedup = cold.as_secs_f64() / slowest.as_secs_f64().max(1e-12);
    println!(
        "cold local recompute {cold:?} vs slowest forwarded warm ask {slowest:?}: \
         {speedup:.1}x (required {REQUIRED_SPEEDUP}x)"
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "forwarding not fast enough: cold {cold:?} / forward {slowest:?} = \
         {speedup:.1}x, need {REQUIRED_SPEEDUP}x"
    );

    // Fan out: 8 clients × 8 criteria spread across all 3 nodes.
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = nodes[c % nodes.len()].addr();
            let truth = &truth;
            let digest = up.digest;
            scope.spawn(move || {
                let mut client = connect(addr).expect("client connect");
                let session = client.open(digest).expect("open");
                for (id, expected) in truth {
                    let reply = client
                        .compute_slice(session, at(*id), SliceOptions::default())
                        .expect("fanned slice");
                    assert_eq!(&reply.slice.canonical_bytes(), expected);
                }
                client.close(session).expect("close");
            });
        }
    });

    // The headline invariant: 3 nodes × 8 clients × 8 criteria, and the
    // dependence index was built exactly once anywhere in the fleet.
    let builds: u64 = nodes
        .iter()
        .map(|n| n.server.stats().index_cache.misses)
        .sum();
    assert_eq!(builds, 1, "exactly one DepIndex build fleet-wide");
}
