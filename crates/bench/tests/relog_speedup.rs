//! Acceptance: replaying a *slice pinball* — the relogged recording that
//! keeps only the slice statements plus forced synchronization — is at
//! least 10× faster than replaying the full region it was cut from, on a
//! 100k-record, four-thread trace.
//!
//! The workload is [`four_thread_churn`]: every thread runs thousands of
//! save/restore pairs the slice excludes, so the relog turns almost the
//! entire event log into injections and the slice pinball retires a tiny
//! fraction of the region's instructions. The correctness half lives in
//! the same test as the timing gate: the slice pinball must replay to
//! completion retiring exactly the kept instruction count, so the speed
//! cannot come from a truncated or diverging replay.
//!
//! [`four_thread_churn`]: bench::exp::four_thread_churn

use std::time::{Duration, Instant};

use bench::exp::{churn_parts, replay_time, slice_pinball_replay};
use slicer::{compute_slice_indexed, DepIndex, SliceOptions, SlicerOptions};

const ITERS: u64 = 4_000;
const REQUIRED_SPEEDUP: f64 = 10.0;

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[test]
fn slice_pinball_replays_at_least_10x_faster_than_the_full_region() {
    let (pinball, session, criterion) = churn_parts(ITERS, SlicerOptions::default());
    let records = session.trace().records().len();
    let threads: std::collections::HashSet<_> =
        session.trace().records().iter().map(|r| r.tid).collect();
    assert!(records >= 100_000, "trace too small: {records} records");
    assert_eq!(threads.len(), 4, "churn is a four-thread workload");

    let opts = SliceOptions::default();
    let index = DepIndex::build(session.trace(), session.pairs(), &opts);
    let slice = compute_slice_indexed(&index, criterion);
    assert!(!slice.records.is_empty());

    let program = session.program();
    let full_instructions = pinball.logged_instructions();
    let (slice_pb, _first_replay) = slice_pinball_replay(&session, &pinball, &slice);
    let kept = slice_pb.logged_instructions();
    assert!(
        kept * 10 <= full_instructions,
        "relog keeps a small fraction: {kept} of {full_instructions}"
    );

    // Correctness before speed: the slice pinball replays to completion
    // retiring exactly the kept count (a diverging replay would trap).
    let mut rep = pinplay::Replayer::new(std::sync::Arc::clone(program), &slice_pb);
    rep.run(&mut minivm::NullTool);
    assert!(rep.finished(), "slice pinball replays to completion");
    assert_eq!(rep.replayed_instructions(), kept);

    let full = median_of(3, || {
        replay_time(program, &pinball);
    });
    let sliced = median_of(3, || {
        replay_time(program, &slice_pb);
    });

    let speedup = full.as_secs_f64() / sliced.as_secs_f64().max(1e-12);
    println!(
        "full region {full:?} ({full_instructions} instr) vs slice pinball {sliced:?} \
         ({kept} instr): {speedup:.1}x (required {REQUIRED_SPEEDUP}x)"
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "slice pinball not fast enough: full {full:?} / sliced {sliced:?} = {speedup:.1}x, \
         need {REQUIRED_SPEEDUP}x"
    );
}
