//! Golden-fixture corpus regression gate.
//!
//! Every fixture committed under `tests/corpus/<name>/` (written by
//! `drdebug_cli <case> --emit-test <name>`) must keep parsing, replay to
//! the same state digest, and re-slice to byte-identical canonical wire
//! bytes. A failure here means the container codec, the replayer, or the
//! slicer changed observable behaviour on a real recording.

use std::sync::Arc;

use bench::corpus::{corpus_dir, emit_fixture_in, verify_fixture_in};
use minivm::{LiveEnv, RoundRobin};
use pinplay::{record_whole_program, PinballContainer};

#[test]
fn committed_fixtures_replay_and_slice_byte_identically() {
    let dir = corpus_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(
        !names.is_empty(),
        "the corpus holds at least the fig8 fixture"
    );
    for name in &names {
        verify_fixture_in(&dir, name).unwrap_or_else(|e| panic!("golden fixture drifted: {e}"));
    }
    println!("verified {} golden fixtures: {names:?}", names.len());
}

#[test]
fn emit_then_verify_roundtrips_and_catches_tampering() {
    // A fresh fig8 recording — the same deterministic capture drdebug_cli
    // performs — emitted into a scratch directory.
    let program = workloads::fig8_save_restore();
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(8),
        &mut LiveEnv::with_inputs(0, [1]),
        100_000,
        "fig8",
    )
    .expect("fig8 records");
    let container = PinballContainer::with_checkpoints(rec.pinball, &Arc::clone(&program), 64);
    let mut base = std::env::temp_dir();
    base.push(format!("drdebug_corpus_test_{}", std::process::id()));
    let name = "fig8-scratch";
    let dir = emit_fixture_in(&base, name, "fig8", &program, &container).expect("fixture emits");
    verify_fixture_in(&base, name).expect("a freshly emitted fixture verifies");

    // Tampering with any committed byte is caught and named, not ignored.
    let pinball_path = dir.join("pinball.drpb");
    let mut bytes = std::fs::read(&pinball_path).expect("fixture container reads");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&pinball_path, &bytes).expect("tampered container writes");
    let err = verify_fixture_in(&base, name).expect_err("tampering is detected");
    assert!(
        err.contains("no longer parses") || err.contains("drifted"),
        "unexpected tamper report: {err}"
    );
    std::fs::remove_dir_all(&base).ok();
}
