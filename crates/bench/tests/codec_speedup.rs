//! Acceptance gates for the container codecs: on a >=100k-event
//! four-thread pinball,
//!
//! - a v3 save + load cycle (binser payloads, parallel chunk pipeline)
//!   must be at least 3x faster than the v2 cycle (JSON payloads), and
//! - a v4 zero-copy load ([`ContainerView::from_bytes`]: columnar
//!   events, shared dictionary, no owned event tree) must be at least
//!   5x faster than the v3 full decode, with v4 emitting no more bytes
//!   than v3.
//!
//! Correctness rides along: every generation round-trips the container
//! exactly and the content digest is identical across v2, v3, v4, the
//! zero-copy view, and the paged (mapped) loader — the digest is a
//! property of the recording, never of the encoding.

use std::time::{Duration, Instant};

use bench::exp::{four_thread_needle, ENV_SEED};
use minivm::{LiveEnv, RoundRobin};
use pinplay::{record_whole_program, ContainerView, PinballContainer, DEFAULT_CHECKPOINT_INTERVAL};

const ITERS: u64 = 4_500;

fn best_of(n: usize, mut f: impl FnMut()) -> Duration {
    (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .min()
        .expect("n > 0")
}

#[test]
fn codec_generations_hold_their_speed_and_size_gates() {
    // Quantum 1 forces a scheduling decision per instruction, so the
    // event log grows with the instruction count: the worst case for
    // container i/o and the reason the codecs exist.
    let program = four_thread_needle(ITERS);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(1),
        &mut LiveEnv::new(ENV_SEED),
        ITERS * 60 + 200_000,
        "codec-gate",
    )
    .expect("codec workload records");
    let events = rec.pinball.events.len();
    assert!(
        events >= 100_000,
        "need a >= 100k-event pinball, got {events}"
    );
    let container =
        PinballContainer::with_checkpoints(rec.pinball, &program, DEFAULT_CHECKPOINT_INTERVAL);

    // Correctness before speed: every generation round-trips exactly and
    // each rewrite of the wire format must not grow the file.
    let v4 = container.to_bytes().expect("v4 encodes");
    let v3 = container.to_bytes_v3().expect("v3 encodes");
    let v2 = container.to_bytes_v2().expect("v2 encodes");
    assert!(
        v3.len() <= v2.len(),
        "v3 must not be larger: v3 {} bytes vs v2 {} bytes",
        v3.len(),
        v2.len()
    );
    assert!(
        v4.len() <= v3.len(),
        "v4 must not be larger: v4 {} bytes vs v3 {} bytes",
        v4.len(),
        v3.len()
    );
    let digest = container.digest();
    for (tag, bytes) in [("v4", &v4), ("v3", &v3), ("v2", &v2)] {
        let loaded = PinballContainer::from_bytes(bytes).expect("chunked container loads");
        assert_eq!(loaded, container, "{tag} load must reproduce the container");
        assert_eq!(loaded.digest(), digest, "{tag} digest must be format-free");
    }

    // The zero-copy view and the paged loader agree too: same digest,
    // no materialized event tree in the way.
    let view = ContainerView::from_bytes(&v4).expect("v4 view loads");
    assert_eq!(view.digest(), digest, "view digest must be format-free");
    let mapped_path =
        std::env::temp_dir().join(format!("pinplay-codec-gate-{}.drpb", std::process::id()));
    std::fs::write(&mapped_path, &v4).expect("writes mapped gate file");
    let mapped = PinballContainer::open_mapped(&mapped_path).expect("v4 maps");
    assert_eq!(
        mapped.digest().expect("mapped digest"),
        digest,
        "mapped digest must be format-free"
    );
    std::fs::remove_file(&mapped_path).ok();

    // Gate 1: the binser rewrite. v3 save+load >= 3x faster than v2.
    let v2_time = best_of(3, || {
        let bytes = container.to_bytes_v2().expect("v2 encodes");
        std::hint::black_box(PinballContainer::from_bytes(&bytes).expect("v2 loads"));
    });
    let v3_time = best_of(3, || {
        let bytes = container.to_bytes_v3().expect("v3 encodes");
        std::hint::black_box(PinballContainer::from_bytes(&bytes).expect("v3 loads"));
    });
    assert!(
        v2_time >= v3_time * 3,
        "v3 save+load must be >= 3x faster on {events} events: \
         v2 {v2_time:?} vs v3 {v3_time:?}"
    );

    // Gate 2: the columnar rewrite. Loading a v4 container into the
    // zero-copy view — the path the replayer, slicer, and relogger now
    // consume — must be >= 5x faster than fully decoding the v3 bytes.
    let v3_load = best_of(5, || {
        std::hint::black_box(PinballContainer::from_bytes(&v3).expect("v3 loads"));
    });
    let v4_load = best_of(5, || {
        std::hint::black_box(ContainerView::from_bytes(&v4).expect("v4 view loads"));
    });
    assert!(
        v3_load >= v4_load * 5,
        "v4 zero-copy load must be >= 5x faster than the v3 decode on \
         {events} events: v3 {v3_load:?} vs v4 {v4_load:?}"
    );
}
