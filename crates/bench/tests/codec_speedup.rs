//! Acceptance gate for the binary record codec: on a >=100k-event
//! four-thread pinball, a v3 save + load cycle (binser payloads,
//! parallel chunk pipeline) must be at least 3x faster than the v2
//! cycle (JSON payloads), emit no more bytes, and round-trip the
//! container exactly.

use std::time::{Duration, Instant};

use bench::exp::{four_thread_needle, ENV_SEED};
use minivm::{LiveEnv, RoundRobin};
use pinplay::{record_whole_program, PinballContainer, DEFAULT_CHECKPOINT_INTERVAL};

const ITERS: u64 = 4_500;

fn best_of(n: usize, mut f: impl FnMut()) -> Duration {
    (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .min()
        .expect("n > 0")
}

#[test]
fn v3_save_load_is_at_least_3x_faster_than_v2() {
    // Quantum 1 forces a scheduling decision per instruction, so the
    // event log grows with the instruction count: the worst case for
    // container i/o and the reason the codec exists.
    let program = four_thread_needle(ITERS);
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(1),
        &mut LiveEnv::new(ENV_SEED),
        ITERS * 60 + 200_000,
        "codec-gate",
    )
    .expect("codec workload records");
    let events = rec.pinball.events.len();
    assert!(
        events >= 100_000,
        "need a >= 100k-event pinball, got {events}"
    );
    let container =
        PinballContainer::with_checkpoints(rec.pinball, &program, DEFAULT_CHECKPOINT_INTERVAL);

    // Correctness before speed: both formats round-trip exactly, and the
    // binary encoding is never larger than the JSON one.
    let v3 = container.to_bytes().expect("v3 encodes");
    let v2 = container.to_bytes_v2().expect("v2 encodes");
    assert!(
        v3.len() <= v2.len(),
        "v3 must not be larger: v3 {} bytes vs v2 {} bytes",
        v3.len(),
        v2.len()
    );
    let loaded = PinballContainer::from_bytes(&v3).expect("v3 loads");
    assert_eq!(loaded, container, "v3 load must reproduce the container");
    assert_eq!(
        PinballContainer::from_bytes(&v2).expect("v2 loads"),
        container,
        "v2 load must reproduce the container"
    );

    let v2_time = best_of(3, || {
        let bytes = container.to_bytes_v2().expect("v2 encodes");
        std::hint::black_box(PinballContainer::from_bytes(&bytes).expect("v2 loads"));
    });
    let v3_time = best_of(3, || {
        let bytes = container.to_bytes().expect("v3 encodes");
        std::hint::black_box(PinballContainer::from_bytes(&bytes).expect("v3 loads"));
    });
    assert!(
        v2_time >= v3_time * 3,
        "v3 save+load must be >= 3x faster on {events} events: \
         v2 {v2_time:?} vs v3 {v3_time:?}"
    );
}
