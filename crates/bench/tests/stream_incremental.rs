//! Acceptance gate for streaming capture: on a 112k-record churn trace
//! delivered in 16 chunks, the first slice after the final chunk lands
//! must answer at least 5× faster with an incrementally-maintained
//! [`DepIndex`] (`extend` + `append` over the suffix) than a from-scratch
//! rebuild — and produce the byte-identical slice. A second test drives a
//! real server and proves a client can obtain a correct slice of the
//! first 25% of the trace while the remaining 75% has not been uploaded.
//!
//! Both paths share the same replay-and-collect cost (replay determinism
//! means a re-collection returns the prefix records unchanged), so the
//! gate times exactly the work `DepIndex::append` saves: trace extension,
//! suffix interning and edge fill versus a full rebuild.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::exp::churn_parts;
use drserve::{ServeConfig, Server, SliceAt, WireSlice};
use pinplay::{PinballContainer, StreamReader, StreamWriter, DEFAULT_CHECKPOINT_INTERVAL};
use slicer::{
    compute_slice_indexed, Criterion, DepIndex, GlobalTrace, LocKey, RecordId, Slice, SliceOptions,
    SliceSession, SlicerOptions,
};

const ITERS: u64 = 4_000;
const CHUNKS: usize = 16;
const REQUIRED_SPEEDUP: f64 = 5.0;

/// Streaming collection options: clustering off so record positions are
/// stable under append — the same options drserve's `SliceStream` uses.
fn collect_opts() -> SlicerOptions {
    SlicerOptions {
        cluster: false,
        ..SlicerOptions::default()
    }
}

/// The slice's content — criterion, records, and both edge sets in
/// canonical order — as bytes. Stats are advisory and excluded.
fn canonical_content(slice: &Slice) -> Vec<u8> {
    let mut records: Vec<RecordId> = slice.records.iter().copied().collect();
    records.sort_unstable();
    let mut data: Vec<(RecordId, RecordId, LocKey)> = slice
        .data_edges
        .iter()
        .map(|e| (e.user, e.def, e.key))
        .collect();
    data.sort_unstable();
    let mut control = slice.control_edges.clone();
    control.sort_unstable();
    serde_json::to_vec(&(slice.criterion, records, data, control)).expect("slice serializes")
}

/// Minimum of the samples — the noise-robust estimator for "how fast is
/// this work", since scheduling stalls and cold pages only ever add time.
fn best(samples: Vec<Duration>) -> Duration {
    samples.into_iter().min().expect("at least one sample")
}

#[test]
fn first_slice_after_the_final_chunk_is_5x_faster_incrementally() {
    let (pinball, session, criterion) = churn_parts(ITERS, collect_opts());
    let program = Arc::clone(session.program());
    let records = session.trace().records();
    let block = session.trace().block_size();
    let total = records.len();
    assert!(total >= 100_000, "churn trace too small: {total} records");

    // Chunk the recording exactly as a streaming upload would, and
    // re-collect the 15-chunk prefix the way the server does: absorb the
    // chunks, take the partial container, replay and collect it.
    let container =
        PinballContainer::with_checkpoints(pinball, &program, DEFAULT_CHECKPOINT_INTERVAL);
    let writer = StreamWriter::new(&container).expect("container streams");
    let pieces = writer.chunks(CHUNKS);
    assert_eq!(
        pieces.len(),
        CHUNKS,
        "churn recording has >= 16 chunk groups"
    );
    let mut reader = StreamReader::default();
    for piece in &pieces[..CHUNKS - 1] {
        reader.absorb(piece).expect("prefix chunk absorbs");
    }
    let prefix = reader.partial_container().expect("prefix is collectible");
    let psession = SliceSession::collect(Arc::clone(&program), &prefix.pinball, collect_opts());
    let done = psession.trace().records().len();
    assert!(
        done < total && done > total / 2,
        "final chunk leaves a real suffix: {done}/{total} records in the prefix"
    );
    // Replay determinism: the prefix collection is the full collection's
    // prefix, record for record — the invariant `append` builds on.
    assert_eq!(psession.trace().records(), &records[..done]);

    let opts = SliceOptions::default();

    // From-scratch: what a server without `DepIndex::append` pays after
    // the final chunk lands — rebuild the trace and index over all 16
    // chunks, then slice.
    let mut scratch_samples = Vec::new();
    let mut scratch_slice = None;
    let mut scratch_index = None;
    for _ in 0..4 {
        let started = Instant::now();
        let trace = GlobalTrace::build_with(records.to_vec(), block, false, false);
        let index = DepIndex::build(&trace, session.pairs(), &opts);
        let slice = compute_slice_indexed(&index, criterion);
        scratch_samples.push(started.elapsed());
        scratch_slice = Some(slice);
        scratch_index = Some(index);
    }
    let scratch = best(scratch_samples);
    let scratch_slice = scratch_slice.expect("scratch slice computed");
    let scratch_index = scratch_index.expect("scratch index built");

    // Incremental: the index over chunks 0..15 already exists (it was
    // maintained as the chunks arrived); the final chunk pays only
    // extend + append + slice. The prefix build is untimed setup.
    let mut incremental_samples = Vec::new();
    let mut incremental_slice = None;
    let mut incremental_index = None;
    for _ in 0..4 {
        let mut trace =
            GlobalTrace::build_with(psession.trace().records().to_vec(), block, false, false);
        let mut index = DepIndex::build(&trace, psession.pairs(), &opts);
        let started = Instant::now();
        trace.extend(records[done..].to_vec());
        index.append(&trace, session.pairs(), &opts);
        let slice = compute_slice_indexed(&index, criterion);
        incremental_samples.push(started.elapsed());
        incremental_slice = Some(slice);
        incremental_index = Some(index);
    }
    let incremental = best(incremental_samples);
    let incremental_slice = incremental_slice.expect("incremental slice computed");
    let incremental_index = incremental_index.expect("incremental index built");

    // The speed must not come from computing a different answer: the
    // appended index is graph-identical to the rebuilt one, and the
    // slices are content-identical.
    assert!(
        incremental_index.same_graph(&scratch_index),
        "appended index must equal the from-scratch index"
    );
    assert_eq!(
        canonical_content(&incremental_slice),
        canonical_content(&scratch_slice),
        "incremental slice must be byte-identical to the rebuilt one"
    );

    let speedup = scratch.as_secs_f64() / incremental.as_secs_f64().max(1e-12);
    println!(
        "time to first slice after chunk {CHUNKS}: rebuild {scratch:?} vs \
         incremental {incremental:?} = {speedup:.1}x (required {REQUIRED_SPEEDUP}x; \
         {} suffix records appended onto {done})",
        total - done,
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "incremental append not fast enough: rebuild {scratch:?} / \
         incremental {incremental:?} = {speedup:.1}x, need {REQUIRED_SPEEDUP}x"
    );
}

#[test]
fn quarter_prefix_slices_correctly_while_the_rest_is_still_uploading() {
    let (pinball, session, _) = churn_parts(ITERS, collect_opts());
    let program = Arc::clone(session.program());
    let total = session.trace().records().len();
    let container =
        PinballContainer::with_checkpoints(pinball, &program, DEFAULT_CHECKPOINT_INTERVAL);
    let writer = StreamWriter::new(&container).expect("container streams");
    let pieces = writer.chunks(CHUNKS);
    let quarter = CHUNKS / 4;

    let server = Server::new(ServeConfig::default());
    let mut uploader = server.loopback_client();
    let stream = 7;
    uploader
        .begin_stream(stream, &program, None)
        .expect("stream opens");
    for (seq, piece) in pieces[..quarter].iter().enumerate() {
        uploader
            .append_chunk(stream, seq as u32, piece.to_vec())
            .expect("quarter chunk lands");
    }

    // Mirror the absorbed quarter locally to know the expected answer.
    let mut mirror = StreamReader::default();
    for piece in &pieces[..quarter] {
        mirror.absorb(piece).expect("mirror absorbs");
    }
    let prefix = mirror.partial_container().expect("quarter is collectible");
    let qsession = SliceSession::collect(Arc::clone(&program), &prefix.pinball, collect_opts());
    let qrecords = qsession.trace().records().len();
    assert!(
        qrecords > total / 8 && qrecords < total / 2,
        "the quarter prefix is a real prefix: {qrecords}/{total} records"
    );
    let criterion = Criterion::Record {
        id: qsession.failure_record().expect("quarter has records").id,
    };
    let opts = SliceOptions::default();
    let qindex = DepIndex::build(qsession.trace(), qsession.pairs(), &opts);
    let expected = WireSlice::from_slice(&compute_slice_indexed(&qindex, criterion));

    // A second client slices the unsealed stream: 75% of the trace has
    // not been sent, yet the quarter-prefix answer is already correct.
    let mut slicer_client = server.loopback_client();
    let reply = slicer_client
        .slice_stream(stream, SliceAt::Criterion { criterion }, opts)
        .expect("mid-upload slice answers");
    assert_eq!(
        reply.slice.canonical_bytes(),
        expected.canonical_bytes(),
        "mid-upload slice must be byte-identical to a local slice of the prefix"
    );

    // The rest of the upload lands and seals to the batch digest.
    for (seq, piece) in pieces.iter().enumerate().skip(quarter) {
        uploader
            .append_chunk(stream, seq as u32, piece.to_vec())
            .expect("remaining chunk lands");
    }
    let up = uploader
        .seal_stream(stream, writer.footer().to_vec())
        .expect("stream seals");
    assert_eq!(up.digest, container.digest(), "streamed == batch digest");
}
