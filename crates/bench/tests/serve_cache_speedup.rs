//! Acceptance: a warm slice-cache hit answers at least 10× faster than a
//! cold compute.
//!
//! The whole point of the content-addressed cache is that the second
//! debug iteration asking the same question skips trace collection and
//! graph traversal entirely — the server answers from the canonical
//! cached slice. "Cold" here is honest: a fresh server per sample, so
//! the request pays collection plus slicing, as any first-ever request
//! does. "Warm" is the same request against a long-lived server whose
//! cache already holds the answer.

use std::time::{Duration, Instant};

use bench::exp::record_needle;
use drserve::{ServeConfig, Server, SliceAt};
use slicer::SliceOptions;

const ITERS: u64 = 3_000;
const REQUIRED_SPEEDUP: f64 = 10.0;

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[test]
fn warm_cache_hit_is_at_least_10x_faster_than_cold_compute() {
    let (program, pinball) = record_needle(ITERS);

    let cold = median_of(3, || {
        let server = Server::new(ServeConfig::default());
        let mut client = server.loopback_client();
        let up = client.upload(&program, &pinball).expect("upload");
        let session = client.open(up.digest).expect("open");
        let reply = client
            .compute_slice(session, SliceAt::Failure, SliceOptions::default())
            .expect("slice");
        assert!(!reply.cached, "fresh server cannot have this slice cached");
    });

    let server = Server::new(ServeConfig::default());
    let mut client = server.loopback_client();
    let up = client.upload(&program, &pinball).expect("upload");
    let session = client.open(up.digest).expect("open");
    let first = client
        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
        .expect("slice");
    assert!(!first.cached, "first request computes and fills the cache");

    let warm = median_of(15, || {
        let reply = client
            .compute_slice(session, SliceAt::Failure, SliceOptions::default())
            .expect("slice");
        assert!(reply.cached, "warm request must be served from the cache");
        assert_eq!(
            reply.slice.canonical_bytes(),
            first.slice.canonical_bytes(),
            "cached slice is byte-identical to the computed one"
        );
    });

    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    println!(
        "cold compute {:?} vs warm cache hit {:?}: {speedup:.1}x \
         (required {REQUIRED_SPEEDUP}x)",
        cold, warm
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "cache hit not fast enough: cold {cold:?} / warm {warm:?} = {speedup:.1}x, \
         need {REQUIRED_SPEEDUP}x"
    );

    let stats = client.stats().expect("stats");
    assert!(
        stats.cache.hits >= 15,
        "hits recorded: {}",
        stats.cache.hits
    );
    assert_eq!(stats.cache.entries, 1, "one distinct question asked");
}
