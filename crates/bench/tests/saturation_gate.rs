//! CI gate for the sharded server's saturation behavior.
//!
//! Three properties must hold, or the sharding/batching refactor has
//! regressed:
//!
//! 1. **Throughput**: a pipelined fleet sustains a large multiple of the
//!    single-client ping-pong baseline, with bounded window latency.
//!    Thresholds are relaxed under `cfg(debug_assertions)` — unoptimized
//!    builds measure the compiler, not the server.
//! 2. **No silent loss**: the fleet config admits the entire in-flight
//!    volume, so zero requests may be shed, every reply must arrive, and
//!    the cross-shard rollup must equal the sum of the per-shard stats.
//! 3. **Correctness under the new path**: a slice computed through the
//!    sharded server — cold, then warm from the cache — is byte-identical
//!    to the same slice computed by a local [`drdebug::DebugSession`].

use std::sync::Arc;

use bench::exp::record_needle;
use bench::serveload::{fleet_config, run_saturation};
use drdebug::DebugSession;
use drserve::{ServeConfig, Server, SliceAt};
use slicer::{Criterion, SliceOptions};

#[cfg(not(debug_assertions))]
const MIN_SPEEDUP: f64 = 10.0;
#[cfg(not(debug_assertions))]
const MAX_P99_MICROS: u128 = 10_000;
#[cfg(debug_assertions)]
const MIN_SPEEDUP: f64 = 3.0;
#[cfg(debug_assertions)]
const MAX_P99_MICROS: u128 = 50_000;

#[test]
fn saturated_fleet_beats_pingpong_baseline_without_shedding() {
    let (connections, depth, rounds) = if cfg!(debug_assertions) {
        (16, 8, 20)
    } else {
        (32, 8, 50)
    };
    let report = run_saturation(connections, depth, rounds);
    eprintln!(
        "saturation gate: baseline {:.0} req/s, fleet {:.0} req/s ({:.1}x), \
         p99 window {} us, {} shards, {} batches, {} shed",
        report.baseline_rps,
        report.fleet_rps,
        report.speedup,
        report.p99.as_micros(),
        report.stats.shards.len(),
        report.stats.shards.iter().map(|s| s.batches).sum::<u64>(),
        report.stats.shed,
    );

    assert!(
        report.speedup >= MIN_SPEEDUP,
        "fleet throughput {:.0} req/s is only {:.1}x the {:.0} req/s baseline (need {MIN_SPEEDUP}x)",
        report.fleet_rps,
        report.speedup,
        report.baseline_rps,
    );
    assert!(
        report.p99.as_micros() < MAX_P99_MICROS,
        "p99 window latency {} us exceeds {MAX_P99_MICROS} us",
        report.p99.as_micros(),
    );

    // No silent loss: everything was admitted and answered. The measured
    // rounds count reply frames without decoding them, so the server's own
    // error counter is the witness that every answer was a real response.
    assert_eq!(report.stats.shed, 0, "fleet config must admit everything");
    assert_eq!(report.stats.errors, 0, "no request may error under load");
    assert_eq!(
        report.total_requests,
        (rounds * connections * depth) as u64,
        "every request must be answered"
    );

    // The rollup is an exact sum of the per-shard breakdown.
    let s = &report.stats;
    assert!(!s.shards.is_empty(), "per-shard breakdown must be attached");
    assert_eq!(s.requests, s.shards.iter().map(|x| x.requests).sum::<u64>());
    assert_eq!(s.errors, s.shards.iter().map(|x| x.errors).sum::<u64>());
    assert_eq!(s.shed, s.shards.iter().map(|x| x.shed).sum::<u64>());
    assert_eq!(
        s.sessions.opened_total,
        s.shards
            .iter()
            .map(|x| x.sessions.opened_total)
            .sum::<u64>()
    );
    assert!(
        s.shards.iter().map(|x| x.batches).sum::<u64>() > 0,
        "the fleet must have been batch-drained"
    );
}

#[test]
fn sharded_server_slices_byte_identical_to_local_session() {
    let (program, pinball) = record_needle(300);

    // Local ground truth.
    let mut local = DebugSession::new(Arc::clone(&program), pinball.clone());
    let id = local
        .slicer()
        .failure_record()
        .map(|r| r.id)
        .expect("trace non-empty");
    let local_slice = local.slice_criterion(Criterion::Record { id }, SliceOptions::default());
    let local_bytes = drserve::WireSlice::from_slice(&local_slice).canonical_bytes();

    // Through the sharded server: cold compute, then a warm cache hit.
    let server = Server::new(ServeConfig {
        shards: 4,
        ..fleet_config(4, 4)
    });
    let mut client = server.loopback_client();
    let up = client.upload(&program, &pinball).expect("upload");
    let session = client.open(up.digest).expect("open");
    let cold = client
        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
        .expect("cold slice");
    assert!(!cold.cached, "first request computes");
    let warm = client
        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
        .expect("warm slice");
    assert!(warm.cached, "second identical request hits the cache");

    assert_eq!(
        cold.slice.canonical_bytes(),
        local_bytes,
        "cold server slice must be byte-identical to the local computation"
    );
    assert_eq!(
        warm.slice.canonical_bytes(),
        local_bytes,
        "warm-cache server slice must be byte-identical to the local computation"
    );
}
