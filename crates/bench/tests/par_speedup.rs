//! Acceptance test for the parallel slicing pipeline: on a four-thread
//! trace with >= 100k records, the sparse index-guided traversal must be
//! at least 2x faster than the serial LP scan while producing an
//! identical slice (and an identical on-disk slice file).

use std::time::{Duration, Instant};

use bench::exp::needle_session;
use slicer::{compute_slice_lp, compute_slice_sparse, SliceFile, SliceOptions, SlicerOptions};

const ITERS: u64 = 4_700;

fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    let mut best: Option<(R, Duration)> = None;
    for _ in 0..n {
        let started = Instant::now();
        let r = f();
        let t = started.elapsed();
        if best.as_ref().is_none_or(|(_, b)| t < *b) {
            best = Some((r, t));
        }
    }
    best.expect("n > 0")
}

#[test]
fn sparse_traversal_is_at_least_twice_as_fast_on_a_4_thread_100k_trace() {
    let (session, criterion) = needle_session(ITERS, SlicerOptions::default());
    let records = session.trace().records();
    assert!(
        records.len() >= 100_000,
        "need >= 100k records, got {}",
        records.len()
    );
    let threads: std::collections::HashSet<_> = records.iter().map(|r| r.tid).collect();
    assert_eq!(threads.len(), 4, "need a 4-thread trace");

    let (lp, lp_time) = best_of(3, || {
        compute_slice_lp(
            session.trace(),
            criterion,
            session.pairs(),
            SliceOptions::default(),
        )
    });
    let (sparse, sparse_time) = best_of(3, || {
        compute_slice_sparse(
            session.trace(),
            criterion,
            session.pairs(),
            SliceOptions::default(),
        )
    });

    assert_eq!(lp.records, sparse.records);
    assert_eq!(lp.data_edges, sparse.data_edges);
    assert_eq!(lp.control_edges, sparse.control_edges);

    let file_of = |slice: &slicer::Slice| {
        let (exclusions, _) = session.exclusion_regions(slice);
        SliceFile::build("needle", slice, session.trace(), exclusions).to_bytes()
    };
    assert_eq!(file_of(&lp), file_of(&sparse), "slice files byte-identical");

    assert!(
        lp_time >= sparse_time * 2,
        "sparse must be >= 2x faster: lp {lp_time:?} vs sparse {sparse_time:?}"
    );
}
