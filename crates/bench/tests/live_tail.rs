//! Live-tail integration: one client streams a recording up while a
//! second client tails it — over the in-process loopback transport and
//! over real TCP.
//!
//! The writer thread appends chunks with a delay; the tailer polls the
//! `Tail` op and must observe monotone chunk/event/instruction progress,
//! at least one update while the stream is still unsealed (a channel
//! handshake guarantees the overlap), and finally the sealed digest —
//! which it then fetches, opens, and slices like any batch upload.

use std::io::{Read, Write};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use bench::exp::record_needle;
use drserve::{Client, ServeConfig, Server, SliceAt, Uploaded};
use pinplay::{PinballContainer, StreamWriter};
use slicer::SliceOptions;

const STREAM: u64 = 11;
const CHUNKS: usize = 8;

/// Drives one writer + one tailer against whatever transport the two
/// clients are connected through.
fn run_live_tail<W, T>(mut writer: Client<W>, mut tailer: Client<T>)
where
    W: Read + Write + Send + 'static,
    T: Read + Write,
{
    let (program, pinball) = record_needle(300);
    // A dense checkpoint interval gives the writer plenty of chunk
    // groups to split across.
    let container = PinballContainer::with_checkpoints(pinball, &program, 256);
    let expected_digest = container.digest();
    let stream_writer = StreamWriter::new(&container).expect("container streams");
    let sealed_bytes = stream_writer.sealed_bytes().to_vec();
    let expected_instructions = stream_writer.instructions();

    // Open the stream before the writer thread exists, so the tailer
    // never races UnknownStream.
    writer
        .begin_stream(STREAM, &program, None)
        .expect("stream opens");

    let (watching_tx, watching_rx) = mpsc::channel::<()>();
    let handle = thread::spawn(move || -> Uploaded {
        // Do not send a byte until the tailer has seen the empty stream:
        // this guarantees at least one mid-upload observation.
        watching_rx.recv().expect("tailer signals");
        let w = StreamWriter::new(&container).expect("container streams");
        for (seq, piece) in w.chunks(CHUNKS).iter().enumerate() {
            writer
                .append_chunk(STREAM, seq as u32, piece.to_vec())
                .expect("chunk lands");
            thread::sleep(Duration::from_millis(10));
        }
        writer
            .seal_stream(STREAM, w.footer().to_vec())
            .expect("stream seals")
    });

    let mut last = (0u32, 0u64, 0u64);
    let mut unsealed_updates = 0u32;
    let mut watching = Some(watching_tx);
    let final_update = loop {
        let t = tailer.tail(STREAM).expect("tail answers");
        assert!(
            t.chunks >= last.0 && t.events >= last.1 && t.instructions >= last.2,
            "tail progress is monotone: {last:?} then ({}, {}, {})",
            t.chunks,
            t.events,
            t.instructions,
        );
        last = (t.chunks, t.events, t.instructions);
        if t.sealed {
            break t;
        }
        unsealed_updates += 1;
        assert_eq!(t.digest, None, "no digest before sealing");
        if let Some(tx) = watching.take() {
            tx.send(()).expect("writer waits for the tailer");
        }
        thread::sleep(Duration::from_millis(5));
    };
    let up = handle.join().expect("writer thread");

    assert!(
        unsealed_updates >= 1,
        "the tailer watched the stream mid-upload"
    );
    assert_eq!(up.digest, expected_digest, "streamed == batch digest");
    assert_eq!(final_update.digest, Some(expected_digest));
    assert_eq!(final_update.chunks as usize, CHUNKS);
    assert_eq!(final_update.instructions, expected_instructions);
    assert_eq!(
        final_update.events, final_update.expected_events,
        "a sealed stream absorbed every event the header promised"
    );

    // The published pinball is an ordinary stored upload: byte-identical
    // fetch, and it opens and slices.
    let fetched = tailer.fetch(expected_digest).expect("published fetches");
    assert_eq!(fetched, sealed_bytes, "fetched bytes == batch to_bytes");
    let session = tailer.open(expected_digest).expect("published opens");
    let reply = tailer
        .compute_slice(session, SliceAt::Failure, SliceOptions::default())
        .expect("published slices");
    assert!(!reply.slice.is_empty(), "failure slice is non-trivial");
}

#[test]
fn live_tail_over_loopback() {
    let server = Server::new(ServeConfig::default());
    run_live_tail(server.loopback_client(), server.loopback_client());
}

#[test]
fn live_tail_over_tcp() {
    let server = Server::new(ServeConfig::default());
    let handle = server
        .listen("127.0.0.1:0")
        .expect("listens on an ephemeral port");
    let writer = drserve::connect(handle.addr()).expect("writer connects");
    let tailer = drserve::connect(handle.addr()).expect("tailer connects");
    run_live_tail(writer, tailer);
}
