//! Acceptance test for embedded-checkpoint seek: on a ~100k-instruction
//! four-thread trace, `Replayer::seek_to` at the 75% mark must be at
//! least 5x faster than a cold full replay to the same position, while
//! landing on the identical machine state.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::exp::record_needle;
use minivm::NullTool;
use pinplay::{PinballContainer, Replayer, DEFAULT_CHECKPOINT_INTERVAL};

const ITERS: u64 = 4_200;

fn best_of(n: usize, mut f: impl FnMut()) -> Duration {
    (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .min()
        .expect("n > 0")
}

#[test]
fn checkpoint_seek_is_at_least_5x_faster_at_75_percent() {
    let (program, pinball) = record_needle(ITERS);
    let total = pinball.logged_instructions();
    assert!(
        total >= 100_000,
        "need a >= 100k-instruction trace, got {total}"
    );
    let container =
        PinballContainer::with_checkpoints(pinball, &program, DEFAULT_CHECKPOINT_INTERVAL);
    assert!(
        container.checkpoints.len() >= 10,
        "expected a dense checkpoint ladder, got {}",
        container.checkpoints.len()
    );
    let target = total * 3 / 4;

    // Both paths must land on the same deterministic state.
    let mut full = Replayer::new(Arc::clone(&program), &container.pinball);
    full.run_steps(target, &mut NullTool);
    let mut seeked = Replayer::new(Arc::clone(&program), &container.pinball);
    let outcome = seeked.seek_to(&container, target);
    assert!(outcome.restored_from.is_some(), "checkpoint must be used");
    assert_eq!(full.replayed_instructions(), seeked.replayed_instructions());
    assert_eq!(
        full.exec().save_state(),
        seeked.exec().save_state(),
        "seek state must match full replay"
    );
    assert!(
        outcome.replayed <= DEFAULT_CHECKPOINT_INTERVAL * 2,
        "seek should replay at most ~one chunk, replayed {}",
        outcome.replayed
    );

    let full_time = best_of(3, || {
        let mut r = Replayer::new(Arc::clone(&program), &container.pinball);
        r.run_steps(target, &mut NullTool);
    });
    let seek_time = best_of(3, || {
        let mut r = Replayer::new(Arc::clone(&program), &container.pinball);
        r.seek_to(&container, target);
    });
    assert!(
        full_time >= seek_time * 5,
        "seek must be >= 5x faster at 75% of {total} instructions: \
         full {full_time:?} vs seek {seek_time:?}"
    );
}
