//! Acceptance: with a warm dependence index, second-and-later slice
//! queries on a 100k-record, four-thread trace answer at least 10× faster
//! than a cold sparse traversal — and produce the identical slice.
//!
//! The workload is [`four_thread_churn`]: every thread runs thousands of
//! save/restore pairs, and the criterion's value resolves through the
//! entire chain. An index-free [`compute_slice_sparse`] re-walks that
//! bypass chain on every query; [`DepIndex::build`] collapses each
//! def-slot's resolution once, so [`compute_slice_indexed`] answers in
//! time proportional to the (tiny) slice. The identical-output assertion
//! lives in the same test as the timing gate: the speed must not come
//! from computing a different slice.
//!
//! [`four_thread_churn`]: bench::exp::four_thread_churn

use std::time::{Duration, Instant};

use bench::exp::churn_session;
use slicer::{
    compute_slice_indexed, compute_slice_sparse, DepIndex, LocKey, RecordId, Slice, SliceOptions,
    SlicerOptions,
};

const ITERS: u64 = 4_000;
const REQUIRED_SPEEDUP: f64 = 10.0;

fn median_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The slice's content — criterion, records, and both edge sets in
/// canonical order — as bytes. Stats are advisory and excluded: the two
/// traversals report their own work, but must agree on the answer.
fn canonical_content(slice: &Slice) -> Vec<u8> {
    let mut records: Vec<RecordId> = slice.records.iter().copied().collect();
    records.sort_unstable();
    let mut data: Vec<(RecordId, RecordId, LocKey)> = slice
        .data_edges
        .iter()
        .map(|e| (e.user, e.def, e.key))
        .collect();
    data.sort_unstable();
    let mut control = slice.control_edges.clone();
    control.sort_unstable();
    serde_json::to_vec(&(slice.criterion, records, data, control)).expect("slice serializes")
}

#[test]
fn warm_index_queries_are_at_least_10x_faster_than_cold_sparse() {
    let (session, criterion) = churn_session(ITERS, SlicerOptions::default());
    let trace = session.trace();
    let pairs = session.pairs();
    let records = trace.records().len();
    let threads: std::collections::HashSet<_> = trace.records().iter().map(|r| r.tid).collect();
    assert!(records >= 100_000, "trace too small: {records} records");
    assert_eq!(threads.len(), 4, "churn is a four-thread workload");

    let opts = SliceOptions::default();

    // Cold: the index-free sparse traversal, as a session without a warm
    // index runs it. Every sample re-chases the full bypass chain.
    let cold = median_of(3, || {
        let slice = compute_slice_sparse(trace, criterion, pairs, opts.clone());
        assert!(slice.stats.bypasses >= ITERS, "chain actually chased");
    });

    // The one-time build the first query pays; everything after is warm.
    let index = DepIndex::build(trace, pairs, &opts);
    let expected = canonical_content(&compute_slice_sparse(trace, criterion, pairs, opts.clone()));
    let first = compute_slice_indexed(&index, criterion);
    assert_eq!(
        canonical_content(&first),
        expected,
        "indexed slice must be identical to the sparse one"
    );

    let warm = median_of(15, || {
        let slice = compute_slice_indexed(&index, criterion);
        assert!(!slice.records.is_empty());
    });

    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    println!(
        "cold sparse {cold:?} vs warm indexed {warm:?}: {speedup:.1}x \
         (required {REQUIRED_SPEEDUP}x; index built once in {:?})",
        index.stats().wall,
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "warm index not fast enough: cold {cold:?} / warm {warm:?} = {speedup:.1}x, \
         need {REQUIRED_SPEEDUP}x"
    );

    // The identity holds for later queries and other criteria on the same
    // index — the reuse the cyclic-debugging loop depends on.
    let last = trace.records().last().expect("non-empty").id;
    for crit in [
        criterion,
        slicer::Criterion::Record { id: last },
        slicer::Criterion::Record { id: last / 2 },
    ] {
        let indexed = compute_slice_indexed(&index, crit);
        let sparse = compute_slice_sparse(trace, crit, pairs, opts.clone());
        assert_eq!(
            canonical_content(&indexed),
            canonical_content(&sparse),
            "criterion {crit:?}"
        );
    }
}
