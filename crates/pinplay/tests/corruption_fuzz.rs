//! Corruption fuzzing for the chunked pinball containers (v2, v3, v4).
//!
//! Every single-bit flip and every truncation of a container must
//! surface as a typed [`PinballError`] — never a panic — and flips
//! inside the framed region must name the damaged chunk. Truncations
//! additionally exercise lossy loading: the intact prefix must still
//! replay deterministically. All chunked container generations run
//! through the same harness: v3 adds a per-frame codec byte and binary
//! payloads, v4 adds the shared-dictionary frame and columnar events,
//! and each must be exactly as tamper-evident as the format it replaces.
//! The paged loader gets its own truncation sweep: a damaged or cut file
//! must fail [`PinballContainer::open_mapped`] with a typed error too.

use std::sync::Arc;

use minivm::{assemble, LiveEnv, NullTool, Program, RoundRobin};
use pinplay::{
    detect_version, migrate, record_whole_program, ContainerVersion, PinballContainer,
    PinballError, ReplayStatus, Replayer, StreamWriter,
};

fn record() -> (Arc<Program>, PinballContainer) {
    let program = Arc::new(
        assemble(
            r"
            .data
            acc: .word 0
            .text
            .func main
                movi r1, 1
                spawn r2, worker, r1
                movi r1, 2
                spawn r3, worker, r1
                join r2
                join r3
                la r4, acc
                load r5, r4, 0
                print r5
                halt
            .endfunc
            .func worker
                movi r3, 24
            loop:
                la r1, acc
                xadd r2, r1, r0
                subi r3, r3, 1
                bgti r3, 0, loop
                halt
            .endfunc
            ",
        )
        .expect("assembles"),
    );
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(5),
        &mut LiveEnv::new(3),
        1_000_000,
        "fuzz",
    )
    .expect("records");
    let container = PinballContainer::with_checkpoints(rec.pinball, &program, 32);
    assert!(
        !container.checkpoints.is_empty(),
        "fuzz target should carry embedded checkpoints"
    );
    (program, container)
}

/// The chunked serializations of one container, tagged for messages.
fn encodings(container: &PinballContainer) -> [(&'static str, Vec<u8>); 3] {
    [
        ("v4", container.to_bytes().expect("v4 serializes")),
        ("v3", container.to_bytes_v3().expect("v3 serializes")),
        ("v2", container.to_bytes_v2().expect("v2 serializes")),
    ]
}

const MAGIC_LEN: usize = 6;

#[test]
fn every_single_bit_flip_is_a_typed_error() {
    let (_, container) = record();
    for (tag, bytes) in encodings(&container) {
        assert!(
            bytes.len() > 256,
            "{tag} target too small to be interesting"
        );

        for offset in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[offset] ^= 1 << bit;
                // Must return (not panic), and a flip anywhere must be
                // detected: CRCs guard every payload, varint/kind/codec/
                // trailer damage trips structural checks, and magic damage
                // falls back to the (failing) v1 decoder.
                let err = PinballContainer::from_bytes(&bad).expect_err(&format!(
                    "{tag}: flip at byte {offset} bit {bit} must not load cleanly"
                ));
                if offset >= MAGIC_LEN {
                    assert!(
                        matches!(err, PinballError::Chunk { .. }),
                        "{tag}: flip at byte {offset} bit {bit}: expected a \
                         chunk-naming error, got {err}"
                    );
                }
            }
        }
    }
}

#[test]
fn chunk_errors_name_a_plausible_chunk() {
    let (_, container) = record();
    for (tag, bytes) in encodings(&container) {
        let mut max_seen = 0usize;
        for offset in MAGIC_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x10;
            match PinballContainer::from_bytes(&bad) {
                Err(PinballError::Chunk { chunk, .. }) => max_seen = max_seen.max(chunk),
                Err(other) => panic!("{tag} offset {offset}: unexpected error {other}"),
                Ok(_) => panic!("{tag} offset {offset}: corrupt container loaded cleanly"),
            }
        }
        assert!(
            max_seen > 1,
            "{tag}: damage deep in the file should be attributed to later \
             chunks, best was chunk {max_seen}"
        );
    }
}

#[test]
fn every_truncation_is_typed_and_lossy_load_replays_the_prefix() {
    let (program, container) = record();
    let total_events = container.pinball.events.len();
    for (tag, bytes) in encodings(&container) {
        for len in 0..bytes.len() {
            let cut = &bytes[..len];
            if len < MAGIC_LEN {
                // Not recognizably a container: both decoders may reject
                // it, but must do so with a typed error, not a panic.
                let _ = PinballContainer::from_bytes(cut)
                    .expect_err(&format!("{tag}: truncated blob loads"));
                continue;
            }
            PinballContainer::from_bytes(cut).expect_err(&format!(
                "{tag}: truncation to {len} bytes must not load cleanly"
            ));

            // Lossy loading either salvages the intact prefix or reports
            // the header itself as unusable; a salvaged prefix must replay.
            let Ok(lossy) = PinballContainer::from_bytes_lossy(cut) else {
                continue;
            };
            assert!(
                lossy.damage.is_some(),
                "{tag}: truncation to {len} bytes must record damage"
            );
            assert!(lossy.events_recovered <= lossy.events_expected);
            assert_eq!(lossy.events_expected, total_events);
            let mut r = Replayer::new(Arc::clone(&program), &lossy.container.pinball);
            let status = r.run(&mut NullTool);
            assert!(
                matches!(status, ReplayStatus::Completed),
                "{tag}: salvaged prefix of {len} bytes must replay to its \
                 end, got {status:?}"
            );
        }
    }
}

#[test]
fn migrate_upgrades_v2_and_v3_to_v4_roundtripping_exactly() {
    let (_, container) = record();
    let direct = container.to_bytes().expect("v4 serializes");
    for (tag, bytes) in [
        ("v2", container.to_bytes_v2().expect("v2 serializes")),
        ("v3", container.to_bytes_v3().expect("v3 serializes")),
    ] {
        let v4 = migrate(&bytes).unwrap_or_else(|e| panic!("{tag} migrates to v4: {e}"));
        assert_eq!(detect_version(&v4), ContainerVersion::V4);

        // Migration preserves the whole container — events, checkpoints,
        // interval — and lands on the same bytes a direct v4 save produces.
        let upgraded = PinballContainer::from_bytes(&v4).expect("migrated container loads");
        assert_eq!(upgraded, container, "{tag} migration preserves contents");
        assert_eq!(upgraded.digest(), container.digest());
        assert_eq!(v4, direct, "{tag} migration == direct v4 save");
    }

    // Migrating a v4 container again is a typed error, not a silent rewrite.
    assert!(matches!(migrate(&direct), Err(PinballError::Format(_))));
}

#[test]
fn mapped_open_never_panics_on_truncation_or_tail_flips() {
    let (_, container) = record();
    let bytes = container.to_bytes().expect("v4 serializes");
    let path = std::env::temp_dir().join(format!("pinplay-fuzz-mapped-{}.pb", std::process::id()));

    // Every truncation must fail `open_mapped` with a typed error: the
    // paged loader validates the trailer, index, header, and dictionary
    // before returning, and a cut file always damages one of those.
    for len in 0..bytes.len() {
        std::fs::write(&path, &bytes[..len]).expect("writes truncated file");
        let err = PinballContainer::open_mapped(&path)
            .map(|_| ())
            .expect_err(&format!("truncation to {len} bytes must not open"));
        assert!(
            matches!(
                err,
                PinballError::Chunk { .. } | PinballError::Format(_) | PinballError::Io(_)
            ),
            "truncation to {len}: unexpected error {err}"
        );
    }

    // Flips in the skeleton the loader touches eagerly (trailer, index,
    // header, dictionary) must also surface as typed errors at open time.
    let idx_off =
        u64::from_le_bytes(bytes[bytes.len() - 12..bytes.len() - 4].try_into().unwrap()) as usize;
    for offset in (0..64).chain(idx_off..bytes.len()) {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[offset] ^= 1 << bit;
            std::fs::write(&path, &bad).expect("writes damaged file");
            // Damage may be caught at open (skeleton) or deferred to a
            // chunk read (events bytes sharing the first 64 bytes); both
            // must stay typed. `open_mapped` + full materialization covers
            // both paths.
            if let Ok(mapped) = PinballContainer::open_mapped(&path) {
                let err = mapped
                    .to_container()
                    .map(|_| ())
                    .expect_err(&format!("flip at {offset}.{bit} must not materialize"));
                assert!(
                    matches!(err, PinballError::Chunk { .. } | PinballError::Format(_)),
                    "flip at {offset}.{bit}: unexpected error {err}"
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn unsealed_prefixes_are_typed_and_flips_in_them_stay_typed() {
    let (program, container) = record();
    let writer = StreamWriter::new(&container).expect("container streams");
    let sealed = writer.sealed_bytes();
    let total_events = container.pinball.events.len();
    let pieces = writer.chunks(writer.num_groups());
    assert!(pieces.len() > 2, "fuzz target should span several groups");

    // Every chunk-group prefix — a stream killed before the footer — is a
    // valid but unsealed container: the strict loader names the missing
    // footer via `PinballError::Unsealed`, and the lossy loader salvages a
    // prefix that replays deterministically to its end.
    let mut cut = 0usize;
    for piece in &pieces {
        cut += piece.len();
        let prefix = &sealed[..cut];
        match PinballContainer::from_bytes(prefix) {
            Err(PinballError::Unsealed {
                events_recovered,
                events_expected,
            }) => {
                assert_eq!(events_expected, total_events);
                assert!(events_recovered <= events_expected);
            }
            other => panic!("prefix of {cut} bytes: expected Unsealed, got {other:?}"),
        }
        let lossy = PinballContainer::from_bytes_lossy(prefix).expect("prefix salvages");
        assert!(matches!(lossy.damage, Some(PinballError::Unsealed { .. })));
        let mut r = Replayer::new(Arc::clone(&program), &lossy.container.pinball);
        let status = r.run(&mut NullTool);
        assert!(
            matches!(status, ReplayStatus::Completed),
            "unsealed prefix of {cut} bytes must replay, got {status:?}"
        );
    }

    // Every single-bit flip of a mid-stream prefix is still a typed error,
    // never a panic: CRC or structural damage names the chunk, a clean
    // walk to end-of-file names the missing footer.
    let mid: usize = pieces[..pieces.len() / 2].iter().map(|p| p.len()).sum();
    let prefix = &sealed[..mid];
    for offset in 0..prefix.len() {
        for bit in 0..8 {
            let mut bad = prefix.to_vec();
            bad[offset] ^= 1 << bit;
            let err = PinballContainer::from_bytes(&bad).expect_err(&format!(
                "flip at byte {offset} bit {bit} of an unsealed prefix must not load cleanly"
            ));
            if offset >= MAGIC_LEN {
                assert!(
                    matches!(
                        err,
                        PinballError::Chunk { .. } | PinballError::Unsealed { .. }
                    ),
                    "flip at byte {offset} bit {bit}: expected chunk or unsealed \
                     error, got {err}"
                );
            }
        }
    }
}
