//! Corruption fuzzing for the v2 pinball container.
//!
//! Every single-bit flip and every truncation of a container must
//! surface as a typed [`PinballError`] — never a panic — and flips
//! inside the framed region must name the damaged chunk. Truncations
//! additionally exercise lossy loading: the intact prefix must still
//! replay deterministically.

use std::sync::Arc;

use minivm::{assemble, LiveEnv, NullTool, Program, RoundRobin};
use pinplay::{
    record_whole_program, PinballContainer, PinballError, ReplayStatus, Replayer, MAGIC,
};

fn record() -> (Arc<Program>, PinballContainer) {
    let program = Arc::new(
        assemble(
            r"
            .data
            acc: .word 0
            .text
            .func main
                movi r1, 1
                spawn r2, worker, r1
                movi r1, 2
                spawn r3, worker, r1
                join r2
                join r3
                la r4, acc
                load r5, r4, 0
                print r5
                halt
            .endfunc
            .func worker
                movi r3, 24
            loop:
                la r1, acc
                xadd r2, r1, r0
                subi r3, r3, 1
                bgti r3, 0, loop
                halt
            .endfunc
            ",
        )
        .expect("assembles"),
    );
    let rec = record_whole_program(
        &program,
        &mut RoundRobin::new(5),
        &mut LiveEnv::new(3),
        1_000_000,
        "fuzz",
    )
    .expect("records");
    let container = PinballContainer::with_checkpoints(rec.pinball, &program, 32);
    assert!(
        !container.checkpoints.is_empty(),
        "fuzz target should carry embedded checkpoints"
    );
    (program, container)
}

#[test]
fn every_single_bit_flip_is_a_typed_error() {
    let (_, container) = record();
    let bytes = container.to_bytes().expect("serializes");
    assert!(bytes.len() > 256, "fuzz target too small to be interesting");

    for offset in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[offset] ^= 1 << bit;
            // Must return (not panic), and a flip anywhere must be
            // detected: CRCs guard every payload, varint/kind/trailer
            // damage trips structural checks, and magic damage falls
            // back to the (failing) v1 decoder.
            let err = PinballContainer::from_bytes(&bad).expect_err(&format!(
                "flip at byte {offset} bit {bit} must not load cleanly"
            ));
            if offset >= MAGIC.len() {
                assert!(
                    matches!(err, PinballError::Chunk { .. }),
                    "flip at byte {offset} bit {bit}: expected a chunk-naming \
                     error, got {err}"
                );
            }
        }
    }
}

#[test]
fn chunk_errors_name_a_plausible_chunk() {
    let (_, container) = record();
    let bytes = container.to_bytes().expect("serializes");
    // Count frames: header + per-chunk (checkpoint?) + events + index.
    let mut max_seen = 0usize;
    for offset in MAGIC.len()..bytes.len() {
        let mut bad = bytes.clone();
        bad[offset] ^= 0x10;
        match PinballContainer::from_bytes(&bad) {
            Err(PinballError::Chunk { chunk, .. }) => max_seen = max_seen.max(chunk),
            Err(other) => panic!("offset {offset}: unexpected error {other}"),
            Ok(_) => panic!("offset {offset}: corrupt container loaded cleanly"),
        }
    }
    assert!(
        max_seen > 1,
        "damage deep in the file should be attributed to later chunks, \
         best was chunk {max_seen}"
    );
}

#[test]
fn every_truncation_is_typed_and_lossy_load_replays_the_prefix() {
    let (program, container) = record();
    let bytes = container.to_bytes().expect("serializes");
    let total_events = container.pinball.events.len();

    for len in 0..bytes.len() {
        let cut = &bytes[..len];
        if len < MAGIC.len() || !cut.starts_with(MAGIC) {
            // Not recognizably v2: both decoders may reject it, but must
            // do so with a typed error, not a panic.
            let _ = PinballContainer::from_bytes(cut).expect_err("truncated blob loads");
            continue;
        }
        PinballContainer::from_bytes(cut)
            .expect_err(&format!("truncation to {len} bytes must not load cleanly"));

        // Lossy loading either salvages the intact prefix or reports the
        // header itself as unusable; a salvaged prefix must replay.
        let Ok(lossy) = PinballContainer::from_bytes_lossy(cut) else {
            continue;
        };
        assert!(
            lossy.damage.is_some(),
            "truncation to {len} bytes must record damage"
        );
        assert!(lossy.events_recovered <= lossy.events_expected);
        assert_eq!(lossy.events_expected, total_events);
        let mut r = Replayer::new(Arc::clone(&program), &lossy.container.pinball);
        let status = r.run(&mut NullTool);
        assert!(
            matches!(status, ReplayStatus::Completed),
            "salvaged prefix of {len} bytes must replay to its end, got {status:?}"
        );
    }
}
