//! Integration tests for region capture: skip/length windows, pc-triggered
//! regions, and mid-execution snapshots with live spawned threads.

use std::sync::Arc;

use minivm::{assemble, LiveEnv, NullTool, Program, Reg, RoundRobin, ToolControl};
use pinplay::{
    record_region, EndTrigger, RecordedExit, RegionSpec, ReplayStatus, Replayer, StartTrigger,
};

fn looping_program() -> Arc<Program> {
    Arc::new(
        assemble(
            r"
            .data
            acc: .word 0
            .text
            .func main
                movi r1, 0
                spawn r9, worker, r1
                movi r0, 2000
            main_loop:
                la r2, acc
                xadd r3, r2, r0
                subi r0, r0, 1
                bgti r0, 0, main_loop
                join r9
                halt
            .endfunc
            .func worker
                movi r0, 1500
            w_loop:
                la r2, acc
                load r3, r2, 0
                subi r0, r0, 1
                bgti r0, 0, w_loop
                halt
            .endfunc
            ",
        )
        .unwrap(),
    )
}

#[test]
fn skip_length_region_mid_execution() {
    let program = looping_program();
    let rec = record_region(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(0),
        RegionSpec::skip_length(1_000, 2_000),
        1_000_000,
        "mid",
    )
    .expect("captures");
    assert!(rec.skipped_instructions >= 1_000);
    assert_eq!(rec.pinball.exit, RecordedExit::RegionEnd);
    // The snapshot was taken mid-execution with both threads live.
    assert_eq!(rec.pinball.snapshot.threads.len(), 2);
    assert!(rec.pinball.snapshot.threads.iter().all(|t| t.is_runnable()));
    // Main retired at least `length` instructions inside the region.
    let main_steps: u64 = rec
        .pinball
        .events
        .iter()
        .filter_map(|e| match e {
            pinplay::ReplayEvent::Run { tid: 0, steps } => Some(*steps),
            _ => None,
        })
        .sum();
    assert!(main_steps >= 2_000, "main ran {main_steps}");

    // Replay is exact and repeatable.
    let run = |pb| {
        let mut rep = Replayer::new(Arc::clone(&program), pb);
        assert_eq!(rep.run(&mut NullTool), ReplayStatus::Completed);
        rep.exec().snapshot()
    };
    assert_eq!(run(&rec.pinball), run(&rec.pinball));
}

#[test]
fn at_pc_start_region_begins_at_that_instruction() {
    let program = looping_program();
    // Region starts at the 100th execution of the main loop's xadd.
    let xadd_pc = 4;
    let rec = record_region(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(0),
        RegionSpec {
            start: StartTrigger::AtPc {
                tid: 0,
                pc: xadd_pc,
                instance: 100,
            },
            end: EndTrigger::MainLength(500),
        },
        1_000_000,
        "atpc",
    )
    .expect("captures");
    // The first replayed event of the main thread is that xadd.
    let mut first_main: Option<(u32, u64)> = None;
    let mut tool = |ev: &minivm::InsEvent| {
        if ev.tid == 0 && first_main.is_none() {
            first_main = Some((ev.pc, ev.instance));
            return ToolControl::Stop;
        }
        ToolControl::Continue
    };
    let mut rep = Replayer::new(Arc::clone(&program), &rec.pinball);
    rep.run(&mut tool);
    assert_eq!(
        first_main,
        Some((xadd_pc, 1)),
        "region-relative instance numbering starts at 1"
    );
}

#[test]
fn at_pc_end_trigger_includes_the_marker_instruction() {
    let program = looping_program();
    let xadd_pc = 4;
    let rec = record_region(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(0),
        RegionSpec {
            start: StartTrigger::ProgramStart,
            end: EndTrigger::AtPc {
                tid: 0,
                pc: xadd_pc,
                instance: 5,
            },
        },
        1_000_000,
        "atpc-end",
    )
    .expect("captures");
    assert_eq!(rec.pinball.exit, RecordedExit::RegionEnd);
    // Replay and count xadd executions by main: exactly 5.
    let mut count = 0u64;
    let mut tool = |ev: &minivm::InsEvent| {
        if ev.tid == 0 && ev.pc == xadd_pc {
            count += 1;
        }
        ToolControl::Continue
    };
    let mut rep = Replayer::new(Arc::clone(&program), &rec.pinball);
    rep.run(&mut tool);
    assert_eq!(count, 5, "the 5th execution is the last logged event");
}

#[test]
fn region_never_started_is_an_error() {
    let program = looping_program();
    let err = record_region(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(0),
        RegionSpec {
            start: StartTrigger::AtPc {
                tid: 0,
                pc: 4,
                instance: 1_000_000, // never reached
            },
            end: EndTrigger::ProgramEnd,
        },
        10_000_000,
        "never",
    )
    .unwrap_err();
    assert_eq!(err, pinplay::LogError::RegionNeverStarted);
}

#[test]
fn fuel_exhaustion_is_an_error() {
    let program = looping_program();
    let err = record_region(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(0),
        RegionSpec::whole_program(),
        100, // far too little
        "fuel",
    )
    .unwrap_err();
    assert_eq!(err, pinplay::LogError::FuelExhausted);
}

#[test]
fn syscalls_inside_region_are_replayed_from_log() {
    let program = Arc::new(
        assemble(
            r"
            .text
            .func main
                movi r0, 50
            warmup:
                subi r0, r0, 1
                bgti r0, 0, warmup
                rand r1           ; inside the region
                rand r2
                print r1
                print r2
                halt
            .endfunc
            ",
        )
        .unwrap(),
    );
    let rec = record_region(
        &program,
        &mut RoundRobin::new(7),
        &mut LiveEnv::new(99),
        RegionSpec::skip_length(50, 1_000),
        100_000,
        "sys",
    )
    .expect("captures");
    assert_eq!(
        rec.pinball.syscalls.first().map(Vec::len),
        Some(2),
        "both rand results logged for the main thread"
    );
    let run = |pb| {
        let mut rep = Replayer::new(Arc::clone(&program), pb);
        rep.run(&mut NullTool);
        (
            rep.exec().read_reg(0, Reg(1)),
            rep.exec().read_reg(0, Reg(2)),
        )
    };
    assert_eq!(run(&rec.pinball), run(&rec.pinball));
}
