//! Property tests for the chunked pinball containers (v2, v3, and v4).
//!
//! Over randomized multi-threaded recordings (worker count, per-worker
//! loop length, scheduler seed and quantum, checkpoint interval all
//! drawn by proptest):
//!
//! 1. **Byte-identical round-trip** — `to_bytes` → `from_bytes` →
//!    `to_bytes` reproduces the exact container bytes, in every format.
//!    Chunk boundaries, embedded checkpoints, the shared dictionary, and
//!    the footer index are all deterministic functions of the log, so a
//!    load/save cycle is the identity.
//! 2. **Differential encoders** — the parallel v4 chunk pipeline emits
//!    bytes identical to the serial reference encoder, and the v2, v3,
//!    and v4 serializations of one container load back to equal
//!    containers with equal digests.
//! 3. **Differential loaders** — the zero-copy [`ContainerView`], the
//!    paged [`MappedContainer`], and the owned loader agree on every
//!    recording, and `migrate` of v2/v3 bytes equals a direct v4 save.
//! 4. **Seek equivalence** — restoring any embedded checkpoint via
//!    `Replayer::seek_to` and replaying to the end retires the same
//!    instruction count and lands on bit-identical final state as a
//!    cold replay of the whole region.

use std::sync::Arc;

use proptest::prelude::*;

use minivm::{assemble, LiveEnv, NullTool, Program, RandomSched};
use pinplay::{
    record_whole_program, ContainerView, Pinball, PinballContainer, ReplayStatus, Replayer,
    StreamReader, StreamWriter,
};

/// A main thread plus `workers` xadd-looping threads over one shared
/// word: enough cross-thread scheduling to make the replay log
/// multi-chunk and order-sensitive.
fn workload(workers: usize, iters: u64) -> Arc<Program> {
    let mut src = String::from(
        "
        .data
        acc: .word 0
        .text
        .func main
        ",
    );
    for w in 0..workers {
        src.push_str(&format!(
            "    movi r1, {w}\n    spawn r{}, worker, r1\n",
            w + 2
        ));
    }
    for w in 0..workers {
        src.push_str(&format!("    join r{}\n", w + 2));
    }
    src.push_str(
        "    la r4, acc
             load r5, r4, 0
             print r5
             halt
        .endfunc
        .func worker
        ",
    );
    src.push_str(&format!("    movi r3, {iters}\n"));
    src.push_str(
        "loop:
            la r1, acc
            xadd r2, r1, r0
            subi r3, r3, 1
            bgti r3, 0, loop
            halt
        .endfunc
        ",
    );
    Arc::new(assemble(&src).expect("workload assembles"))
}

fn record(
    workers: usize,
    iters: u64,
    sched_seed: u64,
    quantum: u32,
    env_seed: u64,
) -> (Arc<Program>, Pinball) {
    let program = workload(workers, iters);
    let rec = record_whole_program(
        &program,
        &mut RandomSched::new(sched_seed, quantum),
        &mut LiveEnv::new(env_seed),
        1_000_000,
        "container-prop",
    )
    .expect("records");
    (program, rec.pinball)
}

fn final_state(r: &mut Replayer) -> (ReplayStatus, u64, minivm::ExecState) {
    let status = r.run(&mut NullTool);
    (status, r.replayed_instructions(), r.exec().save_state())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn save_load_is_byte_identical_in_both_formats(
        workers in 1usize..4,
        iters in 5u64..60,
        sched_seed in any::<u64>(),
        quantum in 1u32..16,
        env_seed in any::<u64>(),
        interval in 8u64..200,
    ) {
        let (program, pinball) = record(workers, iters, sched_seed, quantum, env_seed);
        let container = PinballContainer::with_checkpoints(pinball, &program, interval);

        let v4 = container.to_bytes().expect("v4 serializes");
        let reloaded = PinballContainer::from_bytes(&v4).expect("v4 loads");
        prop_assert_eq!(&reloaded, &container, "v4 round-trips");
        prop_assert_eq!(
            reloaded.to_bytes().expect("re-serializes"),
            v4,
            "v4 load -> save is byte-identical"
        );

        let v3 = container.to_bytes_v3().expect("v3 serializes");
        let reloaded3 = PinballContainer::from_bytes(&v3).expect("v3 loads");
        prop_assert_eq!(&reloaded3, &container, "v3 round-trips");
        prop_assert_eq!(
            reloaded3.to_bytes_v3().expect("re-serializes"),
            v3,
            "v3 load -> save is byte-identical"
        );

        let v2 = container.to_bytes_v2().expect("v2 serializes");
        let reloaded2 = PinballContainer::from_bytes(&v2).expect("v2 loads");
        prop_assert_eq!(&reloaded2, &container, "v2 round-trips");
        prop_assert_eq!(
            reloaded2.to_bytes_v2().expect("re-serializes"),
            v2,
            "v2 load -> save is byte-identical"
        );
    }

    #[test]
    fn parallel_encoder_matches_serial_reference(
        workers in 1usize..4,
        iters in 5u64..60,
        sched_seed in any::<u64>(),
        quantum in 1u32..16,
        interval in 8u64..200,
    ) {
        let (program, pinball) = record(workers, iters, sched_seed, quantum, 7);
        let container = PinballContainer::with_checkpoints(pinball, &program, interval);

        let parallel = container.to_bytes().expect("parallel serializes");
        let serial = container.to_bytes_serial().expect("serial serializes");
        prop_assert_eq!(&parallel, &serial, "pipeline output is byte-identical");

        // The three container generations carry the same recording: equal
        // containers, equal digests, and the binary formats never larger
        // (v4 gets a fixed allowance for its dictionary frame, which tiny
        // recordings cannot amortize; real workloads shrink — the codec
        // speedup gate enforces v4 <= v3 at size).
        let v2 = container.to_bytes_v2().expect("v2 serializes");
        let v3 = container.to_bytes_v3().expect("v3 serializes");
        let via_v2 = PinballContainer::from_bytes(&v2).expect("v2 loads");
        let via_v3 = PinballContainer::from_bytes(&v3).expect("v3 loads");
        let via_v4 = PinballContainer::from_bytes(&parallel).expect("v4 loads");
        prop_assert_eq!(&via_v2, &via_v3, "v2/v3 agree on contents");
        prop_assert_eq!(&via_v3, &via_v4, "v3/v4 agree on contents");
        prop_assert_eq!(via_v2.digest(), via_v3.digest(), "v2/v3 agree on digest");
        prop_assert_eq!(via_v3.digest(), via_v4.digest(), "v3/v4 agree on digest");
        prop_assert!(
            v3.len() <= v2.len(),
            "v3 ({}) must not exceed v2 ({})", v3.len(), v2.len()
        );
        prop_assert!(
            parallel.len() <= v3.len() + pinzip::DICT_MAX + 64,
            "v4 ({}) must not exceed v3 ({}) plus the dictionary allowance",
            parallel.len(), v3.len()
        );
    }

    #[test]
    fn zero_copy_and_mapped_loads_agree_with_owned_and_migrate(
        workers in 1usize..4,
        iters in 5u64..60,
        sched_seed in any::<u64>(),
        quantum in 1u32..16,
        interval in 8u64..200,
    ) {
        let (program, pinball) = record(workers, iters, sched_seed, quantum, 7);
        let container = PinballContainer::with_checkpoints(pinball, &program, interval);
        let v4 = container.to_bytes().expect("v4 serializes");

        // Zero-copy view == owned load.
        let view = ContainerView::from_bytes(&v4).expect("view loads");
        prop_assert_eq!(view.num_events(), container.pinball.events.len());
        prop_assert_eq!(&view.to_container(), &container, "view == owned");
        prop_assert_eq!(view.digest(), container.digest());

        // Paged load == bytes load.
        let path = std::env::temp_dir().join(format!(
            "pinplay-prop-{}-{:x}.pb", std::process::id(), sched_seed
        ));
        std::fs::write(&path, &v4).expect("writes temp container");
        let mapped = PinballContainer::open_mapped(&path).expect("mapped opens");
        let via_mapped = mapped.to_container().expect("mapped materializes");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&via_mapped, &container, "mapped == owned");

        // Migrating older formats reproduces the direct v4 save exactly.
        let from_v3 = pinplay::migrate(&container.to_bytes_v3().expect("v3"))
            .expect("v3 migrates");
        prop_assert_eq!(&from_v3, &v4, "migrate(v3) == to_bytes()");
        let from_v2 = pinplay::migrate(&container.to_bytes_v2().expect("v2"))
            .expect("v2 migrates");
        prop_assert_eq!(&from_v2, &v4, "migrate(v2) == to_bytes()");
    }

    #[test]
    fn streamed_upload_reseals_byte_identically_and_resume_converges(
        workers in 1usize..4,
        iters in 5u64..60,
        sched_seed in any::<u64>(),
        quantum in 1u32..16,
        interval in 8u64..200,
        n_chunks in 1usize..12,
        kill_at in 0usize..12,
    ) {
        let (program, pinball) = record(workers, iters, sched_seed, quantum, 7);
        let container = PinballContainer::with_checkpoints(pinball, &program, interval);
        let batch = container.to_bytes().expect("serializes");
        let writer = StreamWriter::new(&container).expect("container streams");
        let pieces = writer.chunks(n_chunks);

        // First attempt dies after `kill_at` chunks. Whatever prefix it
        // leaves behind is an unsealed container whose recovered events
        // replay deterministically.
        let kill = kill_at.min(pieces.len());
        let mut first = StreamReader::default();
        for piece in &pieces[..kill] {
            first.absorb(piece).expect("chunk absorbs");
        }
        prop_assert!(!first.is_sealed(), "no footer, no seal");
        if first.has_header() {
            let partial = first.partial_container().expect("prefix collects");
            let mut r = Replayer::new(Arc::clone(&program), &partial.pinball);
            let status = r.run(&mut NullTool);
            prop_assert!(
                matches!(status, ReplayStatus::Completed),
                "killed upload's prefix must replay, got {:?}", status
            );
        }

        // Resume from scratch — what a client does after re-checking the
        // server's `next_seq` — and seal: byte-identical to the batch
        // serialization, so the digest and every downstream consumer agree.
        let mut resumed = StreamReader::default();
        for piece in &pieces {
            resumed.absorb(piece).expect("chunk absorbs");
        }
        resumed.absorb(writer.footer()).expect("footer absorbs");
        prop_assert!(resumed.is_sealed());
        let sealed = resumed.sealed_bytes().expect("sealed bytes available");
        prop_assert_eq!(sealed, batch.as_slice(), "seal == batch to_bytes");
        let reloaded = PinballContainer::from_bytes(sealed).expect("sealed loads");
        prop_assert_eq!(reloaded.digest(), container.digest());
    }

    #[test]
    fn seek_then_replay_matches_full_replay_at_every_chunk_boundary(
        workers in 1usize..4,
        iters in 5u64..40,
        sched_seed in any::<u64>(),
        quantum in 1u32..16,
        interval in 8u64..100,
    ) {
        let (program, pinball) = record(workers, iters, sched_seed, quantum, 7);
        let container = PinballContainer::with_checkpoints(pinball, &program, interval);

        let mut cold = Replayer::new(Arc::clone(&program), &container.pinball);
        let want = final_state(&mut cold);

        // Every embedded checkpoint sits on a chunk boundary; seeking to
        // each and replaying the remainder must converge on `want`.
        let boundaries: Vec<u64> =
            container.checkpoints.iter().map(|cp| cp.instr).collect();
        for boundary in boundaries {
            let mut r = Replayer::new(Arc::clone(&program), &container.pinball);
            let outcome = r.seek_to(&container, boundary);
            prop_assert_eq!(
                outcome.restored_from, Some(boundary),
                "boundary {} restores exactly", boundary
            );
            prop_assert_eq!(outcome.replayed, 0, "no tail inside a boundary seek");
            prop_assert_eq!(r.replayed_instructions(), boundary);
            let got = final_state(&mut r);
            prop_assert_eq!(&got.0, &want.0, "same terminal status");
            prop_assert_eq!(got.1, want.1, "same instruction count");
            prop_assert_eq!(&got.2, &want.2, "bit-identical final state");
        }
    }
}
